"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in fully
offline environments with older setuptools (no ``wheel`` package needed for
the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
