#!/usr/bin/env python3
"""Latency-model ablation: gamma jitter swept through the parallel executor.

Before the Scenario API, latency models were live objects that could not be
content-hashed or shipped to worker processes, so latency sweeps were stuck
on the serial path.  Declarative :class:`LatencySpec` values lift that
restriction: this example sweeps the network-jitter amplitude (and a
two-cluster cloud topology for contrast) over the paper's algorithm and the
Bouabdallah–Laforest baseline, fanning all runs out over worker processes.
The results are bit-identical to a ``workers=1`` run because each scenario
thaws its own latency model from the spec inside the worker.

Run with::

    python examples/latency_ablation.py
"""

from __future__ import annotations

from repro.experiments import Scenario
from repro.experiments.report import format_table
from repro.parallel import run_sweep
from repro.sim.latencyspec import UniformJitterLatencySpec
from repro.workload.params import LoadLevel, WorkloadParams

ALGORITHMS = ("bouabdallah", "with_loan")
JITTERS = (0.0, 0.3, 0.6, 0.9)


def main() -> None:
    params = WorkloadParams(
        num_processes=8,
        num_resources=20,
        phi=4,
        duration=1_500.0,
        warmup=200.0,
        load=LoadLevel.HIGH,
        seed=7,
    )
    base = Scenario(algorithm=ALGORITHMS[0], params=params)
    grid = base.sweep(
        algorithm=ALGORITHMS,
        latency=[UniformJitterLatencySpec(jitter=j) if j else None for j in JITTERS],
    )
    results = iter(run_sweep(grid, workers=2))

    rows = []
    for algorithm in ALGORITHMS:
        for jitter in JITTERS:
            result = next(results)
            rows.append(
                (
                    algorithm,
                    f"{jitter:.0%}",
                    result.metrics.waiting.mean,
                    result.use_rate,
                    result.metrics.messages_per_cs,
                )
            )

    print(params.describe())
    print()
    print(
        format_table(
            ["algorithm", "jitter", "avg wait (ms)", "use rate (%)", "msgs/CS"],
            rows,
            title="Gamma-jitter ablation (uniform multiplicative jitter, workers=2)",
        )
    )
    print()
    print("Jitter perturbs message interleavings but every run stays reproducible:")
    print("the latency spec (not a live model) is part of the scenario, so workers")
    print("rebuild identical models and the sweep is bit-identical at any workers=N.")


if __name__ == "__main__":
    main()
