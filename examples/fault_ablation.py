#!/usr/bin/env python3
"""Fault-injection robustness study: message loss swept across algorithms.

Section 3.1 of the paper assumes reliable FIFO links; the declarative
``FaultSpec`` axis drops that assumption per scenario.  This example
subjects the three distributed algorithms to Bernoulli loss of their
*control-plane* messages (requests and counter replies — token transfer
stays reliable, as over a reliable transport) and reports how much of the
workload still completes:

* the paper's loan-based algorithm carries a requester-side re-send safety
  net (Section 4.2.1), so lost requests are simply re-issued and the
  workload keeps completing even at 10% loss;
* the incremental and Bouabdallah–Laforest baselines have no resend
  machinery: the first lost request on a path stalls that requester (and
  everyone queued behind it) forever.

A second, shorter table drops *all* messages — including tokens — at 1%:
no algorithm replicates tokens, so a single lost token envelope stalls its
resource for good and every completion rate collapses.  The resend timers
help only with what they were designed for.

Runs with faults cannot rely on the event queue draining (stalled
protocols re-arm their resend timers forever), so the runner caps them at
a deterministic horizon and ``require_all_completed=False`` turns liveness
failures into data instead of errors.

Run with::

    python examples/fault_ablation.py [--quick] [--workers N]

The sweep fans out over worker processes; results are bit-identical at any
``--workers`` because each scenario thaws its fault model (and its RNG)
from the spec inside the worker.
"""

from __future__ import annotations

import argparse

from repro.core.config import CoreConfigSpec
from repro.experiments import Scenario
from repro.experiments.report import format_table
from repro.parallel import run_sweep
from repro.sim.faultspec import BernoulliLoss
from repro.workload.params import LoadLevel, WorkloadParams

#: Request/reply message classes of each algorithm — the messages a lossy
#: datagram transport would lose, and the ones resend timers can recover.
CONTROL_PLANE = {
    "incremental": ("NTRequest",),
    "bouabdallah": ("NTRequest", "BLInquire"),
    "with_loan": ("RequestEnvelope", "CounterEnvelope"),
}
ALGORITHMS = tuple(CONTROL_PLANE)


def loss_row(result) -> tuple:
    m = result.metrics
    return (
        f"{m.completed}/{m.issued}",
        f"{100.0 * result.completion_rate:.0f}%",
        result.messages_dropped,
        result.resend_count,
        m.waiting.mean,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload and fewer loss levels (CI smoke)"
    )
    parser.add_argument("--workers", type=int, default=2, help="sweep worker processes")
    args = parser.parse_args()

    if args.quick:
        loss_levels = (0.0, 0.05)
        params = WorkloadParams(
            num_processes=5, num_resources=10, phi=3, duration=500.0, warmup=50.0,
            load=LoadLevel.HIGH, seed=7,
        )
    else:
        loss_levels = (0.0, 0.01, 0.05, 0.10)
        params = WorkloadParams(
            num_processes=8, num_resources=20, phi=4, duration=2_000.0, warmup=200.0,
            load=LoadLevel.HIGH, seed=7,
        )

    base = Scenario(algorithm=ALGORITHMS[0], params=params, require_all_completed=False)

    def scenario_for(algorithm: str, faults) -> Scenario:
        changes = {"algorithm": algorithm, "faults": faults}
        if algorithm == "with_loan":
            # Tighten the resend safety net (default 500 ms) so recovery
            # latency is visible at this workload's time scale.
            changes["config"] = CoreConfigSpec(enable_loan=True, resend_interval=50.0)
        return base.replace(**changes)

    # (row label, scenario) pairs keep labels and results aligned no
    # matter how the grids are reordered or extended.
    all_loss = 0.05 if args.quick else 0.01
    control_cells = [
        ((algorithm, f"{p:.0%}"),
         scenario_for(algorithm, BernoulliLoss(p=p, kinds=CONTROL_PLANE[algorithm]) if p else None))
        for algorithm in ALGORITHMS
        for p in loss_levels
    ]
    all_cells = [
        ((algorithm, f"{all_loss:.0%}"), scenario_for(algorithm, BernoulliLoss(p=all_loss)))
        for algorithm in ALGORITHMS
    ]
    cells = control_cells + all_cells
    results = run_sweep([scenario for _, scenario in cells], workers=args.workers)

    rows = [label + loss_row(result) for (label, _), result in zip(cells, results)]
    control_rows = rows[: len(control_cells)]
    all_rows = rows[len(control_cells):]

    header = ["algorithm", "loss", "completed", "rate", "dropped", "resends", "avg wait (ms)"]
    print(params.describe())
    print()
    print(
        format_table(
            header,
            control_rows,
            title=f"Control-plane loss (requests/replies only, workers={args.workers})",
        )
    )
    print()
    print(format_table(header, all_rows, title="All-message loss (tokens included)"))
    print()
    print("With lossy requests but reliable token transfer, the loan algorithm's")
    print("resend timers re-issue every lost ReqCnt/ReqRes and completion stays at")
    print("(or near) 100%, while the baselines — with no resend path — stall on the")
    print("first lost request.  Once tokens themselves can vanish (second table),")
    print("no algorithm recovers: a lost token retires its resource for the run.")


if __name__ == "__main__":
    main()
