#!/usr/bin/env python3
"""Gantt-diagram illustration of the resource-use-rate metric.

Reproduces the content of Figures 1 and 4 of the paper: the same workload
over five shared resources is executed under

* the Bouabdallah–Laforest algorithm (global lock, static scheduling),
* the paper's algorithm without the loan mechanism (no global lock), and
* the paper's algorithm with the loan mechanism (dynamic scheduling),

and each execution is rendered as an ASCII Gantt chart (one row per
resource, time flowing left to right, a letter per process using the
resource).  The fraction of non-idle cells is exactly the resource-use
rate illustrated in Figure 4.

Each run is one declarative ``Scenario`` differing only in its
``algorithm`` axis, so all three charts replay the identical workload
(see docs/scenarios.md for the Scenario API).

Run with::

    python examples/gantt_illustration.py
"""

from __future__ import annotations

from repro.experiments import Scenario, run
from repro.metrics.gantt import render_gantt
from repro.workload.params import LoadLevel, WorkloadParams


def main() -> None:
    params = WorkloadParams(
        num_processes=5,
        num_resources=5,
        phi=3,
        duration=400.0,
        warmup=0.0,
        load=LoadLevel.HIGH,
        seed=3,
        alpha_min=10.0,
        alpha_max=30.0,
    )
    names = [f"r{i}" for i in range(params.num_resources)]

    # One declarative scenario per chart: the algorithm axis is the only
    # thing that varies, so the three runs share one workload exactly.
    base = Scenario(algorithm="bouabdallah", params=params)
    for algorithm, title in (
        ("bouabdallah", "(a) global lock, static scheduling   [Bouabdallah-Laforest]"),
        ("without_loan", "(b) no global lock                   [paper's algorithm, without loan]"),
        ("with_loan", "(c) no global lock + dynamic loan    [paper's algorithm, with loan]"),
    ):
        result = run(base.replace(algorithm=algorithm))
        chart = render_gantt(
            result.records,
            num_resources=params.num_resources,
            width=78,
            horizon=params.duration,
            resource_names=names,
        )
        print(title)
        print(chart)
        print(f"    average waiting time: {result.metrics.waiting.mean:.1f} ms")
        print()


if __name__ == "__main__":
    main()
