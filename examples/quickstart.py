#!/usr/bin/env python3
"""Quickstart: run the paper's algorithm on a small workload.

Declares an 8-process / 20-resource :class:`Scenario`, replays its seeded
closed-loop workload against the "With loan" variant of the paper's
algorithm and prints the two metrics of the evaluation (resource-use rate
and average waiting time), the message accounting and the process state
machine (Figure 2) observed for one process.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import Scenario, run
from repro.workload.params import LoadLevel, WorkloadParams


def main() -> None:
    scenario = Scenario(
        algorithm="with_loan",
        params=WorkloadParams(
            num_processes=8,
            num_resources=20,
            phi=4,                 # requests ask for 1..4 resources
            duration=3_000.0,      # simulated milliseconds
            warmup=300.0,
            load=LoadLevel.HIGH,
            seed=42,
        ),
        collect_trace=True,
    )
    print("Scenario:", scenario.describe())
    print()

    result = run(scenario)

    print("=== Metrics (the paper's two evaluation metrics) ===")
    print(f"resource use rate : {result.use_rate:.1f} %")
    print(f"avg waiting time  : {result.metrics.waiting.mean:.2f} ms "
          f"(sd {result.metrics.waiting.stddev:.2f})")
    print(f"requests completed: {result.metrics.completed}")
    print(f"messages per CS   : {result.metrics.messages_per_cs:.1f}")
    print("messages by type  : "
          + ", ".join(f"{k}={v}" for k, v in sorted(result.metrics.messages_by_type.items())))
    print()

    print("=== State machine of process 3 (Figure 2) ===")
    transitions = [
        (e.time, e.details["frm"], e.details["to"])
        for e in result.trace.events(kind="state", node=3)
    ][:12]
    for time, frm, to in transitions:
        print(f"  t={time:8.2f} ms   {frm:7s} -> {to}")
    print()

    print("=== Loan activity ===")
    loans = result.trace.events(kind="loan_granted")
    print(f"loans granted during the run: {len(loans)}")
    for event in loans[:5]:
        print(f"  t={event.time:8.2f} ms  lender={event.node} "
              f"borrower={event.details['borrower']} resources={event.details['resources']}")


if __name__ == "__main__":
    main()
