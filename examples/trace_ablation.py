#!/usr/bin/env python3
"""Workload ablation: the loan algorithm under bursty and trace-driven load.

The paper's evaluation (Section 5.1) drives every algorithm with one
closed-loop synthetic workload: each process thinks, requests, runs its
critical section and only then thinks again, so a slow protocol throttles
its own offered load.  The declarative workload axis drops that
assumption per scenario:

* ``OpenLoopSpec`` issues requests at externally timed instants — smooth
  (Poisson), or bursty (a two-state MMPP whose rate jumps by an order of
  magnitude during bursts) — at the *same mean rate*, so burstiness is
  isolated from offered load;
* ``TraceReplaySpec`` replays a checked-in SWF job trace
  (``examples/data/sample.swf``: 200 jobs in tight bursts separated by
  long quiet gaps, heavy-tailed runtimes) through the same protocols.

Two things the table shows, and the script self-checks:

1. **Burstiness is expensive at fixed offered load.**  For every
   algorithm, mean waiting time under the bursty MMPP and under the
   trace is a multiple of the rate-matched Poisson wait: arrivals that
   cluster overlap their resource footprints, queueing where the smooth
   process slips through an idle system.
2. **The loan mechanism's advantage follows the contention.**  Under
   smooth stable open-loop load the with/without-loan gap nearly closes
   (there is rarely a conflicting holder to borrow from), while the
   contended closed loop keeps it open — and the trace/bursty columns
   show where between those poles each bursty workload lands at your
   scale.  Bursts recreate the transient multi-resource contention the
   loan rule (Section 4.2) was designed to defuse.

The trace scenarios also exercise the streaming path end-to-end: records
are collected in bounded chunks (``record_chunk_rows``), the trace file
is never materialised, and its SHA-256 — not its path — keys the run
cache.

Run with::

    python examples/trace_ablation.py [--quick] [--workers N]

Results are bit-identical at any ``--workers`` because every workload
spec re-thaws its streams from the scenario inside the worker.
"""

from __future__ import annotations

import argparse
import os
import sys
from statistics import fmean

from repro.experiments import Scenario
from repro.experiments.report import format_table
from repro.parallel import run_sweep
from repro.workload.arrivals import MarkovModulatedArrivals, PoissonArrivals
from repro.workload.params import LoadLevel, WorkloadParams
from repro.workload.spec import OpenLoopSpec, TraceReplaySpec

TRACE = os.path.join(os.path.dirname(__file__), "data", "sample.swf")
ALGORITHMS = ("with_loan", "without_loan")


def workload_grid(rate: float, time_scale: float):
    """The ablation's workload families at one mean open-loop rate."""
    return {
        "closed-loop": None,  # normalises to SyntheticSpec
        "poisson": OpenLoopSpec(arrival=PoissonArrivals(rate=rate)),
        "bursty": OpenLoopSpec(
            arrival=MarkovModulatedArrivals(
                rate=rate, burst_factor=12.0, burst_fraction=0.15, dwell=400.0
            )
        ),
        "trace": TraceReplaySpec(path=TRACE, time_scale=time_scale),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller system and shorter runs (CI smoke)"
    )
    parser.add_argument("--workers", type=int, default=2, help="sweep worker processes")
    args = parser.parse_args()

    if args.quick:
        seeds = (7, 21)
        base_params = WorkloadParams(
            num_processes=5, num_resources=10, phi=3, duration=2_000.0, warmup=200.0,
            load=LoadLevel.HIGH, seed=7,
        )
        rate = 0.02  # per-process requests/ms, well below saturation
        # Compress the trace's ~3.4 s span into the shorter run so all
        # 200 jobs replay.
        time_scale = 0.5
    else:
        seeds = (7, 21, 35)
        base_params = WorkloadParams(
            num_processes=8, num_resources=20, phi=4, duration=4_000.0, warmup=400.0,
            load=LoadLevel.HIGH, seed=7,
        )
        rate = 0.02
        time_scale = 1.0
    workloads = workload_grid(rate, time_scale)

    cells = [
        (
            (algorithm, name, seed),
            Scenario(
                algorithm=algorithm,
                params=base_params.with_seed(seed),
                workload=spec,
                # Exercise the streaming record path: live rows stay
                # O(chunk) however long the replayed trace is.
                record_chunk_rows=512,
            ),
        )
        for algorithm in ALGORITHMS
        for name, spec in workloads.items()
        for seed in seeds
    ]
    results = run_sweep([scenario for _, scenario in cells], workers=args.workers)

    waits: dict = {}
    completed_all = True
    rows = []
    for ((algorithm, name, seed), _), result in zip(cells, results):
        m = result.metrics
        waits.setdefault((algorithm, name), []).append(m.waiting.mean)
        completed_all &= m.completed == m.issued
        if seed == seeds[0]:
            rows.append((algorithm, name, f"{m.completed}/{m.issued}", m.waiting.mean, m.waiting.stddev, f"{m.messages_per_cs:.1f}"))

    header = ["algorithm", "workload", "completed", "avg wait (ms)", "sd", "msgs/cs"]
    print(base_params.describe())
    print()
    print(
        format_table(
            header,
            rows,
            title=f"Workload ablation, first seed (workers={args.workers})",
        )
    )

    mean_wait = {key: fmean(values) for key, values in waits.items()}
    advantage = {
        name: mean_wait[("without_loan", name)] / mean_wait[("with_loan", name)]
        for name in workloads
    }
    print()
    print(format_table(
        ["workload", "wait with_loan", "wait without_loan", "advantage"],
        [
            (name, mean_wait[("with_loan", name)], mean_wait[("without_loan", name)],
             f"{advantage[name]:.3f}x")
            for name in workloads
        ],
        title=f"Seed-averaged ({len(seeds)} seeds) loan advantage (without/with wait ratio)",
    ))
    print()
    print("At one fixed mean rate, the bursty MMPP and the bursty SWF trace multiply")
    print("the smooth-Poisson waiting time; and while smooth stable open-loop load")
    print("closes the with/without-loan gap, contention (the closed loop, the bursts)")
    print("keeps it open — the loan rule pays off exactly when arrivals pile")
    print("conflicting footprints into short windows.")

    # ----------------------------------------------------------------- #
    # self-checks: fail loudly if the qualitative story regresses
    # ----------------------------------------------------------------- #
    failures = []
    if not completed_all:
        failures.append("some runs did not complete their full workload")
    for algorithm in ALGORITHMS:
        poisson = mean_wait[(algorithm, "poisson")]
        if not mean_wait[(algorithm, "bursty")] > 1.3 * poisson:
            failures.append(f"{algorithm}: bursty wait not clearly above poisson")
        if not mean_wait[(algorithm, "trace")] > 1.5 * poisson:
            failures.append(f"{algorithm}: trace wait not clearly above poisson")
    if not advantage["closed-loop"] > advantage["poisson"]:
        failures.append(
            "loan advantage under the contended closed loop did not exceed the "
            "smooth stable open-loop advantage"
        )
    if failures:
        print("\nSELF-CHECK FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        sys.exit(1)
    print("\nSelf-checks passed: burstiness wait-time shift and contention-bound "
          "loan advantage hold.")


if __name__ == "__main__":
    main()
