#!/usr/bin/env python3
"""Crash-recovery ablation: node crashes with and without failure detection.

The paper assumes nodes never halt.  ``NodeCrash`` drops that assumption
twice over: the fault layer cuts the node off the network, and the
lifecycle layer (:mod:`repro.sim.lifecycle`) halts its local timers — a
full fail-silent crash.  Tokens held by the dead node are unreachable,
so without recovery every algorithm stalls: requesters chase a dead
probable-owner chain forever (the loan algorithm's resend net just
re-sends into the void) and completion craters.

The ``detector`` scenario axis (:mod:`repro.sim.detectorspec`) closes
the gap.  With a ``HeartbeatDetector``, crashes are detected after a
deterministic worst-case heartbeat delay and the recovery protocol
(:mod:`repro.core.recovery`) adjudicates token losses, regenerates each
lost token at the lowest-id surviving requester, repoints survivors and
fences the rebooted node — completion returns to (or near) 100%, the
only unavoidable casualty being a request whose critical section died
with its process.

Three crash shapes are swept per algorithm:

* ``permanent`` — the node never comes back (tokens must be regenerated);
* ``reboot``    — down long enough to be detected, then fenced on return;
* ``blip``      — recovers *before* detection: heartbeats resume in time,
  no regeneration happens at all, and the node simply rejoins (for the
  loan algorithm; the incremental baseline has no resend machinery, so
  requests whose messages crossed an undetected blip can still stall).

Run with::

    python examples/crash_recovery.py [--quick] [--workers N]

Results are bit-identical at any ``--workers`` because lifecycle events,
detection times and regeneration are all deterministic functions of the
scenario.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.config import CoreConfigSpec
from repro.experiments import Scenario
from repro.experiments.report import format_table
from repro.parallel import run_sweep
from repro.sim.detectorspec import HeartbeatDetector
from repro.sim.faultspec import NodeCrash
from repro.workload.params import LoadLevel, WorkloadParams

ALGORITHMS = ("with_loan", "incremental")

#: Completion-rate floor asserted for the loan algorithm under a detected
#: single-node crash (the acceptance bar of the recovery subsystem).
RECOVERY_COMPLETION_FLOOR = 0.99


def crash_shapes(params: WorkloadParams, detection_delay: float):
    """The three crash windows of the study, scaled to the workload."""
    at = 0.25 * params.duration
    return (
        ("permanent", NodeCrash(node=2, at=at)),
        ("reboot", NodeCrash(node=2, at=at, recover_at=at + 4.0 * detection_delay)),
        ("blip", NodeCrash(node=2, at=at, recover_at=at + 0.5 * detection_delay)),
    )


def result_row(result) -> tuple:
    m = result.metrics
    downtime = result.downtime.total if result.downtime is not None else 0.0
    return (
        f"{m.completed}/{m.issued}",
        f"{100.0 * result.completion_rate:.1f}%",
        result.tokens_regenerated,
        f"{result.recovery_time:g}",
        f"{downtime:g}",
        int(m.extra.get("aborted", 0)),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller workload (CI smoke)"
    )
    parser.add_argument("--workers", type=int, default=2, help="sweep worker processes")
    args = parser.parse_args()

    if args.quick:
        params = WorkloadParams(
            num_processes=5, num_resources=10, phi=3, duration=500.0, warmup=50.0,
            load=LoadLevel.HIGH, seed=7,
        )
    else:
        params = WorkloadParams(
            num_processes=8, num_resources=20, phi=4, duration=2_000.0, warmup=200.0,
            load=LoadLevel.HIGH, seed=7,
        )

    # Tight heartbeats make recovery latency visible at this time scale;
    # the loan algorithm additionally tightens its resend net (default
    # 500 ms) so re-issued requests land promptly after a repoint.
    detector = HeartbeatDetector(interval=10.0, timeout=30.0)
    base = Scenario(algorithm=ALGORITHMS[0], params=params, require_all_completed=False)

    def scenario_for(algorithm: str, faults, det) -> Scenario:
        changes = {"algorithm": algorithm, "faults": faults, "detector": det}
        if algorithm == "with_loan":
            changes["config"] = CoreConfigSpec(enable_loan=True, resend_interval=50.0)
        return base.replace(**changes)

    shapes = crash_shapes(params, detector.detection_delay)
    cells = []
    for algorithm in ALGORITHMS:
        cells.append(((algorithm, "none", "-"), scenario_for(algorithm, None, None)))
        for shape, crash in shapes:
            cells.append(((algorithm, shape, "off"), scenario_for(algorithm, crash, None)))
            cells.append(((algorithm, shape, "on"), scenario_for(algorithm, crash, detector)))
    results = run_sweep([scenario for _, scenario in cells], workers=args.workers)

    header = ["algorithm", "crash", "detector", "completed", "rate",
              "regen", "rec time", "downtime", "aborted"]
    rows = [label + result_row(result) for (label, _), result in zip(cells, results)]
    print(params.describe())
    print(f"detector: {detector.describe()} (worst-case detection "
          f"{detector.detection_delay:g} ms)")
    print()
    print(format_table(header, rows, title=f"Crash recovery (workers={args.workers})"))
    print()
    print("Without a detector a permanent crash stalls both algorithms: the dead")
    print("node's tokens are gone and every requester chases them forever.  With")
    print("the heartbeat detector, lost tokens are regenerated at the lowest-id")
    print("surviving requester and completion returns to ~100% — the only loss is")
    print("a critical section that died with its process ('aborted').  A blip that")
    print("recovers before detection regenerates nothing (regen=0): the node just")
    print("rejoins, and the loan algorithm's resend net absorbs the dropped")
    print("messages (the incremental baseline, lacking resends, may still stall).")

    # Self-check: the recovery bar this example exists to demonstrate.
    failures = []
    for (label, _), result in zip(cells, results):
        algorithm, shape, det = label
        if algorithm == "with_loan" and det == "on":
            if result.completion_rate < RECOVERY_COMPLETION_FLOOR:
                failures.append((algorithm, shape, result.completion_rate))
        if algorithm == "with_loan" and shape == "blip" and det == "on":
            if result.tokens_regenerated != 0:
                failures.append((algorithm, "blip regenerated", result.tokens_regenerated))
    if failures:
        print(f"\nRECOVERY REGRESSION: {failures}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
