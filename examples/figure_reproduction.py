#!/usr/bin/env python3
"""Reproduce the paper's evaluation figures at a configurable scale.

By default this runs a scaled-down version of every figure (Figure 5, 6
and 7, both load levels) in well under a minute; pass ``--full`` to use the
paper's configuration (32 processes, 80 resources), which is what
``scripts/reproduce_results.py`` runs and what EXPERIMENTS.md records.

Run with::

    python examples/figure_reproduction.py            # quick
    python examples/figure_reproduction.py --full     # paper scale
"""

from __future__ import annotations

import argparse

from repro.experiments.figures import (
    figure5_use_rate,
    figure6_waiting_time,
    figure7_waiting_by_size,
)
from repro.experiments.report import format_figure5, format_figure6, format_figure7
from repro.workload.params import LoadLevel, WorkloadParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper's N=32 / M=80 scale")
    parser.add_argument("--load", choices=["medium", "high", "both"], default="high")
    args = parser.parse_args()

    if args.full:
        base = WorkloadParams(duration=6_000.0, warmup=600.0)
        phis = (1, 4, 8, 16, 40, 80)
    else:
        base = WorkloadParams(
            num_processes=8, num_resources=20, phi=4, duration=1_200.0, warmup=150.0
        )
        phis = (1, 2, 4, 8, 16, 20)

    loads = [LoadLevel.MEDIUM, LoadLevel.HIGH] if args.load == "both" else [LoadLevel(args.load)]

    for load in loads:
        print(format_figure5(figure5_use_rate(load=load, base_params=base, phis=phis)))
        print()
        print(format_figure6(figure6_waiting_time(load=load, base_params=base)))
        print()
        print(format_figure7(figure7_waiting_by_size(load=load, base_params=base)))
        print()


if __name__ == "__main__":
    main()
