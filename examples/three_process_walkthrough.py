#!/usr/bin/env python3
"""Walkthrough of the paper's Figure 3 execution example.

Three processes (s1, s2, s3) share two resources (r_red, r_blue):

* initially s1 holds the red token and s3 the blue one, both in critical
  section;
* s2 requests both resources: it first collects the two counter values
  (ReqCnt / Counter), then asks for the tokens (ReqRes) and enters its
  critical section once both arrive;
* at the end s2 is the root of both resource trees (Figure 3(c)).

The script prints every state transition and token movement so the message
flow of the figure can be followed step by step.

Unlike the experiment examples, this walkthrough deliberately wires the
simulator, network and ``CoreAllocatorNode`` endpoints by hand instead of
going through the declarative Scenario API (``run(Scenario(...))``, see
docs/scenarios.md): Figure 3 scripts three specific requests at specific
instants, not a generated workload, and the manual wiring is the point —
it exposes exactly the pieces a scenario assembles for you.

Run with::

    python examples/three_process_walkthrough.py
"""

from __future__ import annotations

from repro.core.config import CoreConfig
from repro.core.node import CoreAllocatorNode
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder

RESOURCE_NAMES = {0: "r_red", 1: "r_blue"}
PROCESS_NAMES = {0: "s1", 1: "s2", 2: "s3"}


def main() -> None:
    sim = Simulator()
    network = Network(sim, ConstantLatency(gamma=1.0))
    trace = TraceRecorder()
    config = CoreConfig(enable_loan=False)
    nodes = [
        CoreAllocatorNode(sim, network, p, num_resources=2, config=config, trace=trace)
        for p in range(3)
    ]
    metrics = MetricsCollector(num_resources=2)

    def enter_cs(process: int, index: int, resources: frozenset, hold: float) -> None:
        metrics.on_issue(sim.now, process, index, resources)
        nodes[process].acquire(
            resources, lambda: _granted(process, index, hold)
        )

    def _granted(process: int, index: int, hold: float) -> None:
        metrics.on_grant(sim.now, process, index)
        sim.schedule(hold, lambda: _done(process, index))

    def _done(process: int, index: int) -> None:
        metrics.on_release(sim.now, process, index)
        nodes[process].release()

    # Initial configuration of Figure 3(a): s1 uses r_red, s3 uses r_blue.
    sim.schedule(0.0, enter_cs, 0, 0, frozenset({0}), 30.0)
    sim.schedule(0.0, enter_cs, 2, 0, frozenset({1}), 30.0)
    # s2 requests both resources while the other two are in CS.
    sim.schedule(5.0, enter_cs, 1, 0, frozenset({0, 1}), 10.0)
    sim.run()

    print("Timeline (state changes and token movements):")
    for event in trace:
        who = PROCESS_NAMES[event.node]
        if event.kind == "state":
            print(f"  t={event.time:6.1f}  {who}: {event.details['frm']} -> {event.details['to']}")
        elif event.kind == "token_sent":
            resource = RESOURCE_NAMES[event.details["resource"]]
            dest = PROCESS_NAMES[event.details["dest"]]
            print(f"  t={event.time:6.1f}  {who}: sends token {resource} to {dest}")
        elif event.kind == "cs_enter":
            resources = [RESOURCE_NAMES[r] for r in event.details["resources"]]
            print(f"  t={event.time:6.1f}  {who}: enters CS with {resources}")
    print()

    print("Final tree roots (Figure 3(c)): ")
    for r, name in RESOURCE_NAMES.items():
        owner = next(PROCESS_NAMES[n.node_id] for n in nodes if r in n.owned_tokens)
        print(f"  {name}: root/owner = {owner}")
    print()

    s2 = metrics.record_for(1, 0)
    print(f"s2 waited {s2.waiting_time:.1f} ms before entering its critical section "
          f"(both neighbours were in CS for 30 ms).")


if __name__ == "__main__":
    main()
