#!/usr/bin/env python3
"""Future-work experiment: hierarchical (cloud-like) topologies.

The paper's conclusion argues that avoiding the global lock should pay off
most on hierarchical physical topologies (two distant data centres), where
shipping a control token across the wide-area link is expensive.  This
example runs the Bouabdallah–Laforest baseline and the paper's algorithm on
a flat cluster and on a two-cluster topology with a much slower
inter-cluster link, and prints how each algorithm's waiting time degrades.

Run with::

    python examples/cloud_topology.py
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.sim.latency import ConstantLatency, HierarchicalLatency
from repro.workload.params import LoadLevel, WorkloadParams


def main() -> None:
    params = WorkloadParams(
        num_processes=12,
        num_resources=30,
        phi=4,
        duration=2_500.0,
        warmup=300.0,
        load=LoadLevel.HIGH,
        seed=9,
    )
    flat = ConstantLatency(gamma=params.gamma)
    cloud = HierarchicalLatency(
        gamma_local=params.gamma,
        gamma_remote=params.gamma * 30.0,   # ~intercontinental vs rack-local
        num_nodes=params.num_processes,
        num_clusters=2,
    )

    rows = []
    for algorithm in ("bouabdallah", "without_loan", "with_loan"):
        flat_result = run_experiment(algorithm, params, latency=flat)
        cloud_result = run_experiment(algorithm, params, latency=cloud)
        rows.append(
            (
                algorithm,
                flat_result.metrics.waiting.mean,
                cloud_result.metrics.waiting.mean,
                cloud_result.metrics.waiting.mean / max(flat_result.metrics.waiting.mean, 1e-9),
                cloud_result.use_rate,
            )
        )

    print(params.describe())
    print()
    print(
        format_table(
            ["algorithm", "flat wait (ms)", "cloud wait (ms)", "degradation x", "cloud use rate (%)"],
            rows,
            title="Two-cluster cloud topology (30x inter-cluster latency)",
        )
    )
    print()
    print("The control-token baseline keeps crossing the slow link even for requests")
    print("that conflict with nobody; the paper's algorithm only pays the inter-cluster")
    print("cost when the conflicting processes actually live in different clusters.")


if __name__ == "__main__":
    main()
