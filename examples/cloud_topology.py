#!/usr/bin/env python3
"""Future-work experiment: hierarchical (cloud-like) topologies.

The paper's conclusion argues that avoiding the global lock should pay off
most on hierarchical physical topologies (two distant data centres), where
shipping a control token across the wide-area link is expensive.  This
example runs the Bouabdallah–Laforest baseline and the paper's algorithm on
a flat cluster and on a two-cluster topology with a much slower
inter-cluster link, and prints how each algorithm's waiting time degrades.

Run with::

    python examples/cloud_topology.py
"""

from __future__ import annotations

from repro.experiments import Scenario
from repro.experiments.report import format_table
from repro.parallel import run_sweep
from repro.sim.latencyspec import ConstantLatencySpec, HierarchicalLatencySpec
from repro.workload.params import LoadLevel, WorkloadParams

ALGORITHMS = ("bouabdallah", "without_loan", "with_loan")


def main() -> None:
    params = WorkloadParams(
        num_processes=12,
        num_resources=30,
        phi=4,
        duration=2_500.0,
        warmup=300.0,
        load=LoadLevel.HIGH,
        seed=9,
    )
    flat = ConstantLatencySpec()                      # params.gamma everywhere
    cloud = HierarchicalLatencySpec(
        gamma_remote=params.gamma * 30.0,   # ~intercontinental vs rack-local
        num_clusters=2,
    )

    # One declarative grid: (algorithm x topology), fanned out as a sweep.
    base = Scenario(algorithm=ALGORITHMS[0], params=params)
    grid = base.sweep(algorithm=ALGORITHMS, latency=(flat, cloud))
    results = iter(run_sweep(grid))

    rows = []
    for algorithm in ALGORITHMS:
        flat_result = next(results)
        cloud_result = next(results)
        rows.append(
            (
                algorithm,
                flat_result.metrics.waiting.mean,
                cloud_result.metrics.waiting.mean,
                cloud_result.metrics.waiting.mean / max(flat_result.metrics.waiting.mean, 1e-9),
                cloud_result.use_rate,
            )
        )

    print(params.describe())
    print()
    print(
        format_table(
            ["algorithm", "flat wait (ms)", "cloud wait (ms)", "degradation x", "cloud use rate (%)"],
            rows,
            title="Two-cluster cloud topology (30x inter-cluster latency)",
        )
    )
    print()
    print("The control-token baseline keeps crossing the slow link even for requests")
    print("that conflict with nobody; the paper's algorithm only pays the inter-cluster")
    print("cost when the conflicting processes actually live in different clusters.")


if __name__ == "__main__":
    main()
