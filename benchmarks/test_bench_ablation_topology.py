"""Ablation A3 — hierarchical (cloud-like) topologies.

The paper's conclusion argues that removing the global lock should pay off
most on hierarchical physical topologies (e.g. geo-distributed clouds)
where exchanging a control token between distant sites is expensive.  This
benchmark runs the Bouabdallah–Laforest baseline and the paper's algorithm
on a flat cluster and on a two-cluster topology with a 20x inter-cluster
latency, and reports how much each algorithm degrades.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.sim.latency import ConstantLatency, HierarchicalLatency
from repro.workload.params import LoadLevel

ALGORITHMS = ("bouabdallah", "without_loan", "with_loan")


def _run_topology_sweep(bench_params):
    params = bench_params.with_load(LoadLevel.HIGH)
    flat = ConstantLatency(gamma=params.gamma)
    cloud = HierarchicalLatency(
        gamma_local=params.gamma,
        gamma_remote=params.gamma * 20.0,
        num_nodes=params.num_processes,
        num_clusters=2,
    )
    rows = []
    for algorithm in ALGORITHMS:
        flat_result = run_experiment(algorithm, params, latency=flat)
        cloud_result = run_experiment(algorithm, params, latency=cloud)
        degradation = (
            cloud_result.metrics.waiting.mean / flat_result.metrics.waiting.mean
            if flat_result.metrics.waiting.mean
            else float("inf")
        )
        rows.append(
            (
                algorithm,
                flat_result.metrics.waiting.mean,
                cloud_result.metrics.waiting.mean,
                degradation,
            )
        )
    return rows


def test_ablation_hierarchical_topology(benchmark, bench_params):
    """Flat cluster vs. two-cluster cloud (20x inter-cluster latency)."""
    rows = run_once(benchmark, _run_topology_sweep, bench_params)
    print(
        "\n"
        + format_table(
            ["algorithm", "flat wait (ms)", "cloud wait (ms)", "degradation x"],
            rows,
            title="Ablation A3: hierarchical topology (high load, phi=4)",
        )
    )
    benchmark.extra_info["rows"] = [
        {"algorithm": a, "flat": round(f, 2), "cloud": round(c, 2), "x": round(d, 2)}
        for a, f, c, d in rows
    ]
    degradation = {a: d for a, _, _, d in rows}
    # Everybody degrades on the cloud topology...
    assert all(d >= 1.0 for d in degradation.values())
    # ...and the global-lock baseline degrades at least as much as the
    # paper's algorithm (its control token keeps crossing the slow link).
    assert degradation["bouabdallah"] >= min(
        degradation["without_loan"], degradation["with_loan"]
    ) * 0.9
