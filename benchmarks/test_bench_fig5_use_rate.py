"""Figure 5 — resource-use rate vs. maximum request size.

Regenerates both panels of Figure 5 (medium and high load) with all five
curves: Incremental, Bouabdallah–Laforest, Without loan, With loan and the
shared-memory reference.  The printed table has one row per ``phi`` and one
column per algorithm, exactly like the figure's series.
"""

from __future__ import annotations

from conftest import BENCH_PHIS, run_once

from repro.experiments.figures import figure5_use_rate
from repro.experiments.report import format_figure5
from repro.workload.params import LoadLevel


def _run_figure5(load, bench_params):
    series = figure5_use_rate(load=load, base_params=bench_params, phis=BENCH_PHIS)
    return series


def _check_and_report(benchmark, series):
    text = format_figure5(series)
    print("\n" + text)
    for algorithm, points in series.series.items():
        benchmark.extra_info[algorithm] = {int(x): round(y, 2) for x, y in points}
        assert all(0.0 < rate <= 100.0 for _, rate in points), algorithm
    # Shape check from the paper: the paper's algorithm dominates the
    # incremental baseline once requests get large (domino effect).
    ours = dict(series.series["with_loan"])
    incremental = dict(series.series["incremental"])
    largest_phi = max(ours)
    assert ours[largest_phi] > incremental[largest_phi]


def test_figure5a_use_rate_medium_load(benchmark, bench_params):
    """Figure 5(a): medium load."""
    series = run_once(benchmark, _run_figure5, LoadLevel.MEDIUM, bench_params)
    _check_and_report(benchmark, series)


def test_figure5b_use_rate_high_load(benchmark, bench_params):
    """Figure 5(b): high load."""
    series = run_once(benchmark, _run_figure5, LoadLevel.HIGH, bench_params)
    _check_and_report(benchmark, series)
