"""Ablation A1 — impact of the loan threshold.

The paper's evaluation fixes the loan threshold at 1 ("a site asks for a
loan when it has just one missing requesting resource") and lists studying
its impact as future work.  This benchmark sweeps the threshold and reports
the resource-use rate and the average waiting time for the ``with_loan``
variant under high load with medium-sized requests — the regime where the
paper observed the loan to matter most (Section 5.2).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_experiment
from repro.experiments.report import format_table
from repro.workload.params import LoadLevel

THRESHOLDS = (0, 1, 2, 4)


def _run_threshold_sweep(bench_params):
    params = bench_params.with_load(LoadLevel.HIGH).with_phi(
        max(4, bench_params.num_resources // 4)
    )
    rows = []
    for threshold in THRESHOLDS:
        result = run_experiment("with_loan", params, loan_threshold=threshold)
        rows.append(
            (
                threshold,
                result.use_rate,
                result.metrics.waiting.mean,
                result.metrics.messages_per_cs,
            )
        )
    return rows


def test_ablation_loan_threshold(benchmark, bench_params):
    """Threshold sweep: 0 (loans disabled in practice) to 4."""
    rows = run_once(benchmark, _run_threshold_sweep, bench_params)
    print(
        "\n"
        + format_table(
            ["threshold", "use rate (%)", "avg wait (ms)", "msgs/CS"],
            rows,
            title="Ablation A1: loan threshold (with_loan, high load, medium requests)",
        )
    )
    benchmark.extra_info["rows"] = [
        {"threshold": t, "use_rate": round(u, 2), "wait": round(w, 2)}
        for t, u, w, _ in rows
    ]
    by_threshold = {t: (u, w) for t, u, w, _ in rows}
    # Threshold 1 (the paper's setting) should not be worse than disabling
    # the loan outright (threshold 0) on the use rate, within noise.
    assert by_threshold[1][0] >= by_threshold[0][0] * 0.93
    assert all(u > 0 for u, _ in by_threshold.values())
