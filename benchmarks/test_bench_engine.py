"""Kernel benchmarks — raw event-loop throughput and end-to-end runs.

Unlike the figure benchmarks (which track protocol behaviour), these
track the *simulation substrate itself*, so ``BENCH_*.json`` records how
fast the tuple-heap kernel dispatches events across PRs:

* ``test_event_dispatch_throughput`` schedules and dispatches 200k no-op
  events through ``Simulator.schedule`` + ``Simulator.run`` — pure kernel
  overhead, no protocol code at all;
* ``test_run_experiment_end_to_end`` times one full ``run_experiment``
  of the paper's algorithm at the benchmark scale, with the explicit
  ``default_max_events`` budget from the shared conftest;
* ``test_lifecycle_hooks_overhead_on_no_fault_path`` guards the crash
  subsystem's cost contract: arming the lifecycle machinery (a crash
  window that never fires, hooks installed, fault layer consulted) must
  stay within 5% of the plain no-fault run.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.experiments.runner import run, run_experiment
from repro.experiments.scenario import Scenario
from repro.sim.engine import Simulator
from repro.sim.faultspec import NodeCrash

#: Events scheduled+dispatched by the throughput benchmark.
DISPATCH_EVENTS = 200_000


def _nop() -> None:
    pass


def _dispatch(n: int) -> int:
    sim = Simulator()
    schedule = sim.schedule
    for i in range(n):
        schedule(float(i % 97) * 0.01, _nop)
    sim.run()
    return sim.processed_events


def test_event_dispatch_throughput(benchmark):
    """Schedule and dispatch 200k no-op events through the kernel."""
    processed = run_once(benchmark, _dispatch, DISPATCH_EVENTS)
    assert processed == DISPATCH_EVENTS
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["events"] = DISPATCH_EVENTS
    benchmark.extra_info["events_per_second"] = round(DISPATCH_EVENTS / elapsed)


#: Required dispatch-phase advantage of the calendar queue over the heap
#: on the bulk no-op workload.  Measured in-process (same machine, same
#: interpreter state), so the guard is robust to absolute machine speed;
#: the observed ratio is ~3-4x, so 2x leaves headroom for noisy runners.
CALENDAR_SPEEDUP_FLOOR = 2.0


def _dispatch_time(scheduler: str, n: int) -> float:
    """Wall-clock seconds the dispatch loop takes for ``n`` no-op events.

    Scheduling happens outside the timed region: the guard is about the
    drain loop (pop + call), which is where the calendar's batched
    window pays off against the heap's per-event sift.
    """
    sim = Simulator(scheduler)
    schedule = sim.schedule
    for i in range(n):
        schedule(float(i % 97) * 0.01, _nop)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert sim.processed_events == n
    return elapsed


def test_calendar_dispatch_speedup_over_heap():
    """The calendar scheduler must drain bulk events >=2x faster than the heap.

    Interleaved min-of-rounds keeps the comparison fair under CI noise,
    and comparing the two schedulers inside one process factors out the
    machine entirely — this is the PR 9 acceptance ratio, pinned.
    """
    rounds = 5
    timings = {"heap": [], "calendar": []}
    for _ in range(rounds):
        for name in ("heap", "calendar"):
            timings[name].append(_dispatch_time(name, DISPATCH_EVENTS))
    ratio = min(timings["heap"]) / min(timings["calendar"])
    assert ratio >= CALENDAR_SPEEDUP_FLOOR, (
        f"calendar drains only {ratio:.2f}x faster than heap "
        f"(floor {CALENDAR_SPEEDUP_FLOOR}x)"
    )


def test_run_experiment_end_to_end(benchmark, bench_params, bench_max_events):
    """One full core-algorithm run at benchmark scale (engine + protocol)."""
    result = run_once(
        benchmark,
        run_experiment,
        "with_loan",
        bench_params,
        max_events=bench_max_events,
    )
    assert result.metrics.completed == result.metrics.issued
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["events_processed"] = result.events_processed
    benchmark.extra_info["events_per_second"] = round(result.events_processed / elapsed)
    benchmark.extra_info["simulated_ms_per_wall_s"] = round(result.simulated_time / elapsed)


#: Allowed slowdown of an armed-but-idle crashy run over the plain run.
LIFECYCLE_OVERHEAD_CEILING = 1.05

#: Interleaved timing rounds; the minimum per variant is compared, which
#: is robust against one-off scheduler noise on CI machines.  Each round
#: is ~50 ms, so the floor of several rounds is a stable estimate.
OVERHEAD_ROUNDS = 7


def test_lifecycle_hooks_overhead_on_no_fault_path(bench_params, bench_max_events):
    """Crashy wiring must cost <5% when no crash ever fires.

    The armed scenario declares a crash far beyond the run horizon: the
    lifecycle layer schedules its window, every client/allocator carries
    its hooks and the fault layer is consulted per message — but nothing
    fires, so the workload (and its results) are identical to the plain
    run.  The wall-clock ratio of the two is the whole price of the
    crash-recovery subsystem on runs that never crash.
    """
    plain = Scenario(
        algorithm="with_loan", params=bench_params, max_events=bench_max_events
    )
    # Crash far past the stall cap (fault_run_until ~ a few workload
    # durations), so neither the crash event nor the cap changes the run.
    armed = plain.replace(
        faults=NodeCrash(node=0, at=1e9), require_all_completed=False
    )

    def measure(rounds):
        timings = {"plain": [], "armed": []}
        results = {}
        for round_index in range(rounds + 1):
            for name, scenario in (("plain", plain), ("armed", armed)):
                start = time.perf_counter()
                results[name] = run(scenario)
                if round_index > 0:  # round 0 warms caches and allocators
                    timings[name].append(time.perf_counter() - start)
        return min(timings["armed"]) / min(timings["plain"]), results

    ratio, results = measure(OVERHEAD_ROUNDS)
    if ratio >= LIFECYCLE_OVERHEAD_CEILING:
        # One free re-measurement with more rounds: a loaded CI runner can
        # push two ~50 ms runs past 5% apart without any code change, and
        # min-of-more-rounds is robust against exactly that.  A genuine
        # regression reproduces; transient noise does not.
        ratio, results = measure(3 * OVERHEAD_ROUNDS)

    # The never-firing window must not perturb the protocol at all.
    assert results["armed"].metrics.completed == results["plain"].metrics.completed
    assert results["armed"].metrics.use_rate == results["plain"].metrics.use_rate
    assert results["armed"].tokens_regenerated == 0

    assert ratio < LIFECYCLE_OVERHEAD_CEILING, (
        f"lifecycle hooks cost {100.0 * (ratio - 1.0):.1f}% on the no-fault "
        f"fast path (ceiling {100.0 * (LIFECYCLE_OVERHEAD_CEILING - 1.0):.0f}%)"
    )
