"""Kernel benchmarks — raw event-loop throughput and one end-to-end run.

Unlike the figure benchmarks (which track protocol behaviour), these two
track the *simulation substrate itself*, so ``BENCH_*.json`` records how
fast the tuple-heap kernel dispatches events across PRs:

* ``test_event_dispatch_throughput`` schedules and dispatches 200k no-op
  events through ``Simulator.schedule`` + ``Simulator.run`` — pure kernel
  overhead, no protocol code at all;
* ``test_run_experiment_end_to_end`` times one full ``run_experiment``
  of the paper's algorithm at the benchmark scale, with the explicit
  ``default_max_events`` budget from the shared conftest.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_experiment
from repro.sim.engine import Simulator

#: Events scheduled+dispatched by the throughput benchmark.
DISPATCH_EVENTS = 200_000


def _nop() -> None:
    pass


def _dispatch(n: int) -> int:
    sim = Simulator()
    schedule = sim.schedule
    for i in range(n):
        schedule(float(i % 97) * 0.01, _nop)
    sim.run()
    return sim.processed_events


def test_event_dispatch_throughput(benchmark):
    """Schedule and dispatch 200k no-op events through the kernel."""
    processed = run_once(benchmark, _dispatch, DISPATCH_EVENTS)
    assert processed == DISPATCH_EVENTS
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["events"] = DISPATCH_EVENTS
    benchmark.extra_info["events_per_second"] = round(DISPATCH_EVENTS / elapsed)


def test_run_experiment_end_to_end(benchmark, bench_params, bench_max_events):
    """One full core-algorithm run at benchmark scale (engine + protocol)."""
    result = run_once(
        benchmark,
        run_experiment,
        "with_loan",
        bench_params,
        max_events=bench_max_events,
    )
    assert result.metrics.completed == result.metrics.issued
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["events_processed"] = result.events_processed
    benchmark.extra_info["events_per_second"] = round(result.events_processed / elapsed)
    benchmark.extra_info["simulated_ms_per_wall_s"] = round(result.simulated_time / elapsed)
