"""Figure 6 — average waiting time for small requests (phi = 4).

Regenerates both panels (medium and high load) with the three bars the
paper shows: Bouabdallah–Laforest, Without loan, With loan (the incremental
algorithm is off the chart in the paper and is omitted there too).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.figures import figure6_waiting_time
from repro.experiments.report import format_figure6
from repro.workload.params import LoadLevel


def _run_figure6(load, bench_params):
    return figure6_waiting_time(load=load, base_params=bench_params, phi=4)


def _check_and_report(benchmark, series):
    text = format_figure6(series)
    print("\n" + text)
    means = {alg: pts[0][1] for alg, pts in series.series.items()}
    benchmark.extra_info.update({alg: round(v, 2) for alg, v in means.items()})
    # Shape check (Figure 6): the paper's algorithm does not wait longer than
    # the control-token baseline for small requests (5% tolerance for the
    # low-contention medium-load panel at benchmark scale).
    assert means["without_loan"] <= means["bouabdallah"] * 1.05
    assert means["with_loan"] <= means["bouabdallah"] * 1.05
    assert all(v >= 0 for v in means.values())


def test_figure6a_waiting_time_medium_load(benchmark, bench_params):
    """Figure 6(a): medium load, phi = 4."""
    series = run_once(benchmark, _run_figure6, LoadLevel.MEDIUM, bench_params)
    _check_and_report(benchmark, series)


def test_figure6b_waiting_time_high_load(benchmark, bench_params):
    """Figure 6(b): high load, phi = 4."""
    series = run_once(benchmark, _run_figure6, LoadLevel.HIGH, bench_params)
    _check_and_report(benchmark, series)
