"""Ablation A2 — choice of the scheduling function ``A``.

The total order over requests is parameterised by ``A`` (Section 3.3.2);
the paper evaluates the average of non-zero counter values and notes that
the choice "basically defines the scheduling resource policy".  This
benchmark compares the registered policies on the same workload.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.policies import available_policies
from repro.experiments.runner import run_experiment
from repro.experiments.report import format_table
from repro.workload.params import LoadLevel


def _run_policy_sweep(bench_params):
    params = bench_params.with_load(LoadLevel.HIGH)
    rows = []
    for policy in available_policies():
        result = run_experiment("with_loan", params, policy=policy)
        rows.append(
            (
                policy,
                result.use_rate,
                result.metrics.waiting.mean,
                result.metrics.waiting.stddev,
            )
        )
    return rows


def test_ablation_scheduling_policy(benchmark, bench_params):
    """Compare mean/max/min/sum scheduling functions (phi = 4, high load)."""
    rows = run_once(benchmark, _run_policy_sweep, bench_params)
    print(
        "\n"
        + format_table(
            ["policy A", "use rate (%)", "avg wait (ms)", "wait sd (ms)"],
            rows,
            title="Ablation A2: scheduling function A (with_loan, high load, phi=4)",
        )
    )
    benchmark.extra_info["rows"] = [
        {"policy": p, "use_rate": round(u, 2), "wait": round(w, 2)} for p, u, w, _ in rows
    ]
    # Every policy must produce a live, non-degenerate schedule.
    assert all(u > 0 and w >= 0 for _, u, w, _ in rows)
    names = [p for p, *_ in rows]
    assert "mean_nonzero" in names
