"""Result-transport benchmark: serialized payload size and pickle time.

ROADMAP's first open performance item was that pickling
``ExperimentResult.records`` dominated IPC for long parallel runs.  The
columnar refactor replaced the record list with a struct-of-arrays
:class:`~repro.metrics.columns.RecordColumns` that packs itself (narrow
integer types, byte-shuffled time planes, lzma) on pickling.  This
benchmark pins the payoff on the quick-run workload
(``scripts/reproduce_results.py --quick``): the records payload must be
at least 5x smaller than the equivalent record-list pickle that PR-3
shipped, and the full-result round-trip must stay cheap.
"""

from __future__ import annotations

import pickle
import time

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.workload.params import WorkloadParams

#: Contractual floor for legacy-record-list bytes / columnar bytes.
MIN_PAYLOAD_SHRINK = 5.0


def quick_run_params() -> WorkloadParams:
    """The ``reproduce_results.py --quick`` workload (8 processes, 20
    resources), the reference configuration of the shrink contract."""
    return WorkloadParams(
        num_processes=8,
        num_resources=20,
        phi=4,
        duration=1_200.0,
        warmup=150.0,
        seed=1,
    )


def _measure_payload():
    result = run(Scenario(algorithm="with_loan", params=quick_run_params()))
    protocol = pickle.HIGHEST_PROTOCOL
    columnar = pickle.dumps(result.record_columns, protocol=protocol)
    # What PR-3 shipped per run: the same lifecycles as a list of
    # RequestRecord dataclass objects.
    legacy = pickle.dumps(result.record_columns.to_records(), protocol=protocol)

    t0 = time.perf_counter()
    blob = pickle.dumps(result, protocol=protocol)
    t1 = time.perf_counter()
    clone = pickle.loads(blob)
    t2 = time.perf_counter()
    assert clone.record_columns == result.record_columns

    return {
        "records": len(result.records),
        "columnar_bytes": len(columnar),
        "legacy_bytes": len(legacy),
        "full_result_bytes": len(blob),
        "shrink": len(legacy) / len(columnar),
        "pickle_ms": (t1 - t0) * 1e3,
        "unpickle_ms": (t2 - t1) * 1e3,
    }


def test_result_payload_size_and_pickle_time(benchmark):
    """Columnar records shrink the per-run IPC payload >= 5x."""
    stats = run_once(benchmark, _measure_payload)
    print(
        "\n"
        + format_table(
            ["payload", "bytes", "bytes/record"],
            [
                ("records (columnar)", stats["columnar_bytes"],
                 stats["columnar_bytes"] / stats["records"]),
                ("records (legacy list)", stats["legacy_bytes"],
                 stats["legacy_bytes"] / stats["records"]),
                ("full ExperimentResult", stats["full_result_bytes"],
                 stats["full_result_bytes"] / stats["records"]),
            ],
            title=(
                f"Result transport (quick run, {stats['records']} records): "
                f"shrink {stats['shrink']:.2f}x, "
                f"pickle {stats['pickle_ms']:.2f} ms, "
                f"unpickle {stats['unpickle_ms']:.2f} ms"
            ),
        )
    )
    benchmark.extra_info["payload"] = {
        key: round(value, 3) if isinstance(value, float) else value
        for key, value in stats.items()
    }
    assert stats["shrink"] >= MIN_PAYLOAD_SHRINK, (
        f"records payload shrank only {stats['shrink']:.2f}x "
        f"(contract: >= {MIN_PAYLOAD_SHRINK}x): "
        f"{stats['columnar_bytes']} vs {stats['legacy_bytes']} legacy bytes"
    )
    # Transport must also be fast, not just small: a quick-run result
    # round-trips in single-digit milliseconds.
    assert stats["pickle_ms"] + stats["unpickle_ms"] < 250.0
