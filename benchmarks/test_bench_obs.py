"""Telemetry cost contracts on the closed-loop benchmark scenario.

Two guards, one per side of the observability seam:

* ``test_disabled_telemetry_is_free`` — the seam itself (a ``None``
  attribute on the collector, an env-string compare in the runner) must
  not cost anything measurable on default runs.  The structural version
  of this pin (zero ``repro/obs/`` frames at all) is
  ``scripts/profile_run.py --check``; the wall-clock version here backs
  it with a <5% ceiling — generous against scheduler noise on a
  self-vs-self comparison, but far below any real per-event work.
* ``test_enabled_telemetry_overhead_under_ceiling`` — switching
  telemetry *on* (50 ms sampling probe, per-grant histogram pushes,
  per-node gauges) must stay under 10% on the closed-loop benchmark:
  the pull-style design reads counters the hot layers already maintain,
  so the price is a handful of probe events, not per-message work.

Both use the interleaved min-of-rounds idiom of
``test_bench_engine.py``: pairs alternate within one process, the
minimum over rounds is compared, and a failed ratio gets one free
re-measurement at triple the rounds before it counts as a regression.
"""

from __future__ import annotations

import time

from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.obs import TelemetrySpec

#: Enabled telemetry may cost at most this factor on the closed loop.
ENABLED_OVERHEAD_CEILING = 1.10

#: The *disabled* seam may cost at most this factor (it does nothing).
DISABLED_OVERHEAD_CEILING = 1.05

#: Timed rounds per measurement (plus one untimed warmup round).
OVERHEAD_ROUNDS = 7


def _measure_pair(scenarios, rounds):
    """Interleaved min-of-rounds wall-clock ratio of two scenarios.

    Returns ``(ratio second/first, results dict)``; round 0 warms caches
    and is untimed.
    """
    names = [name for name, _ in scenarios]
    timings = {name: [] for name in names}
    results = {}
    for round_index in range(rounds + 1):
        for name, scenario in scenarios:
            start = time.perf_counter()
            results[name] = run(scenario)
            if round_index > 0:
                timings[name].append(time.perf_counter() - start)
    return min(timings[names[1]]) / min(timings[names[0]]), results


def test_enabled_telemetry_overhead_under_ceiling(bench_params, bench_max_events):
    """Full telemetry (probe + gauges + histogram) costs <10%."""
    plain = Scenario(
        algorithm="with_loan", params=bench_params, max_events=bench_max_events
    )
    telemetered = plain.replace(telemetry=TelemetrySpec())

    pair = (("plain", plain), ("telemetered", telemetered))
    ratio, results = _measure_pair(pair, OVERHEAD_ROUNDS)
    if ratio >= ENABLED_OVERHEAD_CEILING:
        ratio, results = _measure_pair(pair, 3 * OVERHEAD_ROUNDS)

    # The probe must observe without perturbing the protocol.
    assert results["telemetered"].metrics == results["plain"].metrics
    snapshot = results["telemetered"].telemetry
    assert snapshot is not None
    assert snapshot.value("repro_grants_total") == float(
        results["plain"].metrics.completed
    )

    assert ratio < ENABLED_OVERHEAD_CEILING, (
        f"enabled telemetry costs {100.0 * (ratio - 1.0):.1f}% on the closed "
        f"loop (ceiling {100.0 * (ENABLED_OVERHEAD_CEILING - 1.0):.0f}%)"
    )


def test_disabled_telemetry_is_free(bench_params, bench_max_events, monkeypatch):
    """The nullable seam costs nothing measurable when telemetry is off.

    Compares the benchmark scenario against itself: both runs are
    telemetry-less, so the ratio distribution is centred on 1.0 and the
    5% ceiling guards against the seam growing real per-event work (a
    genuine regression would shift *every* round, not one).
    """
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    plain = Scenario(
        algorithm="with_loan", params=bench_params, max_events=bench_max_events
    )
    pair = (("reference", plain), ("seam", plain))
    ratio, results = _measure_pair(pair, OVERHEAD_ROUNDS)
    if ratio >= DISABLED_OVERHEAD_CEILING:
        ratio, results = _measure_pair(pair, 3 * OVERHEAD_ROUNDS)

    assert results["seam"].telemetry is None
    assert results["seam"].metrics == results["reference"].metrics
    assert ratio < DISABLED_OVERHEAD_CEILING, (
        f"disabled-telemetry seam shows {100.0 * (ratio - 1.0):.1f}% drift "
        f"(ceiling {100.0 * (DISABLED_OVERHEAD_CEILING - 1.0):.0f}%)"
    )
