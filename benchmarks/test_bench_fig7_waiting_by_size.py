"""Figure 7 — average waiting time per request-size class at phi = M.

Regenerates both panels (medium and high load).  The paper buckets requests
into six size classes (1, 17, 33, 49, 65, 80 resources for M = 80); the
scaled-down benchmark uses proportionally scaled buckets.
"""

from __future__ import annotations

from conftest import BENCH_RESOURCES, run_once

from repro.experiments.figures import figure7_waiting_by_size
from repro.experiments.report import format_figure7
from repro.workload.params import LoadLevel

#: Size classes scaled from the paper's (1, 17, 33, 49, 65, 80) for M=80.
BENCH_BUCKETS = [1, 5, 10, 15, 20, BENCH_RESOURCES]


def _run_figure7(load, bench_params):
    return figure7_waiting_by_size(
        load=load, base_params=bench_params, size_buckets=BENCH_BUCKETS
    )


def _check_and_report(benchmark, series):
    text = format_figure7(series)
    print("\n" + text)
    for algorithm, points in series.series.items():
        benchmark.extra_info[algorithm] = {int(x): round(y, 2) for x, y in points}
        assert all(y >= 0 for _, y in points)
    # Shape check (Figure 7): under the counter-based scheduling the spread
    # across size classes is visible for the paper's algorithm, whereas the
    # Bouabdallah-Laforest waiting time varies comparatively little.
    assert "without_loan" in series.series and "bouabdallah" in series.series


def test_figure7a_waiting_by_size_medium_load(benchmark, bench_params):
    """Figure 7(a): medium load, phi = M."""
    series = run_once(benchmark, _run_figure7, LoadLevel.MEDIUM, bench_params)
    _check_and_report(benchmark, series)


def test_figure7b_waiting_by_size_high_load(benchmark, bench_params):
    """Figure 7(b): high load, phi = M."""
    series = run_once(benchmark, _run_figure7, LoadLevel.HIGH, bench_params)
    _check_and_report(benchmark, series)
