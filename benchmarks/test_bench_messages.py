"""Ablation A4 — message complexity per critical section.

The paper discusses message complexity qualitatively (Naimi–Tréhel's
O(log N), Bouabdallah–Laforest's "good message complexity", the broadcast
cost of Maddi/Ginat-style solutions) but does not plot it.  This benchmark
measures the average number of network messages per completed critical
section for every distributed algorithm, per message type, making the
trade-off visible: the paper's algorithm trades extra counter/token
messages for the removal of the global lock.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.workload.params import LoadLevel

ALGORITHMS = ("incremental", "bouabdallah", "without_loan", "with_loan")


def _run_message_accounting(bench_params, phi):
    params = bench_params.with_load(LoadLevel.HIGH).with_phi(phi)
    rows = []
    per_type = {}
    for algorithm in ALGORITHMS:
        result = run_experiment(algorithm, params)
        rows.append(
            (
                algorithm,
                result.metrics.messages_per_cs,
                result.metrics.messages_total,
                result.metrics.completed,
            )
        )
        per_type[algorithm] = result.metrics.messages_by_type
    return rows, per_type


def test_messages_per_cs_small_requests(benchmark, bench_params):
    """Message complexity at phi = 4 (the Figure 6 configuration)."""
    rows, per_type = run_once(benchmark, _run_message_accounting, bench_params, 4)
    print(
        "\n"
        + format_table(
            ["algorithm", "msgs / CS", "total msgs", "completed CS"],
            rows,
            title="Ablation A4: message complexity (high load, phi=4)",
        )
    )
    for algorithm, types in per_type.items():
        print(f"  {algorithm}: " + ", ".join(f"{k}={v}" for k, v in sorted(types.items())))
    benchmark.extra_info["per_cs"] = {a: round(m, 2) for a, m, _, _ in rows}
    assert all(m > 0 for _, m, _, _ in rows)


def test_messages_per_cs_large_requests(benchmark, bench_params):
    """Message complexity at phi = M/2 (larger requests, more tokens moved)."""
    phi = max(4, bench_params.num_resources // 2)
    rows, _ = run_once(benchmark, _run_message_accounting, bench_params, phi)
    print(
        "\n"
        + format_table(
            ["algorithm", "msgs / CS", "total msgs", "completed CS"],
            rows,
            title=f"Ablation A4: message complexity (high load, phi={phi})",
        )
    )
    per_cs = {a: m for a, m, _, _ in rows}
    benchmark.extra_info["per_cs"] = {a: round(m, 2) for a, m in per_cs.items()}
    # Larger requests cost more messages per CS than small ones for the
    # paper's algorithm (one counter+token exchange per resource).
    assert per_cs["with_loan"] > 0
