"""Streaming-workload benchmarks — the open-loop / chunked-record path.

The workload axis lets a run stream arbitrarily many requests through the
simulator while the metrics collector seals completed records into
bounded chunks.  These benchmarks pin that contract at benchmark scale:

* ``test_open_loop_chunked_throughput`` drives an open-loop Poisson
  workload through the paper's algorithm with ``record_chunk_rows`` set,
  and asserts the collector's live-row high-water mark stayed O(chunk)
  instead of O(total requests);
* ``test_trace_replay_throughput`` replays the checked-in bursty SWF
  trace (``examples/data/sample.swf``) end to end.
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.workload.arrivals import PoissonArrivals
from repro.workload.params import WorkloadParams
from repro.workload.spec import OpenLoopSpec, TraceReplaySpec

TRACE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples",
    "data",
    "sample.swf",
)

#: Chunk size under test: far below the request volume, so the benchmark
#: actually proves sealing happens.
CHUNK_ROWS = 128


def _open_loop_params() -> WorkloadParams:
    return WorkloadParams(
        num_processes=8,
        num_resources=20,
        phi=4,
        duration=3_000.0,
        warmup=300.0,
        seed=1,
    )


def test_open_loop_chunked_throughput(benchmark):
    """Open-loop run with chunked records: live rows stay O(chunk)."""
    scenario = Scenario(
        algorithm="with_loan",
        params=_open_loop_params(),
        workload=OpenLoopSpec(arrival=PoissonArrivals(rate=0.03)),
        record_chunk_rows=CHUNK_ROWS,
    )
    result = run_once(benchmark, run, scenario)
    m = result.metrics
    assert m.completed == m.issued
    assert m.issued > 3 * CHUNK_ROWS  # sealing genuinely exercised
    # Every chunk stays near the configured size: the collector sealed
    # as it went instead of accumulating the whole run in live columns.
    assert max(result.record_columns.chunk_lengths()) <= 2 * CHUNK_ROWS
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["requests"] = m.issued
    benchmark.extra_info["requests_per_second"] = round(m.issued / elapsed)
    benchmark.extra_info["chunks"] = result.record_columns.chunk_count


def test_trace_replay_throughput(benchmark):
    """Replay the 200-job bursty sample trace end to end."""
    params = WorkloadParams(
        num_processes=8,
        num_resources=20,
        phi=4,
        duration=4_000.0,
        warmup=400.0,
        seed=1,
    )
    scenario = Scenario(
        algorithm="with_loan",
        params=params,
        workload=TraceReplaySpec(path=TRACE),
    )
    result = run_once(benchmark, run, scenario)
    m = result.metrics
    assert m.completed == m.issued == 200
    elapsed = benchmark.stats["mean"]
    benchmark.extra_info["jobs"] = m.issued
    benchmark.extra_info["jobs_per_second"] = round(m.issued / elapsed)
    benchmark.extra_info["mean_wait_ms"] = round(m.waiting.mean, 2)
