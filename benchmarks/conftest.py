"""Shared configuration of the benchmark suite.

Every benchmark regenerates one figure (or one ablation) of the paper at a
*scaled-down* size so the whole suite runs in a couple of minutes; the
full-scale regeneration is ``scripts/reproduce_results.py`` (its output is
recorded in EXPERIMENTS.md).  Benchmarks execute exactly one round: the
quantity of interest is the protocol behaviour (rows printed / stored in
``extra_info``), the wall-clock time is only a convenient budget tracker.
"""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the benchmarks from a fresh checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment shim
    sys.path.insert(0, _SRC)

from repro.experiments.runner import default_max_events  # noqa: E402
from repro.workload.params import WorkloadParams  # noqa: E402

#: Scaled-down replica of the paper's testbed used by every benchmark.
BENCH_PROCESSES = 10
BENCH_RESOURCES = 24
BENCH_DURATION = 1_500.0
BENCH_WARMUP = 200.0

#: phi sweep used by the Figure 5 benchmarks (the paper sweeps 1..M).
BENCH_PHIS = (1, 2, 4, 8, 16, 24)


@pytest.fixture(scope="session")
def bench_params() -> WorkloadParams:
    """Base workload parameters shared by all benchmarks."""
    return WorkloadParams(
        num_processes=BENCH_PROCESSES,
        num_resources=BENCH_RESOURCES,
        phi=4,
        duration=BENCH_DURATION,
        warmup=BENCH_WARMUP,
        seed=1,
    )


@pytest.fixture(scope="session")
def bench_max_events(bench_params) -> int:
    """Explicit event budget for benchmark runs.

    Uses the runner's own :func:`default_max_events` heuristic so the
    benchmarks exercise the same safety valve as production sweeps
    instead of an implicit (or missing) bound.
    """
    return default_max_events(bench_params)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
