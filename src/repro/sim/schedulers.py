"""Pluggable event-queue schedulers for the simulation engine.

The engine (:mod:`repro.sim.engine`) is generic over *how* pending events
are stored: every scheduler queues the same plain ``(time, seq, callback,
args)`` tuples and pops them in exactly ``(time, seq)`` order, so a run
is bit-for-bit identical whichever scheduler executes it — that is the
**determinism contract**, and the randomized differential tests in
``tests/sim/test_schedulers.py`` hold every implementation to it.

Two schedulers are provided:

* :class:`HeapScheduler` (``"heap"``) — the binary-heap reference
  implementation, a thin wrapper over :mod:`heapq`.  O(log n) per
  operation, unbeatable robustness, and the semantics every other
  scheduler is tested against.
* :class:`CalendarQueue` (``"calendar"``, alias ``"ladder"``) — a
  lazily sorted calendar/ladder queue tuned for the simulator's actual
  access patterns.  A binary heap pays O(log n) *comparison calls* per
  pop (the micro-benchmarks in this PR measured ~1.5 us per pop at
  200k-event depth); the calendar queue instead keeps a sorted **spine**
  consumed through a cursor, an unsorted **pending** tier filled by bare
  ``list.append``, and a bounded **dispatch window** the engine iterates
  in place — so the per-event cost collapses to one C-level sort share
  plus an index increment, which is what pushes no-op dispatch past the
  heap by >2x (see ``benchmarks/test_bench_engine.py``).

Scheduler push protocol
-----------------------
The engine inlines the push fast path to avoid a Python frame per
scheduled event.  Every scheduler therefore exposes:

``append_threshold`` (float attribute)
    Entries with ``time >= append_threshold`` may be handed to
    :attr:`append` directly; the scheduler keeps the attribute current.
``append`` (callable attribute)
    The fast insertion path — a *C-level* callable (``list.append`` for
    the calendar's pending tier, ``partial(heappush, ...)`` for the
    heap, which sets the threshold to ``-inf`` so every entry takes it).
``insert(entry)``
    The general path for entries below the threshold (the calendar
    bisects them into the live dispatch window).

``push(entry)`` composes the two for callers that do not inline.

Selection is by name through :func:`make_scheduler`, driven by
``Scenario(scheduler=...)`` or the ``REPRO_SCHEDULER`` environment
variable (see :mod:`repro.experiments.scenario`); the default is the
heap.  Because of the determinism contract the choice is a pure
performance knob: it never changes a result, which is also why it is
hash-neutral for the run cache when left unset.
"""

from __future__ import annotations

import heapq
from bisect import insort
from functools import partial
from typing import Iterator, List, Optional, Tuple

__all__ = [
    "CalendarQueue",
    "HeapScheduler",
    "SCHEDULERS",
    "SCHEDULER_ENV",
    "available_schedulers",
    "make_scheduler",
    "resolve_scheduler_name",
]

#: Queue entry shape shared with the engine: ``(time, seq, callback, args)``.
Entry = Tuple[float, int, object, tuple]

_NEG_INF = float("-inf")


class HeapScheduler:
    """Binary-heap scheduler — the reference implementation.

    A thin wrapper over :mod:`heapq` on a plain list.  The engine's
    drain loop special-cases this class and runs ``heappop`` inline on
    :attr:`entries`, and :attr:`append` is a C-level
    ``partial(heappush, entries)`` with :attr:`append_threshold` pinned
    at ``-inf``, so wrapping costs nothing on the default path.
    """

    name = "heap"

    __slots__ = ("entries", "append", "append_threshold")

    def __init__(self) -> None:
        #: The raw heap list; the engine may operate on it directly.
        self.entries: List[Entry] = []
        #: Fast-path insertion (see the module docstring's push protocol).
        self.append = partial(heapq.heappush, self.entries)
        #: Every entry qualifies for :attr:`append`.
        self.append_threshold = _NEG_INF

    def insert(self, entry: Entry) -> None:
        """General insertion path (same as :attr:`append` for a heap)."""
        heapq.heappush(self.entries, entry)

    def push(self, entry: Entry) -> None:
        """Insert one entry."""
        heapq.heappush(self.entries, entry)

    def pop(self) -> Optional[Entry]:
        """Remove and return the smallest entry, or ``None`` when empty."""
        entries = self.entries
        return heapq.heappop(entries) if entries else None

    def peek(self) -> Optional[Entry]:
        """Return the smallest entry without removing it (``None`` if empty)."""
        entries = self.entries
        return entries[0] if entries else None

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        """Drop every queued entry."""
        self.entries.clear()

    def seqs(self) -> Iterator[int]:
        """Iterate the sequence numbers of all queued entries."""
        return (entry[1] for entry in self.entries)


class CalendarQueue:
    """Lazily sorted calendar/ladder queue.

    Structure
    ---------
    ``_window`` / :attr:`pos`
        The current dispatch window: a bounded sorted slice (at most
        :data:`CHUNK` entries at refill time) consumed through the read
        cursor :attr:`pos`.  Popping is an index increment — no heap
        sift, no memmove.
    ``_spine`` / ``_spine_pos``
        The sorted future, consumed lazily through a cursor; windows are
        sliced off its front.  Never mutated in place, so a huge
        pre-scheduled workload is sorted exactly once.
    ``_pending``
        Unsorted new arrivals, filled by bare ``list.append`` (the
        engine calls :attr:`append` — a bound C method — directly).

    Refill (:meth:`take_ready`) slices the next window off the spine.
    Pending entries are folded in lazily: while every pending entry is
    later than the prospective window (one C-level ``min`` checks), they
    stay untouched; otherwise pending is sorted and merged with the
    spine remainder — a concatenation of two sorted runs, which Timsort
    merges at C speed in one gallop.

    ``append_threshold`` is maintained as a lower bound of everything
    *outside* the window (spine remainder and pending), so the engine
    can route entries below it — which must land inside the live window
    to fire in order — to :meth:`insert`, a ``bisect.insort`` into the
    window.  Bounding the window bounds that memmove.

    Ordering argument (the determinism contract): the window is sorted
    and every outside entry is ``>= append_threshold >=`` every window
    entry's time; within a timestamp tie across the boundary the window
    entries carry smaller sequence numbers, because ties are split only
    by sorted-order slicing and new (higher-seq) arrivals only ever join
    the pending tier.  Hence draining the window before the next refill
    yields the exact global ``(time, seq)`` order a heap would.
    """

    name = "calendar"

    #: Maximum entries sliced into the dispatch window per refill.
    CHUNK = 4096

    __slots__ = ("_window", "pos", "_spine", "_spine_pos", "_pending", "append", "append_threshold")

    def __init__(self) -> None:
        self._window: List[Entry] = []
        #: Read cursor into the window (public: the engine's batch drain
        #: loop keeps it in sync while iterating the window in place).
        self.pos = 0
        self._spine: List[Entry] = []
        self._spine_pos = 0
        self._pending: List[Entry] = []
        #: Fast-path insertion (see the module docstring's push protocol).
        self.append = self._pending.append
        #: Lower bound of every entry outside the dispatch window.
        self.append_threshold = _NEG_INF

    def insert(self, entry: Entry) -> None:
        """Insert an entry below the threshold into the live window.

        Correct because the engine never schedules into the past: the
        entry's time is ``>= now``, hence at or after the entry at
        ``pos - 1``, so bisecting from :attr:`pos` keeps the window
        sorted and the cursor untouched.
        """
        insort(self._window, entry, self.pos)

    def push(self, entry: Entry) -> None:
        """Insert one entry (compose the fast/general paths)."""
        if entry[0] >= self.append_threshold:
            self._pending.append(entry)
        else:
            self.insert(entry)

    # ------------------------------------------------------------------ #
    # refill machinery
    # ------------------------------------------------------------------ #
    def _merge_pending(self) -> None:
        """Fold the sorted pending tier into the spine (two-run Timsort merge)."""
        pending = self._pending
        spine_pos = self._spine_pos
        if spine_pos < len(self._spine):
            merged = self._spine[spine_pos:]
            merged += pending
            merged.sort()  # two sorted runs -> one C-level galloping merge
            self._spine = merged
        else:
            self._spine = pending
        self._spine_pos = 0
        self._pending = []
        self.append = self._pending.append

    def take_ready(self) -> Optional[List[Entry]]:
        """Return the dispatch window with unconsumed entries, else ``None``.

        Engine batch-drain hook: the caller iterates the returned list
        from :attr:`pos`, advancing :attr:`pos` itself as it consumes
        entries (callbacks may push while iterating; below-threshold
        insertions mutate the same list in place, never replace it).
        """
        if self.pos < len(self._window):
            return self._window
        pending = self._pending
        spine = self._spine
        spine_pos = self._spine_pos
        if pending:
            pending.sort()
            end = spine_pos + self.CHUNK
            # While every pending entry sorts after the prospective
            # window, defer folding it in; one tuple compare decides.
            if spine_pos >= len(spine) or pending[0] < (
                spine[end - 1] if end <= len(spine) else spine[-1]
            ):
                self._merge_pending()
                spine = self._spine
                spine_pos = 0
                pending = self._pending  # now []
        elif spine_pos >= len(spine):
            # Fully empty: reset so the spine's memory is released and
            # new arrivals take the append fast path again.
            if spine:
                self._spine = []
                self._spine_pos = 0
            if self._window:
                self._window = []
            self.pos = 0
            self.append_threshold = _NEG_INF
            return None
        end = spine_pos + self.CHUNK
        self._window = spine[spine_pos:end]
        self.pos = 0
        self._spine_pos = min(end, len(spine))
        # Lower bound of everything left outside the window.
        if self._spine_pos < len(spine):
            threshold = spine[self._spine_pos][0]
            if pending and pending[0][0] < threshold:
                threshold = pending[0][0]
        elif pending:
            threshold = pending[0][0]
        else:
            threshold = self._window[-1][0]
        self.append_threshold = threshold
        return self._window

    def pop(self) -> Optional[Entry]:
        """Remove and return the smallest entry, or ``None`` when empty."""
        window = self.take_ready()
        if window is None:
            return None
        pos = self.pos
        self.pos = pos + 1
        return window[pos]

    def peek(self) -> Optional[Entry]:
        """Return the smallest entry without removing it (``None`` if empty)."""
        window = self.take_ready()
        return window[self.pos] if window is not None else None

    def __len__(self) -> int:
        return (
            len(self._window)
            - self.pos
            + len(self._spine)
            - self._spine_pos
            + len(self._pending)
        )

    def clear(self) -> None:
        """Drop every queued entry and reset the window."""
        self._window = []
        self.pos = 0
        self._spine = []
        self._spine_pos = 0
        self._pending = []
        self.append = self._pending.append
        self.append_threshold = _NEG_INF

    def seqs(self) -> Iterator[int]:
        """Iterate the sequence numbers of all queued entries."""
        for entry in self._window[self.pos:]:
            yield entry[1]
        for entry in self._spine[self._spine_pos:]:
            yield entry[1]
        for entry in self._pending:
            yield entry[1]


#: Registered scheduler implementations, by selection name.
SCHEDULERS = {
    HeapScheduler.name: HeapScheduler,
    CalendarQueue.name: CalendarQueue,
    # Honest alias: the implementation is a ladder-queue variant of the
    # classic calendar queue (lazily sorted rungs instead of hashed
    # year buckets).
    "ladder": CalendarQueue,
}

#: Environment variable overriding the default scheduler for every
#: ``Simulator()`` constructed without an explicit choice.
SCHEDULER_ENV = "REPRO_SCHEDULER"


def available_schedulers() -> Tuple[str, ...]:
    """Names accepted by :func:`make_scheduler` / ``Scenario(scheduler=...)``."""
    return tuple(sorted(SCHEDULERS))


def resolve_scheduler_name(name: Optional[str]) -> str:
    """Resolve an optional scheduler name: explicit > ``$REPRO_SCHEDULER`` > heap."""
    if name is None:
        import os

        name = os.environ.get(SCHEDULER_ENV) or HeapScheduler.name
    if name not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        )
    return name


def make_scheduler(name: Optional[str] = None):
    """Build a scheduler instance from an optional selection name."""
    return SCHEDULERS[resolve_scheduler_name(name)]()
