"""Event-driven simulation engine.

The engine is intentionally minimal: a queue of timestamped callbacks and
a simulated clock.  Determinism matters more than raw speed for a
protocol-evaluation substrate, so ties on the timestamp are broken by a
monotonically increasing sequence number (insertion order), which makes
every run with the same seed bit-for-bit reproducible.

Fast path
---------
The queue holds plain ``(time, seq, callback, args)`` tuples, so ordering
is decided by CPython's C-level tuple comparison instead of a generated
dataclass ``__lt__`` — ``time`` never ties with itself and ``seq`` is
unique, so comparison never reaches the (uncomparable) callback.
Cancellation is the rare case: it is tracked in a side set of sequence
numbers, and :class:`Event` survives only as a thin handle so existing
callers (e.g. the resend timers in :mod:`repro.core.node`) keep working
unchanged.

*How* the tuples are stored is pluggable (:mod:`repro.sim.schedulers`):
the binary heap is the reference implementation, and a calendar/ladder
queue trades heap sifts for one amortised sort per dispatch window.
Every scheduler pops in identical ``(time, seq)`` order, so the choice
is a pure performance knob — select it per :class:`Simulator` (or per
``Scenario``), or globally via the ``REPRO_SCHEDULER`` environment
variable.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Union

from repro.sim.schedulers import CalendarQueue, HeapScheduler, make_scheduler

SchedulerLike = Union[HeapScheduler, CalendarQueue]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """Handle for a scheduled callback.

    The engine itself queues bare tuples; this object exists only so
    callers can cancel (or inspect) a scheduled callback.  It compares by
    ``(time, seq)`` like the heap entries do, which preserves the historical
    dataclass ordering semantics.

    Handles are generation-scoped: :meth:`Simulator.reset` starts a new
    generation (and a fresh seq space), so a handle kept across a reset
    goes inert — its :meth:`cancel` is a no-op instead of cancelling an
    unrelated new event that happens to reuse its sequence number.
    """

    __slots__ = ("time", "seq", "callback", "args", "_sim", "_generation")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
        generation: int = 0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._sim = sim
        self._generation = generation

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled (inert stale handles: False)."""
        sim = self._sim
        return (
            sim is not None
            and self._generation == sim._generation
            and self.seq in sim._cancelled
        )

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped.

        A handle that survived a :meth:`Simulator.reset` is inert: its
        seq now belongs to a different generation of events, so the
        cancel is silently dropped rather than hitting an innocent
        bystander.
        """
        sim = self._sim
        if sim is not None and self._generation == sim._generation:
            sim.cancel(self.seq)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __hash__(self) -> int:
        # Defining __eq__ suppresses the inherited hash; restore one that
        # is consistent with it ((time, seq) is immutable for the lifetime
        # of the handle), so handles can live in sets and dict keys.
        return hash((self.time, self.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(time={self.time!r}, seq={self.seq!r}, cancelled={self.cancelled})"


class Simulator:
    """Discrete-event simulator with a simulated clock.

    Parameters
    ----------
    scheduler:
        Event-queue implementation: a name from
        :data:`repro.sim.schedulers.SCHEDULERS` (``"heap"``,
        ``"calendar"``, ...), a pre-built scheduler instance, or ``None``
        for the default (``$REPRO_SCHEDULER`` if set, else the heap).
        Results are bit-identical across schedulers; see
        :mod:`repro.sim.schedulers` for the determinism contract.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = (
        "_scheduler",
        "_seq",
        "_now",
        "_running",
        "_processed",
        "_cancelled",
        "_generation",
    )

    def __init__(self, scheduler: Union[str, SchedulerLike, None] = None) -> None:
        if scheduler is None or isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler)
        self._scheduler = scheduler
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        # Sequence numbers of cancelled-but-still-queued events.
        self._cancelled: set[int] = set()
        # Bumped by reset(): stale Event handles from an older generation
        # are inert (their seqs refer to recycled numbers).
        self._generation = 0

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._scheduler)

    @property
    def scheduler_name(self) -> str:
        """Selection name of the active event scheduler."""
        return self._scheduler.name

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _raise_past(self, time: float) -> None:
        """Shared past-time error for every absolute-time scheduling call.

        The (cheap) comparison stays inline in each caller; only the slow
        failure path is deduplicated here, so the hot paths pay no extra
        Python frame per event.
        """
        raise SimulationError(
            f"cannot schedule an event in the past (time={time!r} < now={self._now!r})"
        )

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current simulated time.
        callback:
            Callable invoked when the event fires.
        *args:
            Positional arguments forwarded to the callback.

        Returns
        -------
        Event
            Handle that can be cancelled with :meth:`Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay!r})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        scheduler = self._scheduler
        if time >= scheduler.append_threshold:
            scheduler.append((time, seq, callback, args))
        else:
            scheduler.insert((time, seq, callback, args))
        return Event(time, seq, callback, args, self, self._generation)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        time = float(time)
        if time < self._now:
            self._raise_past(time)
        seq = self._seq
        self._seq = seq + 1
        scheduler = self._scheduler
        if time >= scheduler.append_threshold:
            scheduler.append((time, seq, callback, args))
        else:
            scheduler.insert((time, seq, callback, args))
        return Event(time, seq, callback, args, self, self._generation)

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast-path :meth:`schedule_at` that allocates no :class:`Event`.

        Intended for hot senders (the network delivery path) that never
        cancel.  Semantics are otherwise identical to :meth:`schedule_at`.
        """
        time = float(time)
        if time < self._now:
            self._raise_past(time)
        seq = self._seq
        self._seq = seq + 1
        scheduler = self._scheduler
        if time >= scheduler.append_threshold:
            scheduler.append((time, seq, callback, args))
        else:
            scheduler.insert((time, seq, callback, args))

    def post_in(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast-path :meth:`schedule` that allocates no :class:`Event`.

        The relative-delay twin of :meth:`post_at`, for hot callers (the
        workload clients' think-time/CS timers on crash-free runs) whose
        events are never cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay!r})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        scheduler = self._scheduler
        if time >= scheduler.append_threshold:
            scheduler.append((time, seq, callback, args))
        else:
            scheduler.insert((time, seq, callback, args))

    def cancel(self, seq: int) -> None:
        """Cancel the queued event with sequence number ``seq``."""
        if seq >= self._seq:
            return
        self._cancelled.add(seq)
        # Cancelling an already-fired event would pin its seq forever;
        # prune whenever the set outgrows the queue (cancels are rare,
        # so the sweep is effectively free).
        if len(self._cancelled) > 64 and len(self._cancelled) > len(self._scheduler):
            self._cancelled.intersection_update(self._scheduler.seqs())

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        is empty.
        """
        pop = self._scheduler.pop
        cancelled = self._cancelled
        while True:
            entry = pop()
            if entry is None:
                return False
            time, seq, callback, args = entry
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            self._processed += 1
            callback(*args)
            return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        advance_to_until: bool = True,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have been executed.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time.  The clock is advanced to ``until`` in that case.
        max_events:
            Safety valve for runaway protocols; raises
            :class:`SimulationError` when exceeded.
        advance_to_until:
            When false, the clock is left at the last executed event
            instead of being advanced to ``until`` — for callers using
            ``until`` purely as a stall cap, where reporting the cap as
            the reached simulation time would be a lie.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        scheduler = self._scheduler
        cancelled = self._cancelled
        try:
            if until is None:
                # Tightest loops for the common "drain everything" case,
                # one per scheduler family.  max_events is only a runaway
                # safety valve here: a countdown, not a loop structure.
                budget = -1 if max_events is None else max_events
                if type(scheduler) is HeapScheduler:
                    queue = scheduler.entries
                    heappop = heapq.heappop
                    while queue:
                        time, seq, callback, args = heappop(queue)
                        if cancelled and seq in cancelled:
                            cancelled.discard(seq)
                            continue
                        if budget == 0:
                            raise SimulationError(
                                f"max_events={max_events} exceeded; "
                                f"possible livelock in the protocol"
                            )
                        budget -= 1
                        self._now = time
                        self._processed += 1
                        callback(*args)
                else:
                    # Batch drain: iterate the scheduler's ready window in
                    # place instead of paying a pop() call per event.  The
                    # cursor is re-read each iteration and advanced *before*
                    # the callback, so in-window insertions and nested
                    # ``step()`` calls made by a callback stay consistent
                    # with this loop.
                    while True:
                        window = scheduler.take_ready()
                        if window is None:
                            break
                        while True:
                            pos = scheduler.pos
                            if pos >= len(window):
                                break
                            time, seq, callback, args = window[pos]
                            scheduler.pos = pos + 1
                            if cancelled and seq in cancelled:
                                cancelled.discard(seq)
                                continue
                            if budget == 0:
                                raise SimulationError(
                                    f"max_events={max_events} exceeded; "
                                    f"possible livelock in the protocol"
                                )
                            budget -= 1
                            self._now = time
                            self._processed += 1
                            callback(*args)
                return
            # Run bounded by `until`: generic peek/pop loop,
            # scheduler-agnostic (fault runs and stall caps — never the
            # hot no-fault path).
            peek = scheduler.peek
            pop = scheduler.pop
            executed = 0
            while True:
                entry = peek()
                if entry is None:
                    break
                time, seq, callback, args = entry
                if cancelled and seq in cancelled:
                    pop()
                    cancelled.discard(seq)
                    continue
                if time > until:
                    if advance_to_until:
                        self._now = max(self._now, until)
                    return
                pop()
                self._now = time
                self._processed += 1
                callback(*args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded; possible livelock in the protocol"
                    )
            if advance_to_until:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and reset the clock to zero.

        Starts a new handle generation: :class:`Event` handles obtained
        before the reset go inert (see :meth:`Event.cancel`), because the
        seq space restarts and their numbers will be reused by unrelated
        new events.
        """
        self._scheduler.clear()
        self._cancelled.clear()
        self._now = 0.0
        self._seq = 0
        self._processed = 0
        self._generation += 1
