"""Event-driven simulation engine.

The engine is intentionally minimal: a binary heap of timestamped callbacks
and a simulated clock.  Determinism matters more than raw speed for a
protocol-evaluation substrate, so ties on the timestamp are broken by a
monotonically increasing sequence number (insertion order), which makes
every run with the same seed bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so that the heap pops them in
    chronological order with FIFO tie-breaking.  The callback and its
    arguments are excluded from comparison.
    """

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with a simulated clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current simulated time.
        callback:
            Callable invoked when the event fires.
        *args:
            Positional arguments forwarded to the callback.

        Returns
        -------
        Event
            Handle that can be cancelled with :meth:`Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time!r} < now={self._now!r})"
            )
        event = Event(time=float(time), seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have been executed.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time.  The clock is advanced to ``until`` in that case.
        max_events:
            Safety valve for runaway protocols; raises
            :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = max(self._now, until)
                    return
                heapq.heappop(self._queue)
                self._now = event.time
                self._processed += 1
                event.callback(*event.args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded; possible livelock in the protocol"
                    )
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and reset the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._processed = 0
