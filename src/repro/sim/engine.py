"""Event-driven simulation engine.

The engine is intentionally minimal: a binary heap of timestamped callbacks
and a simulated clock.  Determinism matters more than raw speed for a
protocol-evaluation substrate, so ties on the timestamp are broken by a
monotonically increasing sequence number (insertion order), which makes
every run with the same seed bit-for-bit reproducible.

Fast path
---------
The heap holds plain ``(time, seq, callback, args)`` tuples, so ordering is
decided by CPython's C-level tuple comparison instead of a generated
dataclass ``__lt__`` — ``time`` never ties with itself and ``seq`` is
unique, so comparison never reaches the (uncomparable) callback.
Cancellation is the rare case: it is tracked in a side set of sequence
numbers, and :class:`Event` survives only as a thin handle so existing
callers (e.g. the resend timers in :mod:`repro.core.node`) keep working
unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """Handle for a scheduled callback.

    The engine itself queues bare tuples; this object exists only so
    callers can cancel (or inspect) a scheduled callback.  It compares by
    ``(time, seq)`` like the heap entries do, which preserves the historical
    dataclass ordering semantics.
    """

    __slots__ = ("time", "seq", "callback", "args", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._sim is not None and self.seq in self._sim._cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self._sim is not None:
            self._sim.cancel(self.seq)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __hash__(self) -> int:
        # Defining __eq__ suppresses the inherited hash; restore one that
        # is consistent with it ((time, seq) is immutable for the lifetime
        # of the handle), so handles can live in sets and dict keys.
        return hash((self.time, self.seq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(time={self.time!r}, seq={self.seq!r}, cancelled={self.cancelled})"


class Simulator:
    """Discrete-event simulator with a simulated clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = ("_queue", "_seq", "_now", "_running", "_processed", "_cancelled")

    def __init__(self) -> None:
        # Heap entries are (time, seq, callback, args) tuples; comparison
        # stops at seq (unique), so callback/args are never compared.
        self._queue: list = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        # Sequence numbers of cancelled-but-still-queued events.
        self._cancelled: set[int] = set()

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        Parameters
        ----------
        delay:
            Non-negative offset from the current simulated time.
        callback:
            Callable invoked when the event fires.
        *args:
            Positional arguments forwarded to the callback.

        Returns
        -------
        Event
            Handle that can be cancelled with :meth:`Event.cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        time = float(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time!r} < now={self._now!r})"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))
        return Event(time, seq, callback, args, self)

    def post_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast-path :meth:`schedule_at` that allocates no :class:`Event`.

        Intended for hot senders (the network delivery path) that never
        cancel.  Semantics are otherwise identical to :meth:`schedule_at`.
        """
        time = float(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event in the past (time={time!r} < now={self._now!r})"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def cancel(self, seq: int) -> None:
        """Cancel the queued event with sequence number ``seq``."""
        if seq >= self._seq:
            return
        self._cancelled.add(seq)
        # Cancelling an already-fired event would pin its seq forever;
        # prune whenever the set outgrows the queue (cancels are rare,
        # so the sweep is effectively free).
        if len(self._cancelled) > 64 and len(self._cancelled) > len(self._queue):
            self._cancelled.intersection_update(entry[1] for entry in self._queue)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        is empty.
        """
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            time, seq, callback, args = heapq.heappop(queue)
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            self._processed += 1
            callback(*args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        advance_to_until: bool = True,
    ) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have been executed.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire strictly after
            this time.  The clock is advanced to ``until`` in that case.
        max_events:
            Safety valve for runaway protocols; raises
            :class:`SimulationError` when exceeded.
        advance_to_until:
            When false, the clock is left at the last executed event
            instead of being advanced to ``until`` — for callers using
            ``until`` purely as a stall cap, where reporting the cap as
            the reached simulation time would be a lie.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        queue = self._queue
        cancelled = self._cancelled
        heappop = heapq.heappop
        try:
            if until is None and max_events is None:
                # Tightest loop for the common "drain everything" case.
                while queue:
                    time, seq, callback, args = heappop(queue)
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self._now = time
                    self._processed += 1
                    callback(*args)
                return
            while queue:
                time, seq, callback, args = queue[0]
                if cancelled and seq in cancelled:
                    heappop(queue)
                    cancelled.discard(seq)
                    continue
                if until is not None and time > until:
                    if advance_to_until:
                        self._now = max(self._now, until)
                    return
                heappop(queue)
                self._now = time
                self._processed += 1
                callback(*args)
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"max_events={max_events} exceeded; possible livelock in the protocol"
                    )
            if until is not None and advance_to_until:
                self._now = max(self._now, until)
        finally:
            self._running = False

    def reset(self) -> None:
        """Clear all pending events and reset the clock to zero."""
        self._queue.clear()
        self._cancelled.clear()
        self._now = 0.0
        self._seq = 0
        self._processed = 0
