"""Live fault layer consulted by the network on every send and delivery.

The models below are the *thawed* counterparts of the declarative specs in
:mod:`repro.sim.faultspec`, exactly as :mod:`repro.sim.latency` models are
the thawed counterparts of :mod:`repro.sim.latencyspec` specs: they may
carry live state (a :class:`random.Random`) and therefore never serve as
experiment parameters themselves — a spec builds one per run, inside the
process that runs the experiment.

A fault model answers two questions:

* :meth:`FaultModel.drop_on_send` — evaluated by ``Network.send`` at send
  time: is the message lost before it ever enters the link (crashed
  sender, Bernoulli link loss)?
* :meth:`FaultModel.drop_on_delivery` — evaluated by ``Network._deliver``
  at delivery time: has the link or the destination gone down while the
  message was in flight (partition window, crashed receiver)?

Both answers must be deterministic functions of the spec and the (single
threaded, deterministic) simulation history: randomness enters only
through a dedicated ``random.Random`` seeded from the spec, and send /
delivery events happen in the same order in every run of the same
scenario — which is what keeps fault sweeps bit-identical between
``workers=1`` and ``workers=N``.

A fault model additionally *declares* the node outages it produces via
:meth:`FaultModel.crash_windows`: the runner turns every window into
crash/recover lifecycle events delivered through
:class:`repro.sim.lifecycle.NodeLifecycle`, so a crashed node stops its
local timers too (resend timers, think-time clients) instead of silently
computing while its network is cut.  Models producing no windows cost
nothing: the lifecycle layer is only instantiated when at least one
window exists, keeping the no-crash path untouched.
"""

from __future__ import annotations

import math
import random
from typing import Any, FrozenSet, Optional, Sequence, Tuple


class FaultModel:
    """Interface of the live fault layer (default: no faults).

    Subclasses override one or both hooks; returning ``True`` drops the
    message (the network records it in ``MessageStats.dropped``).
    """

    __slots__ = ()

    def drop_on_send(self, time: float, src: int, dst: int, message: Any) -> bool:
        """Whether a message sent now from ``src`` to ``dst`` is lost."""
        return False

    def drop_on_delivery(self, time: float, src: int, dst: int, message: Any) -> bool:
        """Whether a message arriving now at ``dst`` from ``src`` is lost."""
        return False

    def crash_windows(self) -> Tuple[Tuple[int, float, float], ...]:
        """Node outages this model produces, as ``(node, at, recover_at)``.

        ``recover_at`` is ``math.inf`` for a crash that never heals.  The
        runner schedules one lifecycle crash event per window (and a
        recovery event when ``recover_at`` is finite); an empty tuple —
        the default — means no lifecycle machinery is installed at all.
        Windows must be deterministic in the spec (no RNG), so the
        lifecycle schedule is identical in every process running the
        scenario.
        """
        return ()

    def quiet_until(self) -> float:
        """First simulated instant either drop hook could return ``True``.

        Both hooks are guaranteed to return ``False`` for any ``time``
        strictly before this value, so the network may skip consulting
        them for messages whose send *and* delivery both precede it —
        which is what makes an armed-but-far-future crash window cost
        (almost) nothing on the hot path.  The conservative default is
        ``0.0``: always consult.  Randomised models (Bernoulli loss) must
        keep that default; deterministic windowed models return their
        window start.
        """
        return 0.0

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class BernoulliLossModel(FaultModel):
    """Each message is lost independently with probability ``p``.

    The decision is made at send time from a dedicated RNG, so the drop
    sequence depends only on ``(p, seed, kinds)`` and the (deterministic)
    order of sends — never on which process runs the experiment.  When
    ``kinds`` is given, only messages whose class name is in it are at
    risk (and only they consume an RNG draw); others pass untouched.
    """

    __slots__ = ("p", "kinds", "_rng")

    def __init__(
        self, p: float, seed: int = 0, kinds: Optional[Sequence[str]] = None
    ) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must lie in [0, 1], got {p!r}")
        self.p = float(p)
        self.kinds: Optional[FrozenSet[str]] = frozenset(kinds) if kinds is not None else None
        self._rng = random.Random(seed)

    def drop_on_send(self, time: float, src: int, dst: int, message: Any) -> bool:
        if self.kinds is not None and type(message).__name__ not in self.kinds:
            return False
        return self._rng.random() < self.p

    def describe(self) -> str:
        if self.kinds is not None:
            return f"loss(p={self.p:g}, kinds={sorted(self.kinds)})"
        return f"loss(p={self.p:g})"


class LinkPartitionModel(FaultModel):
    """Bidirectional partition of given node pairs during ``[start, end)``.

    A message is dropped when it would be *delivered* while the partition
    is active — the in-flight message hits the cut, whichever side it was
    sent from.
    """

    __slots__ = ("pairs", "start", "end")

    def __init__(
        self, pairs: Sequence[Tuple[int, int]], start: float = 0.0, end: float = math.inf
    ) -> None:
        self.pairs: FrozenSet[FrozenSet[int]] = frozenset(frozenset(p) for p in pairs)
        self.start = float(start)
        self.end = float(end)

    def drop_on_delivery(self, time: float, src: int, dst: int, message: Any) -> bool:
        if not self.start <= time < self.end:
            return False
        pair = frozenset((src, dst))
        return pair in self.pairs

    def quiet_until(self) -> float:
        """No message can hit the cut before the partition starts."""
        return self.start

    def describe(self) -> str:
        links = sorted(tuple(sorted(p)) for p in self.pairs)
        return f"partition({links}, [{self.start:g}, {self.end:g}))"


class NodeCrashModel(FaultModel):
    """Fail-silent crash of one node during ``[at, recover_at)``.

    While crashed, the node neither sends (messages it emits are lost at
    send time) nor receives (messages arriving for it are lost at delivery
    time); messages already delivered before the crash are unaffected.
    The window is also reported through :meth:`crash_windows`, so the
    runner halts the node's *local* computation too: its timers are
    suspended by an ``on_crash`` lifecycle callback and resumed by
    ``on_recover`` (see :mod:`repro.sim.lifecycle`) — a full fail-silent
    crash, not just a network cut.
    """

    __slots__ = ("node", "at", "recover_at")

    def __init__(self, node: int, at: float, recover_at: float = math.inf) -> None:
        if recover_at <= at:
            raise ValueError(f"recover_at ({recover_at!r}) must be after at ({at!r})")
        self.node = int(node)
        self.at = float(at)
        self.recover_at = float(recover_at)

    def crashed(self, time: float) -> bool:
        """Whether the node is down at simulated ``time``."""
        return self.at <= time < self.recover_at

    def drop_on_send(self, time: float, src: int, dst: int, message: Any) -> bool:
        return src == self.node and self.crashed(time)

    def drop_on_delivery(self, time: float, src: int, dst: int, message: Any) -> bool:
        return dst == self.node and self.crashed(time)

    def crash_windows(self) -> Tuple[Tuple[int, float, float], ...]:
        """The single outage window this crash produces."""
        return ((self.node, self.at, self.recover_at),)

    def quiet_until(self) -> float:
        """No message is affected before the crash instant."""
        return self.at

    def describe(self) -> str:
        window = f"[{self.at:g}, {self.recover_at:g})"
        return f"crash(node={self.node}, {window})"


class CompositeFaultModel(FaultModel):
    """Union of several fault models: a message is dropped if *any* drops it.

    Children are consulted in spec order; ``any`` short-circuits, which is
    fine for determinism because the whole simulation is single-threaded
    and replays identically.
    """

    __slots__ = ("models",)

    def __init__(self, models: Sequence[FaultModel]) -> None:
        self.models: Tuple[FaultModel, ...] = tuple(models)

    def drop_on_send(self, time: float, src: int, dst: int, message: Any) -> bool:
        return any(m.drop_on_send(time, src, dst, message) for m in self.models)

    def drop_on_delivery(self, time: float, src: int, dst: int, message: Any) -> bool:
        return any(m.drop_on_delivery(time, src, dst, message) for m in self.models)

    def crash_windows(self) -> Tuple[Tuple[int, float, float], ...]:
        """Union of the children's outage windows, sorted by (at, node).

        Sorting makes the lifecycle schedule independent of the order the
        composite's children were given in, so equivalent composites
        produce identical event sequences.
        """
        windows = [w for m in self.models for w in m.crash_windows()]
        return tuple(sorted(windows, key=lambda w: (w[1], w[0], w[2])))

    def quiet_until(self) -> float:
        """Quiet only while every child is quiet."""
        return min((m.quiet_until() for m in self.models), default=math.inf)

    def describe(self) -> str:
        return " + ".join(m.describe() for m in self.models)
