"""Node crash/recovery lifecycle delivery.

The fault layer (:mod:`repro.sim.faults`) models the *network* side of a
crash — a down node neither sends nor receives.  This module adds the
*process* side: every outage window a fault model declares through
:meth:`~repro.sim.faults.FaultModel.crash_windows` is turned into two
lifecycle events delivered to the node's participants (its protocol
allocator and its workload client):

* ``on_crash(time)`` at the start of the window — participants suspend
  their local timers (resend safety nets, think-time clients) so a dead
  node stops computing;
* ``on_recover(time)`` at its end — participants discard volatile state
  and resume.

Listeners (e.g. the :class:`repro.core.recovery.RecoveryCoordinator`)
observe the same transitions *before* the participants do, so recovery
bookkeeping — cancelling a pending crash detection, fencing regenerated
tokens — is applied before a rebooting node acts on its own state.

Determinism: windows are scheduled up front (before the workload clients
start), so lifecycle events carry the lowest sequence numbers at their
timestamp and fire before any same-time protocol event — in every
process that runs the scenario.  When a fault model declares no windows
the lifecycle layer is never instantiated, which keeps the no-crash path
bit-identical to the pre-lifecycle substrate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from repro.metrics.columns import DowntimeColumns
from repro.sim.engine import Simulator

__all__ = ["LifecycleListener", "LifecycleParticipant", "NodeLifecycle"]


class LifecycleParticipant(Protocol):
    """Anything that reacts to its node going down and coming back."""

    def on_crash(self, time: float) -> None:
        """The participant's node halts at simulated ``time``."""

    def on_recover(self, time: float) -> None:
        """The participant's node reboots at simulated ``time``."""


class LifecycleListener(Protocol):
    """Observer of lifecycle transitions, notified before participants."""

    def node_crashed(self, node: int, time: float) -> None:
        """Node ``node`` went down at simulated ``time``."""

    def node_recovered(self, node: int, time: float) -> None:
        """Node ``node`` came back at simulated ``time``."""


class NodeLifecycle:
    """Schedules and delivers crash/recover events for one simulation run.

    Parameters
    ----------
    sim:
        Simulation engine; events are scheduled at construction time.
    windows:
        ``(node, at, recover_at)`` outage windows (``recover_at`` may be
        ``math.inf``), typically ``fault_model.crash_windows()``.
        Overlapping windows for one node nest: the node is down while at
        least one window covers the current time, and transitions are
        delivered only on the down/up edges.
    participants:
        ``node id -> participants`` delivered the transitions, in order
        (convention: protocol allocator first, then the workload client,
        so a rebooting allocator is consistent before its client issues).
    """

    def __init__(
        self,
        sim: Simulator,
        windows: Iterable[Tuple[int, float, float]],
        participants: Dict[int, Sequence[LifecycleParticipant]],
    ) -> None:
        self._sim = sim
        self._participants = {node: tuple(obs) for node, obs in participants.items()}
        self._listeners: List[LifecycleListener] = []
        # Nesting depth per node: down while > 0 (overlapping windows).
        self._depth: Dict[int, int] = {}
        self._down_since: Dict[int, float] = {}
        self._downtime: Dict[int, float] = {}
        self._crash_count: Dict[int, int] = {}
        # Per node, the times its outages actually *end* (right edges of
        # the merged crash windows, finite ones only): a recover event
        # nested inside a wider window — in particular inside a
        # permanent one — never brings the node back and must not count.
        # Lets observers ask whether waiting for a down node is ever
        # worthwhile, and until when.
        self._effective_reboots: Dict[int, List[float]] = {}
        spans_by_node: Dict[int, List[Tuple[float, float]]] = {}
        for node, at, recover_at in windows:
            sim.schedule_at(at, self._crash, node)
            if not math.isinf(recover_at):
                sim.schedule_at(recover_at, self._recover, node)
            spans_by_node.setdefault(node, []).append((at, recover_at))
        for node, spans in spans_by_node.items():
            spans.sort()
            merged: List[List[float]] = []
            for at, recover_at in spans:
                if merged and at < merged[-1][1]:
                    merged[-1][1] = max(merged[-1][1], recover_at)
                else:
                    merged.append([at, recover_at])
            self._effective_reboots[node] = [
                end for _, end in merged if not math.isinf(end)
            ]

    def add_listener(self, listener: LifecycleListener) -> None:
        """Register an observer notified before participants on each edge."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_down(self, node: int) -> bool:
        """Whether ``node`` is currently inside a crash window."""
        return self._depth.get(node, 0) > 0

    def down_nodes(self) -> List[int]:
        """Sorted ids of every node currently down."""
        return sorted(node for node, depth in self._depth.items() if depth > 0)

    def next_reboot(self, node: int) -> Optional[float]:
        """Earliest future time an outage of ``node`` actually ends.

        ``None`` for a node that never comes back up again — down
        permanently (all its windows reach into one ending at infinity)
        or already past its last reboot.  A recover event nested inside
        a wider crash window does not count: it never raises the node.
        Reboots at exactly the current instant have already been
        delivered (lifecycle events are scheduled before any observer's)
        and are not returned.
        """
        for end in self._effective_reboots.get(node, ()):
            if end > self._sim.now:
                return end
        return None

    # ------------------------------------------------------------------ #
    # event delivery
    # ------------------------------------------------------------------ #
    def _crash(self, node: int) -> None:
        depth = self._depth.get(node, 0)
        self._depth[node] = depth + 1
        if depth > 0:  # already down (overlapping window): no edge
            return
        now = self._sim.now
        self._down_since[node] = now
        self._crash_count[node] = self._crash_count.get(node, 0) + 1
        for listener in self._listeners:
            listener.node_crashed(node, now)
        for participant in self._participants.get(node, ()):
            participant.on_crash(now)

    def _recover(self, node: int) -> None:
        depth = self._depth.get(node, 0)
        if depth == 0:  # pragma: no cover - defensive (unmatched recover)
            return
        self._depth[node] = depth - 1
        if depth > 1:  # still covered by another window: no edge
            return
        now = self._sim.now
        self._downtime[node] = self._downtime.get(node, 0.0) + now - self._down_since.pop(node)
        for listener in self._listeners:
            listener.node_recovered(node, now)
        for participant in self._participants.get(node, ()):
            participant.on_recover(now)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def downtime_columns(self, end: float) -> DowntimeColumns:
        """Per-node downtime accumulated so far, open windows closed at ``end``.

        Only nodes that actually went down appear; a run whose crash
        windows never fired reports empty columns.
        """
        totals = dict(self._downtime)
        for node, since in self._down_since.items():
            totals[node] = totals.get(node, 0.0) + max(0.0, end - since)
        nodes = sorted(totals)
        return DowntimeColumns.build(
            nodes=nodes,
            downtime=[totals[n] for n in nodes],
            crashes=[self._crash_count.get(n, 0) for n in nodes],
        )
