"""Reliable FIFO message-passing network.

Implements the communication model assumed in Section 3.1 of the paper:

* reliable links — no loss, no duplication;
* FIFO links — messages between a given ordered pair of nodes are
  delivered in the order they were sent, even if the latency model is
  jittered (delivery times are clamped to be non-decreasing per link);
* complete communication graph — any node can message any other node.

The network also keeps per-message-type counters so experiments can report
message complexity alongside the paper's two primary metrics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.node import Node


@dataclass
class MessageStats:
    """Aggregate message accounting for one simulation run."""

    total: int = 0
    by_type: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_sender: Dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, src: int, message: Any) -> None:
        """Record one sent message."""
        self.total += 1
        self.by_type[type(message).__name__] += 1
        self.by_sender[src] += 1

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the per-type counters."""
        return dict(self.by_type)


class Network:
    """Message router between registered :class:`~repro.sim.node.Node` objects.

    Parameters
    ----------
    sim:
        Simulation engine used to schedule deliveries.
    latency:
        Latency model; defaults to the paper's constant ``gamma = 0.6``.
    """

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.stats = MessageStats()
        self._nodes: Dict[int, "Node"] = {}
        # Last scheduled delivery time per directed link, used to enforce
        # per-link FIFO even under jittered latencies.
        self._last_delivery: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, node: "Node") -> None:
        """Attach a node to the network; its id must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Return the node registered under ``node_id``."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[int]:
        """Sorted list of registered node ids."""
        return sorted(self._nodes)

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, message: Any) -> float:
        """Send ``message`` from ``src`` to ``dst``.

        Returns the simulated delivery time.  Raises ``KeyError`` if the
        destination is not registered.
        """
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        self.stats.record(src, message)
        delay = self.latency.latency(src, dst)
        delivery = self.sim.now + delay
        # FIFO per directed link: never deliver before a previously sent
        # message on the same link.
        key = (src, dst)
        prev = self._last_delivery.get(key, -1.0)
        if delivery < prev:
            delivery = prev
        self._last_delivery[key] = delivery
        self.sim.schedule_at(delivery, self._deliver, src, dst, message)
        return delivery

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        node = self._nodes.get(dst)
        if node is None:  # pragma: no cover - defensive
            return
        node.deliver(src, message)
