"""FIFO message-passing network, reliable by default.

Implements the communication model assumed in Section 3.1 of the paper:

* reliable links — no loss, no duplication;
* FIFO links — messages between a given ordered pair of nodes are
  delivered in the order they were sent, even if the latency model is
  jittered (delivery times are clamped to be non-decreasing per link);
* complete communication graph — any node can message any other node.

Reliability is a default, not an axiom: an optional fault layer
(:mod:`repro.sim.faults`, thawed from the declarative specs in
:mod:`repro.sim.faultspec`) is consulted at send time (crashed sender,
Bernoulli link loss) and at delivery time (partition window, crashed
receiver); dropped messages never reach node delivery and are accounted
separately in :class:`MessageStats`.  With no fault layer (``faults=None``)
the hot path is exactly the reliable one.

The network also keeps per-message-type counters so experiments can report
message complexity alongside the paper's two primary metrics.

``send`` is the hottest call site of every distributed run, so the
implementation is **bound once at construction** instead of branching per
message: ``Network.__init__`` inspects the latency model and fault layer
and installs the cheapest applicable send variant as the instance
attribute ``send``.

* ``faults is None`` and constant latency (the paper's default
  configuration): no fault branch, no per-link FIFO clamp (a constant
  latency can never reorder a link — see
  :attr:`~repro.sim.latency.LatencyModel.fifo_safe`), latency hoisted to
  two floats, message accounting folded into one flat counter update,
  and the delivery callback resolved *per (destination, message class)*
  once — subsequent sends schedule the handler directly, skipping both
  the ``_deliver`` frame and per-message handler lookup.
* ``faults is None`` with a FIFO-safe but non-constant latency model
  (e.g. hierarchical): same, minus the latency hoist.
* anything else: the fully general path (fault hooks + FIFO clamp).

All variants produce bit-identical simulations; the differential tests
in ``tests/sim/test_network.py`` pin the equivalence.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import FaultModel
    from repro.sim.node import Node

#: Compact ``Network._last_delivery`` once it holds this many links.
_LAST_DELIVERY_COMPACT_THRESHOLD = 4096


class MessageStats:
    """Aggregate message accounting for one simulation run.

    ``total`` counts every send attempt; ``dropped`` counts the subset
    lost to injected faults (so ``dropped <= total`` and
    ``total - dropped`` messages were actually delivered).

    Sent-message counters are kept *flat* — one dict keyed by
    ``(message class, sender)`` updated with a single store per send —
    and merged into the classic ``total`` / ``by_type`` / ``by_sender``
    views lazily, so the hot send path never pays for three separate
    counter updates per message.
    """

    __slots__ = ("_sent", "dropped", "dropped_by_type")

    def __init__(self) -> None:
        # (message class, src) -> sent count; the single hot-path counter.
        self._sent: Dict[Tuple[type, int], int] = {}
        self.dropped: int = 0
        self.dropped_by_type: Dict[str, int] = defaultdict(int)

    def record(self, src: int, message: Any) -> None:
        """Record one sent message."""
        key = (message.__class__, src)
        sent = self._sent
        sent[key] = sent.get(key, 0) + 1

    def record_dropped(self, src: int, message: Any) -> None:
        """Record one message lost to an injected fault (already counted sent)."""
        self.dropped += 1
        self.dropped_by_type[message.__class__.__name__] += 1

    # ------------------------------------------------------------------ #
    # merged views (cold path: reports, assertions, snapshots)
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        """Number of send attempts recorded so far."""
        return sum(self._sent.values())

    @property
    def by_type(self) -> Dict[str, int]:
        """Sent counts per message class name (merged on demand)."""
        merged: Dict[str, int] = defaultdict(int)
        for (cls, _src), count in self._sent.items():
            merged[cls.__name__] += count
        return merged

    @property
    def by_sender(self) -> Dict[int, int]:
        """Sent counts per sender id (merged on demand)."""
        merged: Dict[int, int] = defaultdict(int)
        for (_cls, src), count in self._sent.items():
            merged[src] += count
        return merged

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the per-type counters."""
        return dict(self.by_type)

    def dropped_snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the per-type dropped counters."""
        return dict(self.dropped_by_type)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageStats):
            return NotImplemented
        return (
            self.total == other.total
            and self.dropped == other.dropped
            and dict(self.by_type) == dict(other.by_type)
            and dict(self.by_sender) == dict(other.by_sender)
            and dict(self.dropped_by_type) == dict(other.dropped_by_type)
        )

    def __hash__(self) -> int:
        """Value hash consistent with ``__eq__``.

        The counters are mutable, so the hash changes as messages are
        recorded: hash a stats object only once its run has finished (do
        not mutate it while it serves as a dict key / set member).
        """
        return hash(
            (
                self.total,
                self.dropped,
                frozenset(self.by_type.items()),
                frozenset(self.by_sender.items()),
                frozenset(self.dropped_by_type.items()),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageStats(total={self.total}, dropped={self.dropped}, "
            f"by_type={dict(self.by_type)!r})"
        )


class Network:
    """Message router between registered :class:`~repro.sim.node.Node` objects.

    Parameters
    ----------
    sim:
        Simulation engine used to schedule deliveries.
    latency:
        Latency model; defaults to the paper's constant ``gamma = 0.6``.
    faults:
        Optional live :class:`~repro.sim.faults.FaultModel` (thawed from a
        :class:`~repro.sim.faultspec.FaultSpec`); ``None`` (default) keeps
        the reliable Section 3.1 links.

    Notes
    -----
    ``send`` is an *instance attribute* bound in ``__init__`` to the
    cheapest variant the configuration allows (see the module docstring).
    Swap :attr:`faults` only by constructing a new network — the variants
    are selected once, deliberately, to keep the reliable path free of
    per-send configuration branches.
    """

    __slots__ = (
        "sim",
        "latency",
        "stats",
        "faults",
        "send",
        "_nodes",
        "_node_ids",
        "_sent",
        "_delivery_cache",
        "_gamma",
        "_local",
        "_last_delivery",
        "_compact_at",
        "_quiet_until",
    )

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        faults: Optional["FaultModel"] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.faults = faults
        self.stats = MessageStats()
        self._nodes: Dict[int, "Node"] = {}
        # Sorted-ids cache for the node_ids property (None = stale).
        self._node_ids: Optional[Tuple[int, ...]] = None
        # The stats object's flat sent-counter, aliased so the hot send
        # variants do one inline dict update instead of a method call.
        self._sent = self.stats._sent
        # (dst, message class) -> delivery callable, resolved once.
        self._delivery_cache: Dict[Tuple[int, type], Callable[[int, Any], None]] = {}
        # Last scheduled delivery time per directed link, used to enforce
        # per-link FIFO even under jittered latencies.
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        # Size at which the clamp table is next compacted; doubled past
        # the live-entry count after each sweep (hysteresis) so a table
        # of still-future deliveries cannot trigger a rebuild per send.
        self._compact_at = _LAST_DELIVERY_COMPACT_THRESHOLD
        # Hoisted constant latencies (only read by the constant fast path).
        self._gamma = 0.0
        self._local = 0.0
        # Before this instant the fault layer cannot drop anything, so
        # the armed send variants skip both hooks (and the _deliver
        # trampoline) for messages living entirely inside the quiet era.
        self._quiet_until = faults.quiet_until() if faults is not None else 0.0
        # Bind the cheapest applicable send variant once.
        if faults is None and type(self.latency) is ConstantLatency:
            self._gamma = self.latency.gamma
            self._local = self.latency.local
            self.send = self._send_constant
        elif faults is None and self.latency.fifo_safe:
            self.send = self._send_reliable
        elif self.latency.fifo_safe:
            if type(self.latency) is ConstantLatency:
                self._gamma = self.latency.gamma
                self._local = self.latency.local
                self.send = self._send_armed_constant
            else:
                self.send = self._send_armed
        else:
            self.send = self._send_general

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, node: "Node") -> None:
        """Attach a node to the network; its id must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node
        self._node_ids = None

    def node(self, node_id: int) -> "Node":
        """Return the node registered under ``node_id``."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[int]:
        """Sorted list of registered node ids (cached between registrations)."""
        ids = self._node_ids
        if ids is None:
            ids = self._node_ids = tuple(sorted(self._nodes))
        return list(ids)

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def _resolve_delivery(self, dst: int, cls: type) -> Callable[[int, Any], None]:
        """Resolve (and cache) the delivery callable for ``(dst, cls)``.

        For nodes using the stock :meth:`~repro.sim.node.Node.deliver`,
        this is the bound ``on_<ClassName>`` handler itself, so the fast
        send variants schedule the handler directly and the dispatch
        ``getattr`` happens once per (destination, class) instead of once
        per message.  Nodes that override ``deliver`` keep their override
        in the loop.  Raises ``KeyError`` for an unknown destination.
        """
        node = self._nodes.get(dst)
        if node is None:
            raise KeyError(f"unknown destination node {dst}")
        from repro.sim.node import Node as _Node

        if type(node).deliver is _Node.deliver:
            try:
                target = node._resolve_handler(cls)
            except NotImplementedError:
                # No handler: keep the error surfacing at *delivery* time
                # (matching the general path), not at send time.
                target = node.deliver
        else:
            target = node.deliver
        self._delivery_cache[(dst, cls)] = target
        return target

    def _send_constant(self, src: int, dst: int, message: Any) -> float:
        """Reliable constant-latency send: the paper's default, branch-free.

        No fault hooks (``faults is None``), no FIFO clamp (constant
        latency is FIFO-safe), latency read from two hoisted floats, one
        flat stats update, delivery posted straight to the resolved
        handler through the engine's no-handle path.
        """
        cls = message.__class__
        key = (cls, src)
        sent = self._sent
        sent[key] = sent.get(key, 0) + 1
        target = self._delivery_cache.get((dst, cls))
        if target is None:
            target = self._resolve_delivery(dst, cls)
        sim = self.sim
        delivery = sim.now + (self._gamma if src != dst else self._local)
        sim.post_at(delivery, target, src, message)
        return delivery

    def _send_reliable(self, src: int, dst: int, message: Any) -> float:
        """Reliable send under any FIFO-safe latency model (no clamp)."""
        cls = message.__class__
        key = (cls, src)
        sent = self._sent
        sent[key] = sent.get(key, 0) + 1
        target = self._delivery_cache.get((dst, cls))
        if target is None:
            target = self._resolve_delivery(dst, cls)
        sim = self.sim
        delivery = sim.now + self.latency.latency(src, dst)
        sim.post_at(delivery, target, src, message)
        return delivery

    def _send_armed(self, src: int, dst: int, message: Any) -> float:
        """Fault-hooked send under a FIFO-safe latency model (no clamp).

        Crash scenarios almost always run on constant (or hierarchical)
        latencies, so the fault layer is consulted on every message —
        that is the contract being paid for — but the per-link FIFO
        clamp, dead weight under a FIFO-safe model, is elided exactly as
        on the reliable path.
        """
        cls = message.__class__
        key = (cls, src)
        sent = self._sent
        sent[key] = sent.get(key, 0) + 1
        sim = self.sim
        delivery = sim.now + self.latency.latency(src, dst)
        if delivery < self._quiet_until:
            # Send and delivery both precede any possible fault activity:
            # the hooks are contractually False, take the reliable path.
            target = self._delivery_cache.get((dst, cls))
            if target is None:
                target = self._resolve_delivery(dst, cls)
            sim.post_at(delivery, target, src, message)
            return delivery
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        if self.faults.drop_on_send(sim.now, src, dst, message):
            # Lost before entering the link: never scheduled.
            self.stats.record_dropped(src, message)
            return delivery
        sim.post_at(delivery, self._deliver, src, dst, message)
        return delivery

    def _send_armed_constant(self, src: int, dst: int, message: Any) -> float:
        """:meth:`_send_armed` with the latency hoisted to two floats."""
        cls = message.__class__
        key = (cls, src)
        sent = self._sent
        sent[key] = sent.get(key, 0) + 1
        sim = self.sim
        now = sim.now
        delivery = now + (self._gamma if src != dst else self._local)
        if delivery < self._quiet_until:
            # Quiet era (see _send_armed): identical to _send_constant.
            target = self._delivery_cache.get((dst, cls))
            if target is None:
                target = self._resolve_delivery(dst, cls)
            sim.post_at(delivery, target, src, message)
            return delivery
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        if self.faults.drop_on_send(now, src, dst, message):
            # Lost before entering the link: never scheduled.
            self.stats.record_dropped(src, message)
            return delivery
        sim.post_at(delivery, self._deliver, src, dst, message)
        return delivery

    def _send_general(self, src: int, dst: int, message: Any) -> float:
        """Fully general send: fault hooks plus the per-link FIFO clamp."""
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        self.stats.record(src, message)
        delay = self.latency.latency(src, dst)
        delivery = self.sim.now + delay
        faults = self.faults
        if faults is not None and faults.drop_on_send(self.sim.now, src, dst, message):
            # Lost before entering the link (crashed sender, Bernoulli
            # loss): never scheduled, and the FIFO clamp is untouched —
            # a dropped message cannot delay later ones.
            self.stats.record_dropped(src, message)
            return delivery
        # FIFO per directed link: never deliver before a previously sent
        # message on the same link.
        key = (src, dst)
        last = self._last_delivery
        prev = last.get(key, -1.0)
        if delivery < prev:
            delivery = prev
        last[key] = delivery
        if len(last) >= self._compact_at:
            self._compact_last_delivery()
        self.sim.post_at(delivery, self._deliver, src, dst, message)
        return delivery

    def _compact_last_delivery(self) -> None:
        """Drop FIFO-clamp entries whose delivery is already in the past.

        A clamp entry only matters while a later message on the same link
        could still be scheduled *before* it; once ``delivery <= now`` any
        new message is scheduled at ``now + latency >= delivery`` anyway
        (latencies are non-negative), so past entries can never clamp
        again and would otherwise accumulate for the whole run.
        """
        now = self.sim.now
        self._last_delivery = {
            key: delivery for key, delivery in self._last_delivery.items() if delivery > now
        }
        self._compact_at = max(
            _LAST_DELIVERY_COMPACT_THRESHOLD, 2 * len(self._last_delivery)
        )

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        faults = self.faults
        if faults is not None and faults.drop_on_delivery(self.sim.now, src, dst, message):
            # Lost in flight (partition window, crashed receiver): the
            # message dies here instead of reaching node delivery.
            self.stats.record_dropped(src, message)
            return
        cls = message.__class__
        target = self._delivery_cache.get((dst, cls))
        if target is None:
            try:
                target = self._resolve_delivery(dst, cls)
            except KeyError:  # pragma: no cover - defensive
                return
        target(src, message)
