"""FIFO message-passing network, reliable by default.

Implements the communication model assumed in Section 3.1 of the paper:

* reliable links — no loss, no duplication;
* FIFO links — messages between a given ordered pair of nodes are
  delivered in the order they were sent, even if the latency model is
  jittered (delivery times are clamped to be non-decreasing per link);
* complete communication graph — any node can message any other node.

Reliability is a default, not an axiom: an optional fault layer
(:mod:`repro.sim.faults`, thawed from the declarative specs in
:mod:`repro.sim.faultspec`) is consulted at send time (crashed sender,
Bernoulli link loss) and at delivery time (partition window, crashed
receiver); dropped messages never reach node delivery and are accounted
separately in :class:`MessageStats`.  With no fault layer (``faults=None``)
the hot path is exactly the reliable one.

The network also keeps per-message-type counters so experiments can report
message complexity alongside the paper's two primary metrics.

``send`` is the hottest call site of every distributed run, so it avoids
per-message allocations: deliveries are scheduled through the engine's
no-handle fast path, message-type names are cached per class, and the
per-link FIFO clamp table is compacted opportunistically so long runs do
not accumulate stale links.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import FaultModel
    from repro.sim.node import Node

#: Compact ``Network._last_delivery`` once it holds this many links.
_LAST_DELIVERY_COMPACT_THRESHOLD = 4096


class MessageStats:
    """Aggregate message accounting for one simulation run.

    ``total`` counts every send attempt; ``dropped`` counts the subset
    lost to injected faults (so ``dropped <= total`` and
    ``total - dropped`` messages were actually delivered).
    """

    __slots__ = ("total", "by_type", "by_sender", "dropped", "dropped_by_type", "_type_names")

    def __init__(self) -> None:
        self.total: int = 0
        self.by_type: Dict[str, int] = defaultdict(int)
        self.by_sender: Dict[int, int] = defaultdict(int)
        self.dropped: int = 0
        self.dropped_by_type: Dict[str, int] = defaultdict(int)
        # Cache of message class -> __name__ so the hot path does one
        # dict lookup instead of two attribute loads per message.
        self._type_names: Dict[type, str] = {}

    def _type_name(self, message: Any) -> str:
        cls = message.__class__
        name = self._type_names.get(cls)
        if name is None:
            name = self._type_names[cls] = cls.__name__
        return name

    def record(self, src: int, message: Any) -> None:
        """Record one sent message."""
        self.total += 1
        self.by_type[self._type_name(message)] += 1
        self.by_sender[src] += 1

    def record_dropped(self, src: int, message: Any) -> None:
        """Record one message lost to an injected fault (already counted sent)."""
        self.dropped += 1
        self.dropped_by_type[self._type_name(message)] += 1

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the per-type counters."""
        return dict(self.by_type)

    def dropped_snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the per-type dropped counters."""
        return dict(self.dropped_by_type)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MessageStats):
            return NotImplemented
        return (
            self.total == other.total
            and self.dropped == other.dropped
            and dict(self.by_type) == dict(other.by_type)
            and dict(self.by_sender) == dict(other.by_sender)
            and dict(self.dropped_by_type) == dict(other.dropped_by_type)
        )

    def __hash__(self) -> int:
        """Value hash consistent with ``__eq__``.

        The counters are mutable, so the hash changes as messages are
        recorded: hash a stats object only once its run has finished (do
        not mutate it while it serves as a dict key / set member).
        """
        return hash(
            (
                self.total,
                self.dropped,
                frozenset(self.by_type.items()),
                frozenset(self.by_sender.items()),
                frozenset(self.dropped_by_type.items()),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageStats(total={self.total}, dropped={self.dropped}, "
            f"by_type={dict(self.by_type)!r})"
        )


class Network:
    """Message router between registered :class:`~repro.sim.node.Node` objects.

    Parameters
    ----------
    sim:
        Simulation engine used to schedule deliveries.
    latency:
        Latency model; defaults to the paper's constant ``gamma = 0.6``.
    faults:
        Optional live :class:`~repro.sim.faults.FaultModel` (thawed from a
        :class:`~repro.sim.faultspec.FaultSpec`); ``None`` (default) keeps
        the reliable Section 3.1 links.
    """

    __slots__ = ("sim", "latency", "stats", "faults", "_nodes", "_last_delivery", "_compact_at")

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        faults: Optional["FaultModel"] = None,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.faults = faults
        self.stats = MessageStats()
        self._nodes: Dict[int, "Node"] = {}
        # Last scheduled delivery time per directed link, used to enforce
        # per-link FIFO even under jittered latencies.
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        # Size at which the clamp table is next compacted; doubled past
        # the live-entry count after each sweep (hysteresis) so a table
        # of still-future deliveries cannot trigger a rebuild per send.
        self._compact_at = _LAST_DELIVERY_COMPACT_THRESHOLD

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, node: "Node") -> None:
        """Attach a node to the network; its id must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> "Node":
        """Return the node registered under ``node_id``."""
        return self._nodes[node_id]

    @property
    def node_ids(self) -> list[int]:
        """Sorted list of registered node ids."""
        return sorted(self._nodes)

    # ------------------------------------------------------------------ #
    # message passing
    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, message: Any) -> float:
        """Send ``message`` from ``src`` to ``dst``.

        Returns the simulated delivery time.  Raises ``KeyError`` if the
        destination is not registered.
        """
        if dst not in self._nodes:
            raise KeyError(f"unknown destination node {dst}")
        self.stats.record(src, message)
        delay = self.latency.latency(src, dst)
        delivery = self.sim.now + delay
        faults = self.faults
        if faults is not None and faults.drop_on_send(self.sim.now, src, dst, message):
            # Lost before entering the link (crashed sender, Bernoulli
            # loss): never scheduled, and the FIFO clamp is untouched —
            # a dropped message cannot delay later ones.
            self.stats.record_dropped(src, message)
            return delivery
        # FIFO per directed link: never deliver before a previously sent
        # message on the same link.
        key = (src, dst)
        last = self._last_delivery
        prev = last.get(key, -1.0)
        if delivery < prev:
            delivery = prev
        last[key] = delivery
        if len(last) >= self._compact_at:
            self._compact_last_delivery()
        self.sim.post_at(delivery, self._deliver, src, dst, message)
        return delivery

    def _compact_last_delivery(self) -> None:
        """Drop FIFO-clamp entries whose delivery is already in the past.

        A clamp entry only matters while a later message on the same link
        could still be scheduled *before* it; once ``delivery <= now`` any
        new message is scheduled at ``now + latency >= delivery`` anyway
        (latencies are non-negative), so past entries can never clamp
        again and would otherwise accumulate for the whole run.
        """
        now = self.sim.now
        self._last_delivery = {
            key: delivery for key, delivery in self._last_delivery.items() if delivery > now
        }
        self._compact_at = max(
            _LAST_DELIVERY_COMPACT_THRESHOLD, 2 * len(self._last_delivery)
        )

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        faults = self.faults
        if faults is not None and faults.drop_on_delivery(self.sim.now, src, dst, message):
            # Lost in flight (partition window, crashed receiver): the
            # message dies here instead of reaching node delivery.
            self.stats.record_dropped(src, message)
            return
        node = self._nodes.get(dst)
        if node is None:  # pragma: no cover - defensive
            return
        node.deliver(src, message)
