"""Execution tracing.

Algorithms and the workload driver can emit structured trace events
(state transitions, token movements, CS entry/exit).  The recorder is used
by the Gantt-diagram rendering (:mod:`repro.metrics.gantt`) that reproduces
the content of Figures 1 and 4 of the paper, and by debugging tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """A single trace record.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred.
    node:
        Node id the event refers to (``-1`` for global events).
    kind:
        Short machine-readable event kind (e.g. ``"cs_enter"``).
    details:
        Free-form payload (kept small; copied defensively on record).
    """

    time: float
    node: int
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only store of :class:`TraceEvent` records.

    Recording can be disabled (the default for large sweeps) in which case
    :meth:`record` is a no-op, keeping the hot path cheap.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: List[TraceEvent] = []

    def record(self, time: float, node: int, kind: str, **details: Any) -> None:
        """Append one event if recording is enabled."""
        if not self.enabled:
            return
        self._events.append(TraceEvent(time=time, node=node, kind=kind, details=dict(details)))

    def events(self, kind: Optional[str] = None, node: Optional[int] = None) -> List[TraceEvent]:
        """Return recorded events, optionally filtered by kind and/or node."""
        out = self._events
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if node is not None:
            out = [e for e in out if e.node == node]
        return list(out)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
