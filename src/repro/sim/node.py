"""Base class for simulated processes (nodes).

The paper's model has one process per node; the two words are used
interchangeably (Section 3.1).  A :class:`Node` owns a reference to the
simulator and the network, can send messages, set timers, and dispatches
incoming messages to ``on_<MessageClassName>`` handler methods.

Nodes are also the unit of *failure*: when a scenario's fault spec
declares node outages (:meth:`repro.sim.faults.FaultModel.crash_windows`),
the :class:`~repro.sim.lifecycle.NodeLifecycle` layer delivers
:meth:`Node.on_crash` at the start of each window and
:meth:`Node.on_recover` at its end.  The base implementations only flip
the :attr:`crashed` flag; protocol subclasses override them to suspend
and restore their local timers (e.g. the resend safety net of
:class:`repro.core.node.CoreAllocatorNode`) so a dead node does not keep
computing while its network is cut.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.network import Network


class Node:
    """A simulated process attached to a network.

    Subclasses implement message handlers named ``on_<ClassName>`` where
    ``<ClassName>`` is the class name of the message object, e.g. a
    ``ReqCnt`` message is handled by ``on_ReqCnt(self, src, msg)``.  A
    subclass may instead override :meth:`deliver` entirely.
    """

    def __init__(self, sim: Simulator, network: Network, node_id: int) -> None:
        self.sim = sim
        self.network = network
        self.node_id = int(node_id)
        self._crashed = False
        # message class -> bound on_<ClassName> handler, so dispatch pays
        # one dict hit per message instead of an f-string + getattr.
        self._handler_cache: dict = {}
        network.register(self)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def crashed(self) -> bool:
        """Whether the node is currently down (inside a crash window)."""
        return self._crashed

    def on_crash(self, time: float) -> None:
        """Lifecycle callback: the node halts at simulated ``time``.

        Delivered by :class:`~repro.sim.lifecycle.NodeLifecycle` at the
        start of a crash window.  Subclasses override this to cancel
        their local timers (and must call ``super().on_crash(time)``);
        the network side of the crash (no sends, no deliveries) is
        enforced independently by the fault layer.
        """
        self._crashed = True

    def on_recover(self, time: float) -> None:
        """Lifecycle callback: the node reboots at simulated ``time``.

        Delivered at the end of a finite crash window.  Subclasses
        override this to discard volatile protocol state and re-arm
        timers (and must call ``super().on_recover(time)``).
        """
        self._crashed = False

    # ------------------------------------------------------------------ #
    # communication helpers
    # ------------------------------------------------------------------ #
    def send(self, dst: int, message: Any) -> None:
        """Send a message to node ``dst`` over the network."""
        self.network.send(self.node_id, dst, message)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule a local callback ``delay`` time units from now."""
        return self.sim.schedule(delay, callback, *args)

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    def _resolve_handler(self, cls: type) -> Callable[[int, Any], None]:
        """Resolve (and cache) the bound handler for a message class.

        Raises ``NotImplementedError`` when no handler exists, which makes
        protocol wiring errors fail loudly instead of silently dropping
        messages.  Also used by the network's fast send variants to skip
        per-message dispatch entirely.
        """
        handler: Optional[Callable[[int, Any], None]] = getattr(
            self, f"on_{cls.__name__}", None
        )
        if handler is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no handler for message {cls.__name__!r}"
            )
        self._handler_cache[cls] = handler
        return handler

    def deliver(self, src: int, message: Any) -> None:
        """Dispatch an incoming message to ``on_<ClassName>``."""
        cls = message.__class__
        handler = self._handler_cache.get(cls)
        if handler is None:
            handler = self._resolve_handler(cls)
        handler(src, message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} id={self.node_id}>"
