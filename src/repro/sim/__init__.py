"""Discrete-event simulation substrate.

The paper evaluated its algorithms on a 32-node cluster over OpenMPI; this
package provides the equivalent substrate as a deterministic discrete-event
simulator: a simulated clock with an event heap (:mod:`repro.sim.engine`),
a FIFO message-passing network — reliable by default — with pluggable
latency models (:mod:`repro.sim.network`, :mod:`repro.sim.latency`) and
declarative fault injection (:mod:`repro.sim.faultspec`,
:mod:`repro.sim.faults`) with node crash/recovery lifecycle delivery
(:mod:`repro.sim.lifecycle`) and declarative crash detection
(:mod:`repro.sim.detectorspec`), a node/process abstraction with message
dispatch, timers and lifecycle hooks (:mod:`repro.sim.node`),
deterministic random-number streams (:mod:`repro.sim.rng`) and execution
tracing (:mod:`repro.sim.trace`).

All algorithm implementations in :mod:`repro.core`, :mod:`repro.mutex` and
:mod:`repro.baselines` are written against this substrate only, mirroring
the system model of Section 3.1 of the paper (reliable FIFO links, complete
communication graph, one process per node, no shared memory).
"""

from repro.sim.detectorspec import (
    CrashDetector,
    DetectorSpec,
    HeartbeatDetector,
    NoDetector,
)
from repro.sim.engine import Event, Simulator
from repro.sim.faults import (
    BernoulliLossModel,
    CompositeFaultModel,
    FaultModel,
    LinkPartitionModel,
    NodeCrashModel,
)
from repro.sim.faultspec import (
    BernoulliLoss,
    CompositeFaults,
    FaultSpec,
    LinkPartition,
    NoFaults,
    NodeCrash,
)
from repro.sim.latency import (
    ConstantLatency,
    HierarchicalLatency,
    LatencyModel,
    UniformJitterLatency,
)
from repro.sim.latencyspec import (
    ConstantLatencySpec,
    HierarchicalLatencySpec,
    LatencySpec,
    UniformJitterLatencySpec,
)
from repro.sim.lifecycle import NodeLifecycle
from repro.sim.network import MessageStats, Network
from repro.sim.node import Node
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "FaultModel",
    "BernoulliLossModel",
    "LinkPartitionModel",
    "NodeCrashModel",
    "CompositeFaultModel",
    "FaultSpec",
    "NoFaults",
    "BernoulliLoss",
    "LinkPartition",
    "NodeCrash",
    "CompositeFaults",
    "CrashDetector",
    "DetectorSpec",
    "NoDetector",
    "HeartbeatDetector",
    "NodeLifecycle",
    "LatencyModel",
    "ConstantLatency",
    "UniformJitterLatency",
    "HierarchicalLatency",
    "LatencySpec",
    "ConstantLatencySpec",
    "UniformJitterLatencySpec",
    "HierarchicalLatencySpec",
    "Network",
    "MessageStats",
    "Node",
    "RandomStreams",
    "TraceEvent",
    "TraceRecorder",
]
