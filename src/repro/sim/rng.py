"""Deterministic random-number streams.

Experiments must be reproducible run-to-run; a single shared RNG would make
the workload of node 3 depend on how many random draws node 2 happened to
make.  :class:`RandomStreams` therefore derives one independent
:class:`random.Random` per named stream from a master seed, so changing one
component's consumption pattern never perturbs another's.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of named, independently seeded random streams.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("workload", 0)
    >>> b = streams.stream("workload", 1)
    >>> a is streams.stream("workload", 0)
    True
    >>> a is b
    False
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    @staticmethod
    def _derive(master_seed: int, key: str) -> int:
        digest = hashlib.sha256(f"{master_seed}/{key}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str, index: int | None = None) -> random.Random:
        """Return (creating if needed) the stream identified by ``name``/``index``."""
        key = name if index is None else f"{name}#{index}"
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(self._derive(self.master_seed, key))
            self._streams[key] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` with an independent master seed."""
        return RandomStreams(self._derive(self.master_seed, f"spawn/{name}"))
