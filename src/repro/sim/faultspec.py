"""Declarative fault-injection specifications.

Section 3.1 of the paper assumes reliable FIFO links; that assumption is
now a *default*, not a hard-coded property of the substrate.  Each spec
below is a frozen, picklable, content-hashable description of a fault
process — the exact counterpart of :mod:`repro.sim.latencyspec` for
failures — that thaws into a live :class:`~repro.sim.faults.FaultModel`
via :meth:`FaultSpec.build` inside whatever process runs the experiment.
That is what lets fault sweeps ride :mod:`repro.parallel` with
``workers=N`` bit-identical to ``workers=1`` and be memoised by
:meth:`~repro.experiments.scenario.Scenario.key`.

``build`` returns ``None`` when the spec injects nothing (``NoFaults``,
``BernoulliLoss(p=0)``, an empty composite): the network then keeps its
zero-overhead reliable path and the runner keeps the drain-the-queue
termination rule, so a ``faults=None`` / ``faults=NoFaults()`` scenario is
bit-identical to the pre-fault-subsystem behaviour.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.sim.faults import (
    BernoulliLossModel,
    CompositeFaultModel,
    FaultModel,
    LinkPartitionModel,
    NodeCrashModel,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.params import WorkloadParams

__all__ = [
    "FaultSpec",
    "NoFaults",
    "BernoulliLoss",
    "LinkPartition",
    "NodeCrash",
    "CompositeFaults",
]


class FaultSpec(ABC):
    """Frozen description of a fault process, thawed per-run."""

    @abstractmethod
    def build(self, params: "WorkloadParams") -> Optional[FaultModel]:
        """Instantiate the live fault model for ``params``.

        Returns ``None`` when the spec injects no faults at all, keeping
        the network on its reliable fast path.
        """

    def normalized(self, params: "WorkloadParams") -> "FaultSpec":
        """Canonical spec for the run this spec produces under ``params``.

        Specs producing the same run must normalise to the same value, so
        they share one :meth:`~repro.experiments.scenario.Scenario.key`
        (and one cache entry): anything that builds no model collapses to
        :class:`NoFaults`, and composites unwrap to their effective
        children.  Also the fail-fast point for specs whose :meth:`build`
        rejects the workload (e.g. a crash naming a node outside it).
        """
        return self if self.build(params) is not None else NoFaults()

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return repr(self)


@dataclass(frozen=True)
class NoFaults(FaultSpec):
    """Reliable links — the paper's Section 3.1 communication model.

    This is what ``Scenario.faults=None`` normalises to, so the explicit
    and the implicit form share one cache key.
    """

    def build(self, params: "WorkloadParams") -> None:
        """Build nothing: the network keeps its reliable fast path."""
        return None

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return "no faults"


@dataclass(frozen=True)
class BernoulliLoss(FaultSpec):
    """Independent message loss with probability ``p``.

    The thawed model draws from a dedicated :class:`random.Random` seeded
    with ``seed``, so equal specs observe identical drop sequences in any
    process.  ``p=0`` builds no model at all (reliable fast path).

    ``kinds`` optionally restricts the loss to messages whose *class name*
    is listed (normalised to a sorted tuple for stable hashing); ``None``
    puts every message at risk.  Naming only an algorithm's control-plane
    messages (e.g. ``("RequestEnvelope", "CounterEnvelope")`` for the core
    algorithm, ``("NTRequest",)`` for Naimi–Tréhel-based baselines) models
    lossy request datagrams over reliable token transfer — the regime the
    resend safety net of Section 4.2.1 is built for.

    .. warning:: kinds are matched by name against whatever the algorithm
       actually sends and cannot be validated up front (message classes
       are per-algorithm implementation detail): a misspelt or
       wrong-algorithm name drops nothing.  When a run under a
       kinds-filtered loss matters, sanity-check that its
       ``messages_dropped`` is plausible.
    """

    p: float
    seed: int = 0
    kinds: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"loss probability must lie in [0, 1], got {self.p!r}")
        if self.kinds is not None:
            object.__setattr__(self, "kinds", tuple(sorted(set(self.kinds))))
            if not self.kinds:
                raise ValueError("kinds must name at least one message type (or be None)")

    def build(self, params: "WorkloadParams") -> Optional[BernoulliLossModel]:
        """Thaw into a live loss model (``None`` when ``p == 0``).

        The model's RNG is seeded from ``seed`` alone, so equal specs
        observe identical drop sequences in any process.
        """
        if self.p <= 0.0:
            return None
        return BernoulliLossModel(p=self.p, seed=self.seed, kinds=self.kinds)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        if self.kinds is not None:
            return f"loss(p={self.p:g}, kinds={list(self.kinds)})"
        return f"loss(p={self.p:g})"


@dataclass(frozen=True)
class LinkPartition(FaultSpec):
    """Bidirectional partition of node ``pairs`` during ``[start, end)``.

    ``pairs`` is normalised (each pair sorted, pairs sorted overall) so
    ``LinkPartition(pairs=((1, 0),))`` and ``LinkPartition(pairs=((0, 1),))``
    hash to the same scenario key.  ``end=None`` means "never heals".
    A message is dropped when its *delivery* falls inside the window.
    """

    pairs: Tuple[Tuple[int, int], ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        normalised = []
        for pair in self.pairs:
            a, b = pair
            if a == b:
                raise ValueError(f"partition pair must name two distinct nodes, got {pair!r}")
            normalised.append((min(a, b), max(a, b)))
        object.__setattr__(self, "pairs", tuple(sorted(set(normalised))))
        if not self.pairs:
            raise ValueError("partition needs at least one node pair")
        if self.end is not None and self.end <= self.start:
            raise ValueError(f"end ({self.end!r}) must be after start ({self.start!r})")

    def build(self, params: "WorkloadParams") -> LinkPartitionModel:
        """Thaw into a live partition model, validating node ids.

        Raises ``ValueError`` when a pair names a node outside
        ``params.num_processes`` — a typo'd id would otherwise partition
        nothing and silently report the protocol as fault-tolerant.
        """
        # Node ids are only checkable against a concrete workload: a typo'd
        # id would otherwise partition nothing and silently report the
        # protocol as fault-tolerant.
        for pair in self.pairs:
            for node in pair:
                if not 0 <= node < params.num_processes:
                    raise ValueError(
                        f"partition names node {node}, but the workload has "
                        f"processes 0..{params.num_processes - 1}"
                    )
        end = self.end if self.end is not None else math.inf
        return LinkPartitionModel(pairs=self.pairs, start=self.start, end=end)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        end = f"{self.end:g}" if self.end is not None else "inf"
        return f"partition({list(self.pairs)}, [{self.start:g}, {end}))"


@dataclass(frozen=True)
class NodeCrash(FaultSpec):
    """Fail-silent crash of ``node`` during ``[at, recover_at)``.

    ``recover_at=None`` means the node never comes back; times are
    simulated milliseconds.  While down the node neither sends nor
    receives (fault layer), and its *local* computation halts too: the
    outage window is delivered as ``on_crash``/``on_recover`` lifecycle
    events (:mod:`repro.sim.lifecycle`) that suspend and restore the
    node's timers — resend safety nets, think-time clients.  A crash
    mid-critical-section aborts that request (resources freed at the
    crash instant, request counted as incomplete).  Durable protocol
    state (tokens) survives a reboot; pair the crash with a
    ``Scenario.detector`` (:mod:`repro.sim.detectorspec`) to recover
    tokens that die with a node for good.
    """

    node: int
    at: float
    recover_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"node must be a valid site id, got {self.node!r}")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError(
                f"recover_at ({self.recover_at!r}) must be after at ({self.at!r})"
            )

    def build(self, params: "WorkloadParams") -> NodeCrashModel:
        """Thaw into a live crash model, validating the node id.

        The model both drops the node's traffic and declares the outage
        window (``crash_windows``), which the runner turns into
        ``on_crash``/``on_recover`` lifecycle events.  Times are
        simulated milliseconds, like every time in this library.
        """
        # Same rationale as LinkPartition.build: crashing a node that is
        # not in the workload would inject nothing, and the ablation would
        # silently report survival of a crash that never happened.
        if not 0 <= self.node < params.num_processes:
            raise ValueError(
                f"crash names node {self.node}, but the workload has "
                f"processes 0..{params.num_processes - 1}"
            )
        recover_at = self.recover_at if self.recover_at is not None else math.inf
        return NodeCrashModel(node=self.node, at=self.at, recover_at=recover_at)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        recover = f"{self.recover_at:g}" if self.recover_at is not None else "inf"
        return f"crash(node={self.node}, [{self.at:g}, {recover}))"


@dataclass(frozen=True)
class CompositeFaults(FaultSpec):
    """Union of several fault specs: a message is dropped if *any* drops it.

    Children that build to ``None`` are elided; a composite of nothing
    effective builds to ``None`` itself (reliable fast path), and one of
    exactly one effective child builds that child's model directly.
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"CompositeFaults takes FaultSpec children, got {spec!r}")

    def build(self, params: "WorkloadParams") -> Optional[FaultModel]:
        """Thaw every effective child and combine them.

        ``None`` children are elided; no effective child means ``None``
        (reliable fast path) and exactly one builds that child's model
        directly instead of a single-entry composite.
        """
        models = [m for m in (spec.build(params) for spec in self.specs) if m is not None]
        if not models:
            return None
        if len(models) == 1:
            return models[0]
        return CompositeFaultModel(models)

    def normalized(self, params: "WorkloadParams") -> FaultSpec:
        """Flatten nested composites and drop ineffective children.

        A composite of one effective child *is* that child's run, and a
        composite of none is the reliable run — both must key accordingly.
        """
        effective = []
        for spec in self.specs:
            child = spec.normalized(params)
            if isinstance(child, NoFaults):
                continue
            if isinstance(child, CompositeFaults):
                effective.extend(child.specs)
            else:
                effective.append(child)
        if not effective:
            return NoFaults()
        if len(effective) == 1:
            return effective[0]
        return CompositeFaults(tuple(effective))

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        if not self.specs:
            return "no faults"
        return " + ".join(spec.describe() for spec in self.specs)
