"""Network latency models.

The paper reports ``gamma ~= 0.6 ms`` for its 10 Gb/s Ethernet cluster and
suggests (Section 6) evaluating the algorithm on hierarchical topologies
such as clouds.  Three models are provided:

* :class:`ConstantLatency` — every message takes exactly ``gamma``.
* :class:`UniformJitterLatency` — latency drawn uniformly from
  ``[gamma*(1-jitter), gamma*(1+jitter)]``; FIFO order per link is still
  enforced by :class:`repro.sim.network.Network`.
* :class:`HierarchicalLatency` — cluster-aware latency (intra-cluster
  ``gamma_local``, inter-cluster ``gamma_remote``), used by the topology
  ablation (A3 in DESIGN.md).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional, Sequence


class LatencyModel(ABC):
    """Strategy object mapping a (source, destination) pair to a delay."""

    #: Whether the model can never reorder a directed link: the delay for
    #: a given ``(src, dst)`` pair is constant over time, so successive
    #: sends on one link get non-decreasing delivery times by construction
    #: and :class:`repro.sim.network.Network` may skip its per-link FIFO
    #: clamp entirely.  Jittered models must leave this ``False``.
    fifo_safe = False

    @abstractmethod
    def latency(self, src: int, dst: int) -> float:
        """Return the one-way delay (simulated time units) for a message."""

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Constant one-way latency for every pair of distinct nodes.

    Parameters
    ----------
    gamma:
        One-way delay.  The paper's testbed corresponds to ``0.6`` (ms).
    local:
        Delay for a message a node sends to itself (defaults to 0, such
        messages are rare and only used by baselines for uniformity).
    """

    fifo_safe = True

    def __init__(self, gamma: float = 0.6, local: float = 0.0) -> None:
        if gamma < 0 or local < 0:
            raise ValueError("latencies must be non-negative")
        self.gamma = float(gamma)
        self.local = float(local)

    def latency(self, src: int, dst: int) -> float:
        return self.local if src == dst else self.gamma

    def describe(self) -> str:
        return f"ConstantLatency(gamma={self.gamma})"


class UniformJitterLatency(LatencyModel):
    """Latency with multiplicative uniform jitter around ``gamma``.

    The jitter models queueing variability on the switch.  A dedicated
    :class:`random.Random` instance keeps the model deterministic for a
    given seed and independent from workload randomness.
    """

    def __init__(self, gamma: float = 0.6, jitter: float = 0.2, seed: int = 0) -> None:
        if not 0 <= jitter < 1:
            raise ValueError("jitter must lie in [0, 1)")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        lo = self.gamma * (1.0 - self.jitter)
        hi = self.gamma * (1.0 + self.jitter)
        return self._rng.uniform(lo, hi)

    def describe(self) -> str:
        return f"UniformJitterLatency(gamma={self.gamma}, jitter={self.jitter})"


class HierarchicalLatency(LatencyModel):
    """Two-level (cluster / inter-cluster) latency model.

    Nodes are partitioned into clusters; messages within a cluster cost
    ``gamma_local`` and messages between clusters cost ``gamma_remote``.
    This models the "hierarchical physical topology such as Clouds"
    scenario from the paper's conclusion.

    Parameters
    ----------
    cluster_of:
        Sequence mapping node id -> cluster id.  If omitted,
        ``num_clusters`` must be given and nodes are assigned round-robin.
    """

    fifo_safe = True

    def __init__(
        self,
        gamma_local: float = 0.6,
        gamma_remote: float = 20.0,
        cluster_of: Optional[Sequence[int]] = None,
        num_nodes: Optional[int] = None,
        num_clusters: Optional[int] = None,
    ) -> None:
        if gamma_local < 0 or gamma_remote < 0:
            raise ValueError("latencies must be non-negative")
        if cluster_of is None:
            if num_nodes is None or num_clusters is None or num_clusters <= 0:
                raise ValueError(
                    "either cluster_of or (num_nodes, num_clusters) must be provided"
                )
            cluster_of = [i % num_clusters for i in range(num_nodes)]
        self.gamma_local = float(gamma_local)
        self.gamma_remote = float(gamma_remote)
        self.cluster_of = list(cluster_of)

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        try:
            same = self.cluster_of[src] == self.cluster_of[dst]
        except IndexError as exc:  # pragma: no cover - defensive
            raise ValueError(f"node id out of range for cluster map: {src}, {dst}") from exc
        return self.gamma_local if same else self.gamma_remote

    def describe(self) -> str:
        return (
            f"HierarchicalLatency(local={self.gamma_local}, remote={self.gamma_remote}, "
            f"clusters={len(set(self.cluster_of))})"
        )
