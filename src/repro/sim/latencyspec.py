"""Declarative latency specifications.

The models in :mod:`repro.sim.latency` are live strategy objects — a
:class:`~repro.sim.latency.UniformJitterLatency` carries a
:class:`random.Random`, a :class:`~repro.sim.latency.HierarchicalLatency`
a cluster map — so they cannot serve as content-hashable experiment
parameters or cross worker-process boundaries deterministically.  Each
spec below is the frozen, picklable counterpart of one model: a pure
value that *thaws* into the equivalent model via :meth:`LatencySpec.build`
inside whatever process actually runs the experiment.

Fields defaulting to ``None`` (``gamma``, ``gamma_local``) resolve to the
``gamma`` carried by the :class:`~repro.workload.params.WorkloadParams` at
build time, so one spec composes with any workload parameterisation —
exactly like the implicit ``ConstantLatency(params.gamma)`` default of the
pre-Scenario API.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.sim.latency import (
    ConstantLatency,
    HierarchicalLatency,
    LatencyModel,
    UniformJitterLatency,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.params import WorkloadParams

__all__ = [
    "LatencySpec",
    "ConstantLatencySpec",
    "UniformJitterLatencySpec",
    "HierarchicalLatencySpec",
]


class LatencySpec(ABC):
    """Frozen description of a latency model, thawed per-run."""

    @abstractmethod
    def build(self, params: "WorkloadParams") -> LatencyModel:
        """Instantiate the equivalent :class:`LatencyModel` for ``params``."""

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return repr(self)


@dataclass(frozen=True)
class ConstantLatencySpec(LatencySpec):
    """Every message takes exactly ``gamma`` (``None`` = ``params.gamma``)."""

    gamma: Optional[float] = None
    local: float = 0.0

    def build(self, params: "WorkloadParams") -> ConstantLatency:
        gamma = self.gamma if self.gamma is not None else params.gamma
        return ConstantLatency(gamma=gamma, local=self.local)


@dataclass(frozen=True)
class UniformJitterLatencySpec(LatencySpec):
    """Uniform multiplicative jitter around ``gamma``.

    The thawed model draws from a dedicated :class:`random.Random` seeded
    with ``seed``, so two runs built from equal specs observe identical
    per-message latencies regardless of which process builds them.
    """

    gamma: Optional[float] = None
    jitter: float = 0.2
    seed: int = 0

    def build(self, params: "WorkloadParams") -> UniformJitterLatency:
        gamma = self.gamma if self.gamma is not None else params.gamma
        return UniformJitterLatency(gamma=gamma, jitter=self.jitter, seed=self.seed)


@dataclass(frozen=True)
class HierarchicalLatencySpec(LatencySpec):
    """Two-level per-link latency: cheap intra-cluster, expensive inter-cluster.

    Either give an explicit ``cluster_of`` map (tuple of cluster ids, one
    per node) or a ``num_clusters`` count, in which case the
    ``params.num_processes`` nodes are assigned round-robin — matching
    :class:`~repro.sim.latency.HierarchicalLatency`'s own convention.
    """

    gamma_local: Optional[float] = None
    gamma_remote: float = 20.0
    num_clusters: Optional[int] = 2
    cluster_of: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.cluster_of is not None and not isinstance(self.cluster_of, tuple):
            object.__setattr__(self, "cluster_of", tuple(self.cluster_of))
        if self.cluster_of is None and (self.num_clusters is None or self.num_clusters <= 0):
            raise ValueError("either cluster_of or a positive num_clusters must be given")

    def build(self, params: "WorkloadParams") -> HierarchicalLatency:
        gamma_local = self.gamma_local if self.gamma_local is not None else params.gamma
        if self.cluster_of is not None:
            return HierarchicalLatency(
                gamma_local=gamma_local,
                gamma_remote=self.gamma_remote,
                cluster_of=list(self.cluster_of),
            )
        return HierarchicalLatency(
            gamma_local=gamma_local,
            gamma_remote=self.gamma_remote,
            num_nodes=params.num_processes,
            num_clusters=self.num_clusters,
        )
