"""Declarative crash-detector specifications.

Token regeneration needs *failure detection*: survivors must learn that a
node is down before they can adjudicate which tokens died with it.  Each
spec below is a frozen, picklable, content-hashable description of a
detection process — the exact counterpart of :mod:`repro.sim.faultspec`
for detection — carried on :attr:`repro.experiments.scenario.Scenario.detector`
and thawed into a live :class:`CrashDetector` via :meth:`DetectorSpec.build`
inside whatever process runs the experiment.

The built detector is an *abstract heartbeat scheme*: instead of flooding
the message plane with ``N x (N-1)`` periodic heartbeats (which would
perturb the paper's message-complexity metrics for every faulty run), it
rides the fault layer's deterministic outage windows and delivers one
crash *detection* event per outage, ``interval + timeout`` after the
crash instant — exactly when a peer's heartbeat timeout would have fired
in the worst case (a heartbeat sent just before the crash, plus the full
timeout).  A node that recovers before its detection fires is never
reported (its heartbeats resumed in time), which is what makes the
"recover before detection" scenario regeneration-free.

``build`` returns ``None`` when the spec detects nothing (``NoDetector``),
and :meth:`repro.experiments.scenario.Scenario.normalized` drops any
detector whose fault spec produces no crash windows — there is nothing to
detect, so the scenario must share its key with the detector-less run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

__all__ = ["CrashDetector", "DetectorSpec", "NoDetector", "HeartbeatDetector"]


class CrashDetector:
    """Live crash detector thawed from a :class:`DetectorSpec`.

    ``detection_delay`` is the worst-case time between a node halting and
    every survivor having detected it; the recovery coordinator schedules
    one detection event per outage at ``crash time + detection_delay``.
    """

    __slots__ = ("detection_delay",)

    def __init__(self, detection_delay: float) -> None:
        if detection_delay < 0:
            raise ValueError(f"detection delay must be >= 0, got {detection_delay!r}")
        self.detection_delay = float(detection_delay)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return f"detector(delay={self.detection_delay:g}ms)"


class DetectorSpec(ABC):
    """Frozen description of a crash-detection process, thawed per-run."""

    @abstractmethod
    def build(self) -> Optional[CrashDetector]:
        """Instantiate the live detector.

        Returns ``None`` when the spec performs no detection at all
        (``NoDetector``), in which case crashes are never announced and
        lost tokens are never regenerated.
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return repr(self)


@dataclass(frozen=True)
class NoDetector(DetectorSpec):
    """No failure detection — crashes go unnoticed, lost tokens stay lost.

    This is what ``Scenario.detector=None`` means; the explicit form
    normalises to ``None`` so both share one cache key.
    """

    def build(self) -> None:
        """Build nothing: detection is disabled."""
        return None

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return "no detector"


@dataclass(frozen=True)
class HeartbeatDetector(DetectorSpec):
    """Timeout-based heartbeat detection.

    Attributes
    ----------
    interval:
        Heartbeat period in simulated milliseconds (every node pings its
        peers this often).  Must be positive.
    timeout:
        Silence (in ms) after the last expected heartbeat before a peer
        is declared dead.  Must be non-negative.

    The worst-case detection latency — a heartbeat sent immediately
    before the crash, plus a full timeout on the next one — is
    ``interval + timeout``; the built :class:`CrashDetector` uses exactly
    that as its deterministic ``detection_delay`` (see the module
    docstring for why the heartbeats themselves are not simulated as
    messages).
    """

    interval: float = 25.0
    timeout: float = 75.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {self.interval!r}")
        if self.timeout < 0:
            raise ValueError(f"heartbeat timeout must be >= 0, got {self.timeout!r}")

    @property
    def detection_delay(self) -> float:
        """Worst-case crash-to-detection latency (``interval + timeout``)."""
        return self.interval + self.timeout

    def build(self) -> CrashDetector:
        """Thaw into the live :class:`CrashDetector`."""
        return CrashDetector(detection_delay=self.detection_delay)

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return f"heartbeat(interval={self.interval:g}ms, timeout={self.timeout:g}ms)"
