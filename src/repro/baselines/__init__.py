"""Baseline algorithms the paper compares against (Section 5).

* :mod:`repro.baselines.incremental` — the *incremental* algorithm: one
  Naimi–Tréhel instance per resource, resources locked one by one in the
  global total order of resource identifiers.
* :mod:`repro.baselines.bouabdallah_laforest` — the Bouabdallah–Laforest
  token algorithm: a global control token (circulated with Naimi–Tréhel)
  serialises request registration; per-resource tokens then travel directly
  between successive users through INQUIRE chains.
* :mod:`repro.baselines.central_scheduler` — the "in shared memory"
  reference: a centralised scheduler with a global waiting queue and no
  communication cost, giving the synchronisation-free upper envelope shown
  as the fifth curve of Figure 5.
"""

from repro.baselines.bouabdallah_laforest import BLAllocatorNode
from repro.baselines.central_scheduler import CentralScheduler, CentralSchedulerClientAllocator
from repro.baselines.incremental import IncrementalAllocatorNode

__all__ = [
    "IncrementalAllocatorNode",
    "BLAllocatorNode",
    "CentralScheduler",
    "CentralSchedulerClientAllocator",
]
