"""Shared-memory reference scheduler ("in shared memory" curve of Figure 5).

The paper includes a fifth curve in Figure 5: "a distributed scheduling
algorithm executed on a single shared-memory machine with a global waiting
queue and no network communication", whose purpose is to expose the pure
scheduling behaviour with zero synchronisation cost.  This module provides
that reference: a single :class:`CentralScheduler` object holds a global
waiting queue; requests are granted as soon as their resources are free,
scanning the queue in arrival order (first-fit), without exchanging any
message.

Two queue disciplines are available:

* ``first_fit`` (default) — scan the queue in arrival order and grant every
  request whose resources are currently all free; this is the maximal-
  concurrency discipline matching the intent of the paper's curve;
* ``fifo`` — strict head-of-line blocking, useful as an ablation to show
  how much concurrency the skip-ahead provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.allocator import AllocatorError, MultiResourceAllocator, validate_resources
from repro.sim.engine import Simulator


@dataclass
class _PendingRequest:
    """Internal queue entry of the central scheduler."""

    process: int
    resources: FrozenSet[int]
    on_granted: Callable[[], None]
    arrival: float
    seq: int = field(default=0)


class CentralScheduler:
    """Global, zero-cost scheduler with one waiting queue.

    Parameters
    ----------
    sim:
        Simulation engine (used only for timestamps and zero-delay grant
        callbacks — there is no network).
    num_resources:
        Number of resources ``M``.
    discipline:
        ``"first_fit"`` or ``"fifo"`` (see module docstring).
    """

    def __init__(self, sim: Simulator, num_resources: int, discipline: str = "first_fit") -> None:
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        if discipline not in ("first_fit", "fifo"):
            raise ValueError("discipline must be 'first_fit' or 'fifo'")
        self.sim = sim
        self.num_resources = num_resources
        self.discipline = discipline
        self._free: set[int] = set(range(num_resources))
        self._queue: List[_PendingRequest] = []
        self._holding: Dict[int, FrozenSet[int]] = {}
        self._seq = 0

    # ------------------------------------------------------------------ #
    # public API (used by the per-process client allocators)
    # ------------------------------------------------------------------ #
    def submit(self, process: int, resources: FrozenSet[int], on_granted: Callable[[], None]) -> None:
        """Register a new request and try to schedule immediately."""
        if process in self._holding:
            raise AllocatorError(f"process {process} already holds resources")
        if any(r.process == process for r in self._queue):
            raise AllocatorError(f"process {process} already has a queued request")
        self._seq += 1
        self._queue.append(
            _PendingRequest(
                process=process,
                resources=resources,
                on_granted=on_granted,
                arrival=self.sim.now,
                seq=self._seq,
            )
        )
        self._schedule()

    def release(self, process: int) -> None:
        """Free the resources held by ``process`` and reschedule."""
        held = self._holding.pop(process, None)
        if held is None:
            raise AllocatorError(f"process {process} released without holding resources")
        self._free |= held
        self._schedule()

    def holding(self, process: int) -> FrozenSet[int]:
        """Resources currently granted to ``process`` (empty set if none)."""
        return self._holding.get(process, frozenset())

    @property
    def queue_length(self) -> int:
        """Number of requests currently waiting."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # scheduling core
    # ------------------------------------------------------------------ #
    def _schedule(self) -> None:
        granted: List[_PendingRequest] = []
        if self.discipline == "fifo":
            # Strict head-of-line blocking: only the head may be granted.
            while self._queue and self._queue[0].resources <= self._free:
                entry = self._queue.pop(0)
                self._free -= entry.resources
                self._holding[entry.process] = entry.resources
                granted.append(entry)
        else:
            remaining: List[_PendingRequest] = []
            for entry in self._queue:
                if entry.resources <= self._free:
                    self._free -= entry.resources
                    self._holding[entry.process] = entry.resources
                    granted.append(entry)
                else:
                    remaining.append(entry)
            self._queue = remaining
        for entry in granted:
            # Grants are delivered asynchronously (zero delay) to keep the
            # callback discipline identical to the distributed algorithms.
            self.sim.schedule(0.0, entry.on_granted)


class CentralSchedulerClientAllocator(MultiResourceAllocator):
    """Per-process facade over the shared :class:`CentralScheduler`.

    Presents the same :class:`~repro.allocator.MultiResourceAllocator`
    interface as the distributed algorithms so the experiment driver can
    replay identical workloads against it.
    """

    def __init__(self, scheduler: CentralScheduler, process: int) -> None:
        self.scheduler = scheduler
        self.process = process
        self._in_cs = False
        self._waiting = False

    @property
    def in_critical_section(self) -> bool:
        return self._in_cs

    @property
    def is_idle(self) -> bool:
        return not self._in_cs and not self._waiting

    def acquire(self, resources: Iterable[int], on_granted: Callable[[], None]) -> None:
        if not self.is_idle:
            raise AllocatorError(
                f"process {self.process}: acquire() while a request is outstanding"
            )
        rset = validate_resources(resources, self.scheduler.num_resources)
        self._waiting = True

        def _granted() -> None:
            self._waiting = False
            self._in_cs = True
            on_granted()

        self.scheduler.submit(self.process, rset, _granted)

    def release(self) -> None:
        if not self._in_cs:
            raise AllocatorError(f"process {self.process}: release() outside critical section")
        self._in_cs = False
        self.scheduler.release(self.process)
