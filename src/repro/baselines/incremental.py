"""Incremental multi-resource allocation baseline.

Described in Section 5 of the paper: "an algorithm, which we have denoted
*incremental algorithm*, which uses M instances of the Naimi-Tréhel
algorithm", one per resource.  A process locks its required resources one
at a time, in increasing resource-id order (the classic total-order
discipline of the incremental family, Section 2.1), which prevents
deadlocks but exposes the *domino effect*: a process may hold a low-id
resource idle for a long time while waiting for a higher-id one, dragging
the resource-use rate down as request sizes grow — exactly the flat curve
of Figure 5.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.allocator import AllocatorError, MultiResourceAllocator, validate_resources
from repro.mutex.naimi_trehel import NaimiTrehelInstance, NTRequest, NTToken
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder


class IncrementalAllocatorNode(Node, MultiResourceAllocator):
    """One process of the incremental baseline.

    Parameters
    ----------
    sim, network, node_id:
        Simulation plumbing.
    num_resources:
        Number of resources ``M`` (one Naimi–Tréhel instance each).
    initial_holder:
        Node holding every token at time zero.  Spreading the initial
        holders (``initial_holder=None``) assigns token ``r`` to node
        ``r mod N``, which matches a warmed-up system better and is the
        default used by the experiment harness.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        num_resources: int,
        num_processes: int,
        initial_holder: Optional[int] = 0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        Node.__init__(self, sim, network, node_id)
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        self.num_resources = num_resources
        self.num_processes = num_processes
        self.trace = trace
        self._initial_holder = initial_holder
        self._instances: Dict[int, NaimiTrehelInstance] = {}
        for r in range(num_resources):
            holder = initial_holder if initial_holder is not None else r % num_processes
            self._instances[r] = NaimiTrehelInstance(
                instance_id=r,
                node_id=node_id,
                send_fn=self.send,
                initial_holder=holder,
            )
        self._pending: List[int] = []
        self._acquired: List[int] = []
        self._required: FrozenSet[int] = frozenset()
        self._on_granted: Optional[Callable[[], None]] = None
        self._in_cs = False

    # ------------------------------------------------------------------ #
    # MultiResourceAllocator interface
    # ------------------------------------------------------------------ #
    @property
    def in_critical_section(self) -> bool:
        return self._in_cs

    @property
    def is_idle(self) -> bool:
        return not self._in_cs and self._on_granted is None and not self._pending

    @property
    def acquired_resources(self) -> FrozenSet[int]:
        """Resources already locked for the outstanding request."""
        return frozenset(self._acquired)

    def acquire(self, resources: Iterable[int], on_granted: Callable[[], None]) -> None:
        if not self.is_idle:
            raise AllocatorError(
                f"node {self.node_id}: acquire() while a request is outstanding"
            )
        rset = validate_resources(resources, self.num_resources)
        self._required = rset
        # Lock in increasing resource-id order: the global total order that
        # makes the incremental approach deadlock-free.
        self._pending = sorted(rset)
        self._acquired = []
        self._on_granted = on_granted
        self._lock_next()

    def release(self) -> None:
        if not self._in_cs:
            raise AllocatorError(f"node {self.node_id}: release() outside critical section")
        self._in_cs = False
        for r in self._acquired:
            self._instances[r].release()
        self._acquired = []
        self._required = frozenset()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _lock_next(self) -> None:
        if not self._pending:
            self._enter_cs()
            return
        resource = self._pending[0]
        self._instances[resource].request(lambda r=resource: self._on_locked(r))

    def _on_locked(self, resource: int) -> None:
        if not self._pending or self._pending[0] != resource:  # pragma: no cover - defensive
            raise AllocatorError(
                f"node {self.node_id}: unexpected lock grant for resource {resource}"
            )
        self._pending.pop(0)
        self._acquired.append(resource)
        if self.trace is not None:
            self.trace.record(self.sim.now, self.node_id, "lock_acquired", resource=resource)
        self._lock_next()

    def _enter_cs(self) -> None:
        self._in_cs = True
        callback = self._on_granted
        self._on_granted = None
        if self.trace is not None:
            self.trace.record(
                self.sim.now, self.node_id, "cs_enter", resources=sorted(self._required)
            )
        if callback is not None:
            callback()

    # ------------------------------------------------------------------ #
    # crash / recovery lifecycle
    # ------------------------------------------------------------------ #
    def on_crash(self, time: float) -> None:
        """The process halts (no local timers to suspend in this baseline)."""
        Node.on_crash(self, time)
        if self.trace is not None:
            self.trace.record(time, self.node_id, "crash")

    def on_recover(self, time: float) -> None:
        """Reboot: abandon the in-progress request, keep durable tokens.

        Each per-resource Naimi–Tréhel instance resets its volatile
        request state and hands a held token to its queued successor
        (fenced instances were already cleared by the coordinator).  The
        interrupted multi-resource acquisition is abandoned — its locked
        instances release — and the closed-loop client issues a fresh
        request afterwards.
        """
        Node.on_recover(self, time)
        self._pending = []
        self._acquired = []
        self._required = frozenset()
        self._on_granted = None
        self._in_cs = False
        for r in sorted(self._instances):
            inst = self._instances[r]
            inst.reset_after_crash()
            if not inst.has_token and inst.owner is None:
                # The abandoned request left the instance a root-in-waiting
                # with no token coming: restore a valid probable-owner
                # pointer (any live node's pointer chain leads to the
                # current root; the recovery coordinator repoints it more
                # precisely when a detection fires).
                owner = self._initial_holder if self._initial_holder is not None else r % self.num_processes
                if owner == self.node_id:
                    owner = (self.node_id + 1) % self.num_processes
                inst.owner = owner
        if self.trace is not None:
            self.trace.record(time, self.node_id, "recover")

    # -- crash-recovery interface (RecoveryCoordinator) ----------------- #
    def recovery_token_keys(self) -> range:
        """Universe of token keys (one Naimi–Tréhel instance per resource)."""
        return range(self.num_resources)

    def recovery_held_tokens(self) -> FrozenSet[int]:
        """Resources whose Naimi–Tréhel token sits on this node."""
        return frozenset(r for r, inst in self._instances.items() if inst.has_token)

    def recovery_requires(self) -> FrozenSet[int]:
        """Resources this node is currently queued for.

        The incremental discipline locks one resource at a time, so this
        is at most a singleton — the head of the pending list.
        """
        return frozenset(r for r, inst in self._instances.items() if inst.requesting)

    def recovery_purge(self, crashed: int) -> None:
        """Forget the dead node's queue entries (no tokens into the void)."""
        for inst in self._instances.values():
            inst.purge_requester(crashed)

    def recovery_regenerate(
        self,
        resource: int,
        crashed: Optional[int],
        counter_slack: int,
        epoch: int,
        requesters: Tuple[int, ...] = (),
    ) -> None:
        """Rebuild the lost token of ``resource`` at this node.

        ``requesters`` is the coordinator's sorted list of surviving
        requesters; this node is its head and the next id (if any) is its
        successor in the rebuilt waiting chain.  ``counter_slack`` is
        part of the shared interface but meaningless here — Naimi–Tréhel
        tokens carry no counter.
        """
        successors = [p for p in requesters if p != self.node_id]
        self._instances[resource].regenerate_token(
            next_requester=successors[0] if successors else None,
            epoch=epoch,
            probable_owner=requesters[-1] if requesters else None,
        )
        if self.trace is not None:
            self.trace.record(
                self.sim.now, self.node_id, "token_regenerated", resource=resource
            )

    def recovery_repoint(
        self,
        resource: int,
        owner: int,
        crashed: Optional[int],
        epoch: int,
        regenerated: bool,
        requesters: Tuple[int, ...] = (),
    ) -> None:
        """Re-enter the rebuilt waiting chain / repoint at the live holder.

        The coordinator rebuilds the waiting chain of every affected
        token — regenerated or alive-but-crossed-by-the-crash — from the
        sorted surviving requesters, because Naimi–Tréhel's distributed
        ``next`` chain cannot be patched by re-sending requests
        (duplicates scramble the probable-owner pointers).  A surviving
        requester takes the slot after its own id in ``requesters``; the
        live *holder* of an alive token adopts the chain head as its
        successor (handing the token over immediately when idle);
        everyone else points their probable owner at the chain's last
        requester (or the holder/regenerator when the chain is empty).
        """
        inst = self._instances[resource]
        inst.note_epoch(epoch)
        tail = requesters[-1] if requesters else owner
        if inst.has_token:
            if not regenerated and requesters:
                successors = [p for p in requesters if p != self.node_id]
                inst.rebuild_as_holder(
                    successor=successors[0] if successors else None,
                    probable_owner=tail,
                )
            return
        if inst.requesting and self.node_id in requesters:
            pos = requesters.index(self.node_id)
            successor = requesters[pos + 1] if pos + 1 < len(requesters) else None
            inst.repoint_after_loss(
                owner=tail if successor is not None else None, next_requester=successor
            )
        elif regenerated or inst.owner == crashed:
            inst.repoint_after_loss(owner=tail, next_requester=None)

    def recovery_fence(self, resource: int, owner: int, epoch: int) -> None:
        """A token held at crash time was regenerated elsewhere: discard it."""
        self._instances[resource].fence_token(owner, epoch=epoch)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, self.node_id, "token_fenced", resource=resource, owner=owner
            )

    # ------------------------------------------------------------------ #
    # message routing
    # ------------------------------------------------------------------ #
    def on_NTRequest(self, src: int, msg: NTRequest) -> None:
        """Route a Naimi–Tréhel request to the matching per-resource instance."""
        self._instances[msg.instance].handle(src, msg)

    def on_NTToken(self, src: int, msg: NTToken) -> None:
        """Route a Naimi–Tréhel token to the matching per-resource instance."""
        self._instances[msg.instance].handle(src, msg)
