"""Incremental multi-resource allocation baseline.

Described in Section 5 of the paper: "an algorithm, which we have denoted
*incremental algorithm*, which uses M instances of the Naimi-Tréhel
algorithm", one per resource.  A process locks its required resources one
at a time, in increasing resource-id order (the classic total-order
discipline of the incremental family, Section 2.1), which prevents
deadlocks but exposes the *domino effect*: a process may hold a low-id
resource idle for a long time while waiting for a higher-id one, dragging
the resource-use rate down as request sizes grow — exactly the flat curve
of Figure 5.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.allocator import AllocatorError, MultiResourceAllocator, validate_resources
from repro.mutex.naimi_trehel import NaimiTrehelInstance, NTRequest, NTToken
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder


class IncrementalAllocatorNode(Node, MultiResourceAllocator):
    """One process of the incremental baseline.

    Parameters
    ----------
    sim, network, node_id:
        Simulation plumbing.
    num_resources:
        Number of resources ``M`` (one Naimi–Tréhel instance each).
    initial_holder:
        Node holding every token at time zero.  Spreading the initial
        holders (``initial_holder=None``) assigns token ``r`` to node
        ``r mod N``, which matches a warmed-up system better and is the
        default used by the experiment harness.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        num_resources: int,
        num_processes: int,
        initial_holder: Optional[int] = 0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        Node.__init__(self, sim, network, node_id)
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        self.num_resources = num_resources
        self.num_processes = num_processes
        self.trace = trace
        self._instances: Dict[int, NaimiTrehelInstance] = {}
        for r in range(num_resources):
            holder = initial_holder if initial_holder is not None else r % num_processes
            self._instances[r] = NaimiTrehelInstance(
                instance_id=r,
                node_id=node_id,
                send_fn=self.send,
                initial_holder=holder,
            )
        self._pending: List[int] = []
        self._acquired: List[int] = []
        self._required: FrozenSet[int] = frozenset()
        self._on_granted: Optional[Callable[[], None]] = None
        self._in_cs = False

    # ------------------------------------------------------------------ #
    # MultiResourceAllocator interface
    # ------------------------------------------------------------------ #
    @property
    def in_critical_section(self) -> bool:
        return self._in_cs

    @property
    def is_idle(self) -> bool:
        return not self._in_cs and self._on_granted is None and not self._pending

    @property
    def acquired_resources(self) -> FrozenSet[int]:
        """Resources already locked for the outstanding request."""
        return frozenset(self._acquired)

    def acquire(self, resources: Iterable[int], on_granted: Callable[[], None]) -> None:
        if not self.is_idle:
            raise AllocatorError(
                f"node {self.node_id}: acquire() while a request is outstanding"
            )
        rset = validate_resources(resources, self.num_resources)
        self._required = rset
        # Lock in increasing resource-id order: the global total order that
        # makes the incremental approach deadlock-free.
        self._pending = sorted(rset)
        self._acquired = []
        self._on_granted = on_granted
        self._lock_next()

    def release(self) -> None:
        if not self._in_cs:
            raise AllocatorError(f"node {self.node_id}: release() outside critical section")
        self._in_cs = False
        for r in self._acquired:
            self._instances[r].release()
        self._acquired = []
        self._required = frozenset()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _lock_next(self) -> None:
        if not self._pending:
            self._enter_cs()
            return
        resource = self._pending[0]
        self._instances[resource].request(lambda r=resource: self._on_locked(r))

    def _on_locked(self, resource: int) -> None:
        if not self._pending or self._pending[0] != resource:  # pragma: no cover - defensive
            raise AllocatorError(
                f"node {self.node_id}: unexpected lock grant for resource {resource}"
            )
        self._pending.pop(0)
        self._acquired.append(resource)
        if self.trace is not None:
            self.trace.record(self.sim.now, self.node_id, "lock_acquired", resource=resource)
        self._lock_next()

    def _enter_cs(self) -> None:
        self._in_cs = True
        callback = self._on_granted
        self._on_granted = None
        if self.trace is not None:
            self.trace.record(
                self.sim.now, self.node_id, "cs_enter", resources=sorted(self._required)
            )
        if callback is not None:
            callback()

    # ------------------------------------------------------------------ #
    # message routing
    # ------------------------------------------------------------------ #
    def on_NTRequest(self, src: int, msg: NTRequest) -> None:
        """Route a Naimi–Tréhel request to the matching per-resource instance."""
        self._instances[msg.instance].handle(src, msg)

    def on_NTToken(self, src: int, msg: NTToken) -> None:
        """Route a Naimi–Tréhel token to the matching per-resource instance."""
        self._instances[msg.instance].handle(src, msg)
