"""Bouabdallah–Laforest token-based multi-resource allocation.

Reference [5] of the paper: A. Bouabdallah and C. Laforest, "A distributed
token-based algorithm for the dynamic resource allocation problem"
(Operating Systems Review, 2000).  This is the closest related algorithm
and the main comparison point of the evaluation.

Principle (Section 2.2 of the paper):

* a unique **control token** circulates among requesters, managed by a
  Naimi–Tréhel mutual-exclusion instance.  It carries a vector with one
  entry per resource containing either the resource token itself or the
  identity of the *latest requester* of that resource;
* before asking for any resource a process must first acquire the control
  token, register itself as latest requester of every resource it wants,
  grab the resource tokens still stored inside the control token and send
  an ``INQUIRE`` message to the previous latest requester of each of the
  others;
* a process receiving an ``INQUIRE`` hands the resource token over as soon
  as it no longer needs it (immediately if it is not using it, otherwise at
  the end of its critical section).

The control token serialises registrations, so the per-resource waiting
chains are globally consistent and deadlock-free — but every requester must
wait for the control token even when its resources conflict with nobody,
which is exactly the synchronisation cost the paper attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Union

from repro.allocator import AllocatorError, MultiResourceAllocator, validate_resources
from repro.mutex.naimi_trehel import NaimiTrehelInstance, NTRequest, NTToken
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder


class _TokenHere:
    """Sentinel marking that a resource token is stored in the control token."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TOKEN>"


#: Singleton sentinel used inside the control vector.
TOKEN_HERE = _TokenHere()

#: A control-vector entry: the resource token itself or the latest requester id.
ControlEntry = Union[_TokenHere, int]

#: Identifier of the control-token mutex instance.
CONTROL_INSTANCE = "BL-control"


@dataclass(frozen=True)
class BLResourceToken:
    """The unique token granting access to ``resource``."""

    resource: int


@dataclass(frozen=True)
class BLInquire:
    """Ask the previous latest requester to forward ``resource``'s token to
    ``requester`` once it is done with it."""

    resource: int
    requester: int


class BLAllocatorNode(Node, MultiResourceAllocator):
    """One process of the Bouabdallah–Laforest algorithm."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        num_resources: int,
        control_holder: int = 0,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        Node.__init__(self, sim, network, node_id)
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        self.num_resources = num_resources
        self.trace = trace
        self._control = NaimiTrehelInstance(
            instance_id=CONTROL_INSTANCE,
            node_id=node_id,
            send_fn=self.send,
            initial_holder=control_holder,
        )
        if node_id == control_holder:
            # Initially every resource token is stored inside the control token.
            self._control.token_payload = [TOKEN_HERE] * num_resources
        self._owned: set[int] = set()
        self._needed: FrozenSet[int] = frozenset()
        self._waiting = False
        self._registered = False
        self._in_cs = False
        self._next_holder: Dict[int, int] = {}
        self._on_granted: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    # MultiResourceAllocator interface
    # ------------------------------------------------------------------ #
    @property
    def in_critical_section(self) -> bool:
        return self._in_cs

    @property
    def is_idle(self) -> bool:
        return not self._in_cs and not self._waiting

    @property
    def owned_tokens(self) -> FrozenSet[int]:
        """Resource tokens currently held by this process."""
        return frozenset(self._owned)

    def acquire(self, resources: Iterable[int], on_granted: Callable[[], None]) -> None:
        if not self.is_idle:
            raise AllocatorError(
                f"node {self.node_id}: acquire() while a request is outstanding"
            )
        rset = validate_resources(resources, self.num_resources)
        self._needed = rset
        self._on_granted = on_granted
        self._waiting = True
        self._registered = False
        # Phase 1: acquire the global control token.
        self._control.request(self._on_control_acquired)

    def release(self) -> None:
        if not self._in_cs:
            raise AllocatorError(f"node {self.node_id}: release() outside critical section")
        self._in_cs = False
        finished = self._needed
        self._needed = frozenset()
        if self.trace is not None:
            self.trace.record(self.sim.now, self.node_id, "cs_exit", resources=sorted(finished))
        for r in sorted(finished):
            nxt = self._next_holder.pop(r, None)
            if nxt is not None:
                self._owned.discard(r)
                self.send(nxt, BLResourceToken(resource=r))

    # ------------------------------------------------------------------ #
    # control-token phase
    # ------------------------------------------------------------------ #
    def _on_control_acquired(self) -> None:
        vector: List[ControlEntry] = self._control.token_payload
        if vector is None:  # pragma: no cover - defensive
            raise AllocatorError("control token arrived without its vector")
        for r in sorted(self._needed):
            entry = vector[r]
            if isinstance(entry, _TokenHere):
                # The resource token is free, stored in the control token.
                self._owned.add(r)
            elif entry == self.node_id:
                # We were already the latest requester: we still hold the
                # token from our previous critical section.
                if r not in self._owned:  # pragma: no cover - defensive
                    raise AllocatorError(
                        f"node {self.node_id}: registered as latest requester of {r} "
                        "but does not hold its token"
                    )
            else:
                self.send(entry, BLInquire(resource=r, requester=self.node_id))
            vector[r] = self.node_id
        self._registered = True
        self._control.token_payload = vector
        # Phase 1 done: pass the control token on and wait for the tokens.
        self._control.release()
        self._check_enter()

    # ------------------------------------------------------------------ #
    # resource-token handling
    # ------------------------------------------------------------------ #
    def on_BLResourceToken(self, src: int, msg: BLResourceToken) -> None:
        """A resource token arrived (following an INQUIRE chain)."""
        self._owned.add(msg.resource)
        self._check_enter()

    def on_BLInquire(self, src: int, msg: BLInquire) -> None:
        """A later requester asks to be handed ``msg.resource`` when free."""
        r = msg.resource
        if r in self._owned and not self._resource_busy(r):
            self._owned.discard(r)
            self.send(msg.requester, BLResourceToken(resource=r))
        else:
            self._next_holder[r] = msg.requester

    def on_NTRequest(self, src: int, msg: NTRequest) -> None:
        """Route control-token traffic to the embedded Naimi–Tréhel instance."""
        self._control.handle(src, msg)

    def on_NTToken(self, src: int, msg: NTToken) -> None:
        """Route control-token traffic to the embedded Naimi–Tréhel instance."""
        self._control.handle(src, msg)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _resource_busy(self, resource: int) -> bool:
        """Whether the *registered* outstanding request still needs ``resource``.

        A request that has not yet acquired the control token is not part of
        the global registration order, so it must not retain tokens against
        an INQUIRE from an already-registered (hence earlier) request —
        doing so would create exactly the waiting cycles the control token
        exists to prevent.
        """
        if resource not in self._needed:
            return False
        if self._in_cs:
            return True
        return self._waiting and self._registered

    def _check_enter(self) -> None:
        if not self._waiting or not self._registered:
            return
        if self._needed <= self._owned:
            self._waiting = False
            self._in_cs = True
            callback = self._on_granted
            self._on_granted = None
            if self.trace is not None:
                self.trace.record(
                    self.sim.now, self.node_id, "cs_enter", resources=sorted(self._needed)
                )
            if callback is not None:
                callback()
