"""Common interface implemented by every multi-resource allocation protocol.

The experiment driver (:mod:`repro.experiments.driver`) talks to all
algorithms — the paper's algorithm, the incremental baseline, the
Bouabdallah–Laforest baseline and the shared-memory reference scheduler —
through this single interface, so the exact same workload can be replayed
against each of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, FrozenSet, Iterable


class AllocatorError(RuntimeError):
    """Raised on protocol misuse (e.g. releasing while not in CS)."""


class MultiResourceAllocator(ABC):
    """A process-local endpoint of a multi-resource allocation protocol.

    The contract mirrors Section 3.1 of the paper: a process cannot issue a
    new request before its previous one has been satisfied and released, so
    at most one request per process is outstanding at any time.
    """

    @abstractmethod
    def acquire(self, resources: Iterable[int], on_granted: Callable[[], None]) -> None:
        """Request exclusive access to ``resources``.

        ``on_granted`` is invoked (possibly synchronously, possibly after an
        arbitrary number of simulated message exchanges) exactly once, when
        the process has obtained the right to use *all* requested resources
        and may enter its critical section.
        """

    @abstractmethod
    def release(self) -> None:
        """Exit the critical section, releasing all resources of the
        current request.  Only legal while in critical section."""

    @property
    @abstractmethod
    def in_critical_section(self) -> bool:
        """Whether the process is currently executing its critical section."""

    @property
    @abstractmethod
    def is_idle(self) -> bool:
        """Whether the process has no outstanding request."""


def validate_resources(resources: Iterable[int], num_resources: int) -> FrozenSet[int]:
    """Validate and normalise a resource set against ``num_resources``.

    Raises :class:`AllocatorError` on empty sets or out-of-range ids, which
    keeps protocol implementations free of repeated argument checking.
    """
    rset = frozenset(int(r) for r in resources)
    if not rset:
        raise AllocatorError("a request must name at least one resource")
    for r in rset:
        if not 0 <= r < num_resources:
            raise AllocatorError(f"resource id {r} out of range [0, {num_resources})")
    return rset
