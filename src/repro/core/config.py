"""Configuration of the core algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.policies import MeanNonZeroPolicy, SchedulingPolicy, get_policy


@dataclass
class CoreConfig:
    """Tunable knobs of :class:`repro.core.node.CoreAllocatorNode`.

    Attributes
    ----------
    enable_loan:
        Toggles the loan mechanism — ``True`` reproduces the paper's
        "With loan" variant, ``False`` the "Without loan" one.
    loan_threshold:
        A waiting process asks for a loan only when the number of resources
        it is still missing is positive and at most this threshold.  The
        paper's evaluation uses 1; the threshold ablation (A1) sweeps it.
    policy:
        Scheduling function ``A``; defaults to the paper's mean of non-zero
        counter values.
    initial_holder:
        Site owning every resource token at time zero (the *elected node*
        of the initialisation pseudo-code).
    single_resource_optimization:
        Enables the Section 4.6.1 optimisation: a request for exactly one
        resource skips the counter phase; the token holder applies ``A`` to
        the counter itself and treats the counter request as a resource
        request, halving the synchronisation cost of single-resource
        requests.  Off by default (the paper's evaluation does not state
        whether it was active).
    """

    enable_loan: bool = True
    loan_threshold: int = 1
    policy: SchedulingPolicy = field(default_factory=MeanNonZeroPolicy)
    initial_holder: int = 0
    single_resource_optimization: bool = False

    def __post_init__(self) -> None:
        if self.loan_threshold < 0:
            raise ValueError("loan_threshold must be >= 0")
        if self.initial_holder < 0:
            raise ValueError("initial_holder must be a valid site id")

    @classmethod
    def without_loan(cls, policy: Optional[str] = None) -> "CoreConfig":
        """Convenience constructor for the "Without loan" variant."""
        return cls(
            enable_loan=False,
            policy=get_policy(policy) if policy else MeanNonZeroPolicy(),
        )

    @classmethod
    def with_loan(cls, loan_threshold: int = 1, policy: Optional[str] = None) -> "CoreConfig":
        """Convenience constructor for the "With loan" variant."""
        return cls(
            enable_loan=True,
            loan_threshold=loan_threshold,
            policy=get_policy(policy) if policy else MeanNonZeroPolicy(),
        )

    def describe(self) -> str:
        """One-line summary used by experiment reports."""
        loan = f"loan<= {self.loan_threshold}" if self.enable_loan else "no-loan"
        return f"CoreConfig({loan}, A={self.policy.describe()})"
