"""Configuration of the core algorithm.

Two layers are provided:

* :class:`CoreConfig` — the *built* configuration consumed by
  :class:`repro.core.node.CoreAllocatorNode`; it holds a live
  :class:`~repro.core.policies.SchedulingPolicy` instance and is therefore
  neither hashable nor a good cache key.
* :class:`CoreConfigSpec` — the *declarative* counterpart used by the
  Scenario API (:mod:`repro.experiments.scenario`): frozen, picklable and
  content-hashable (the policy is referenced by registry name), thawed
  into a :class:`CoreConfig` via :meth:`CoreConfigSpec.build` inside the
  process that runs the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.policies import MeanNonZeroPolicy, SchedulingPolicy, get_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.params import WorkloadParams

#: Default safety-net re-send interval of the core algorithm (ms).  See the
#: implementation notes in :mod:`repro.core.node`.
DEFAULT_RESEND_INTERVAL = 500.0


@dataclass
class CoreConfig:
    """Tunable knobs of :class:`repro.core.node.CoreAllocatorNode`.

    Attributes
    ----------
    enable_loan:
        Toggles the loan mechanism — ``True`` reproduces the paper's
        "With loan" variant, ``False`` the "Without loan" one.
    loan_threshold:
        A waiting process asks for a loan only when the number of resources
        it is still missing is positive and at most this threshold.  The
        paper's evaluation uses 1; the threshold ablation (A1) sweeps it.
    policy:
        Scheduling function ``A``; defaults to the paper's mean of non-zero
        counter values.
    initial_holder:
        Site owning every resource token at time zero (the *elected node*
        of the initialisation pseudo-code).
    single_resource_optimization:
        Enables the Section 4.6.1 optimisation: a request for exactly one
        resource skips the counter phase; the token holder applies ``A`` to
        the counter itself and treats the counter request as a resource
        request, halving the synchronisation cost of single-resource
        requests.  Off by default (the paper's evaluation does not state
        whether it was active).
    """

    enable_loan: bool = True
    loan_threshold: int = 1
    policy: SchedulingPolicy = field(default_factory=MeanNonZeroPolicy)
    initial_holder: int = 0
    single_resource_optimization: bool = False

    def __post_init__(self) -> None:
        if self.loan_threshold < 0:
            raise ValueError("loan_threshold must be >= 0")
        if self.initial_holder < 0:
            raise ValueError("initial_holder must be a valid site id")

    @classmethod
    def without_loan(cls, policy: Optional[str] = None) -> "CoreConfig":
        """Convenience constructor for the "Without loan" variant."""
        return cls(
            enable_loan=False,
            policy=get_policy(policy) if policy else MeanNonZeroPolicy(),
        )

    @classmethod
    def with_loan(cls, loan_threshold: int = 1, policy: Optional[str] = None) -> "CoreConfig":
        """Convenience constructor for the "With loan" variant."""
        return cls(
            enable_loan=True,
            loan_threshold=loan_threshold,
            policy=get_policy(policy) if policy else MeanNonZeroPolicy(),
        )

    def describe(self) -> str:
        """One-line summary used by experiment reports."""
        loan = f"loan<= {self.loan_threshold}" if self.enable_loan else "no-loan"
        return f"CoreConfig({loan}, A={self.policy.describe()})"


@dataclass(frozen=True)
class CoreConfigSpec:
    """Declarative, hashable configuration of the core algorithm.

    Attributes mirror :class:`CoreConfig` plus the node-level
    ``resend_interval`` knob, with two differences that keep the spec a
    pure value:

    * ``policy`` is the registry *name* of the scheduling function (see
      :func:`repro.core.policies.get_policy`), not an instance;
    * ``loan_threshold`` may be ``None``, meaning "use the threshold
      carried by the workload parameters" — resolved at :meth:`build`
      time so the same spec composes with any
      :class:`~repro.workload.params.WorkloadParams`.
    """

    enable_loan: bool = True
    loan_threshold: Optional[int] = None
    policy: str = "mean_nonzero"
    resend_interval: Optional[float] = DEFAULT_RESEND_INTERVAL
    initial_holder: int = 0
    single_resource_optimization: bool = False

    def __post_init__(self) -> None:
        if self.loan_threshold is not None and self.loan_threshold < 0:
            raise ValueError("loan_threshold must be >= 0")
        if self.initial_holder < 0:
            raise ValueError("initial_holder must be a valid site id")
        # Fail fast on policy-name typos, without holding the instance.
        get_policy(self.policy)

    def build(self, params: "WorkloadParams") -> CoreConfig:
        """Thaw the spec into the :class:`CoreConfig` a node consumes."""
        threshold = self.loan_threshold if self.loan_threshold is not None else params.loan_threshold
        return CoreConfig(
            enable_loan=self.enable_loan,
            loan_threshold=threshold,
            policy=get_policy(self.policy),
            initial_holder=self.initial_holder,
            single_resource_optimization=self.single_resource_optimization,
        )

    def describe(self) -> str:
        """One-line summary used by experiment reports."""
        loan = (
            f"loan<={self.loan_threshold if self.loan_threshold is not None else 'params'}"
            if self.enable_loan
            else "no-loan"
        )
        return f"CoreConfigSpec({loan}, A={self.policy})"
