"""Per-resource token structure (the ``Token`` type of Figure 8).

Exactly one token exists per resource at any time; the process holding it
is the only one allowed to read and increment the resource counter and to
manipulate the waiting queues, which is what makes counter values unique
without any global lock.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.messages import ReqLoan, ReqRes

from repro.core.ordering import request_key


@dataclass(slots=True)
class ResourceToken:
    """State carried by the unique token of one resource.

    Attributes
    ----------
    resource:
        Resource identifier this token controls.
    counter:
        Next counter value to hand out (strictly increasing).
    last_req_cnt:
        ``lastReqC`` array of the paper: per site, the id of the last
        ``ReqCnt`` already answered — used to discard obsolete counter
        requests.
    last_cs:
        ``lastCS`` array: per site, the id of the last critical-section
        request already satisfied — used to discard obsolete resource and
        loan requests.
    wqueue:
        Pending ``ReqRes`` entries in increasing ``/`` order (mark, site).
    wloan:
        Pending ``ReqLoan`` entries in increasing ``/`` order.
    lender:
        When the token has been lent, the identifier of the lender site.
    epoch:
        Fencing epoch of this token incarnation, bumped by every
        regeneration (:mod:`repro.core.recovery`).  A receiver discards
        tokens older than the epoch it last witnessed, so a stale copy of
        a lost-and-rebuilt token can never come back to life as a second
        token.  Always ``0`` in crash-free runs.
    """

    resource: int
    counter: int = 1
    last_req_cnt: Dict[int, int] = field(default_factory=dict)
    last_cs: Dict[int, int] = field(default_factory=dict)
    wqueue: List["ReqRes"] = field(default_factory=list)
    wloan: List["ReqLoan"] = field(default_factory=list)
    lender: Optional[int] = None
    epoch: int = 0

    # ------------------------------------------------------------------ #
    # counter handling
    # ------------------------------------------------------------------ #
    def take_counter(self) -> int:
        """Reserve and return the current counter value, then increment it."""
        value = self.counter
        self.counter += 1
        return value

    # ------------------------------------------------------------------ #
    # obsolescence (Section 4.2.1)
    # ------------------------------------------------------------------ #
    def is_obsolete_cnt(self, sinit: int, req_id: int) -> bool:
        """Whether a ``ReqCnt`` from ``sinit`` with ``req_id`` is obsolete."""
        return req_id <= self.last_req_cnt.get(sinit, 0) or req_id <= self.last_cs.get(sinit, 0)

    def is_obsolete_cs(self, sinit: int, req_id: int) -> bool:
        """Whether a ``ReqRes``/``ReqLoan`` from ``sinit`` is obsolete."""
        return req_id <= self.last_cs.get(sinit, 0)

    # ------------------------------------------------------------------ #
    # waiting queues
    # ------------------------------------------------------------------ #
    def queue_contains(self, sinit: int, req_id: int) -> bool:
        """Whether the waiting queue already holds a request from ``sinit``
        for critical-section request ``req_id``."""
        return any(r.sinit == sinit and r.req_id == req_id for r in self.wqueue)

    def enqueue(self, req: "ReqRes") -> None:
        """Insert a resource request keeping the queue sorted by ``/``."""
        keys = [request_key(r) for r in self.wqueue]
        bisect.insort(keys, request_key(req))
        index = keys.index(request_key(req))
        self.wqueue.insert(index, req)

    def dequeue(self) -> "ReqRes":
        """Pop the highest-priority (head) resource request."""
        return self.wqueue.pop(0)

    def head(self) -> Optional["ReqRes"]:
        """Return the highest-priority pending request, if any."""
        return self.wqueue[0] if self.wqueue else None

    def remove_requests_of(self, sinit: int) -> None:
        """Drop every queued resource request issued by ``sinit``."""
        self.wqueue = [r for r in self.wqueue if r.sinit != sinit]

    # ------------------------------------------------------------------ #
    # loan queue
    # ------------------------------------------------------------------ #
    def loan_contains(self, sinit: int, req_id: int) -> bool:
        """Whether the loan queue already holds this loan request."""
        return any(r.sinit == sinit and r.req_id == req_id for r in self.wloan)

    def enqueue_loan(self, req: "ReqLoan") -> None:
        """Insert a loan request keeping the loan queue sorted by ``/``."""
        keys = [request_key(r) for r in self.wloan]
        bisect.insort(keys, request_key(req))
        index = keys.index(request_key(req))
        self.wloan.insert(index, req)

    def remove_loans_of(self, sinit: int) -> None:
        """Drop every queued loan request issued by ``sinit``."""
        self.wloan = [r for r in self.wloan if r.sinit != sinit]

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #
    def copy(self) -> "ResourceToken":
        """Deep-enough copy used when the token is put on the wire.

        Request entries are immutable, so copying the containers is
        sufficient to decouple the sender's stale snapshot from the live
        token travelling through the network.
        """
        return ResourceToken(
            resource=self.resource,
            counter=self.counter,
            last_req_cnt=dict(self.last_req_cnt),
            last_cs=dict(self.last_cs),
            wqueue=list(self.wqueue),
            wloan=list(self.wloan),
            lender=self.lender,
            epoch=self.epoch,
        )
