"""Message types of the core algorithm (Figure 8 of the paper).

Three *request* message kinds travel along the per-resource trees towards
the token holder (``ReqCnt``, ``ReqRes``, ``ReqLoan``); two *response*
kinds travel directly to the requester (``Counter`` values and the resource
``Token`` itself).

The paper's aggregation mechanism (Section 4.2.2) combines messages of the
same family addressed to the same site into a single network message; the
``*Envelope`` classes are those combined network messages.  Individual
request records stay small and immutable so they can safely sit in token
waiting queues and per-node histories.

All message classes use ``slots=True``: one is allocated per message hop
on the simulation hot path, and slotted instances are both smaller and
faster to construct than dict-backed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple, Union

from repro.core.token import ResourceToken


@dataclass(frozen=True, slots=True)
class ReqCnt:
    """Request for the current counter value of ``resource``.

    Sent by ``sinit`` for its critical-section request ``req_id`` while in
    the ``waitS`` state.

    ``single`` marks the single-resource fast path of Section 4.6.1: the
    request asks for exactly one resource, so the token holder may apply
    the scheduling function itself and treat this message directly as a
    resource request instead of replying with a counter value.
    """

    resource: int
    sinit: int
    req_id: int
    single: bool = False


@dataclass(frozen=True, slots=True)
class ReqRes:
    """Request for the right to access ``resource``.

    ``mark`` is the value of the scheduling function ``A`` applied to the
    requester's counter vector; together with ``sinit`` it defines the
    request's position in the total order ``/``.
    """

    resource: int
    sinit: int
    req_id: int
    mark: float


@dataclass(frozen=True, slots=True)
class ReqLoan:
    """Request to *borrow* ``resource`` (and the rest of ``missing``).

    Sent by a ``waitCS`` process that misses at most ``loan_threshold``
    resources; the receiver may lend the whole ``missing`` set at once if
    the conditions of ``canLend`` hold (Section 4.5).
    """

    resource: int
    sinit: int
    req_id: int
    mark: float
    missing: FrozenSet[int] = field(default_factory=frozenset)


#: Union of the three request kinds (the paper's "request messages" family).
RequestKind = Union[ReqCnt, ReqRes, ReqLoan]


@dataclass(frozen=True, slots=True)
class CounterValue:
    """Reply to a ``ReqCnt``: the counter value reserved for the request."""

    resource: int
    value: int


@dataclass(frozen=True, slots=True)
class RequestEnvelope:
    """Aggregated request message forwarded along the trees.

    ``visited`` is the set of sites already traversed by these requests;
    forwarding stops when the probable owner is already in ``visited``
    (Section 4.2.1), which prevents messages from cycling forever while the
    trees reshape themselves.
    """

    visited: FrozenSet[int]
    requests: Tuple[RequestKind, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a request envelope must carry at least one request")


@dataclass(frozen=True, slots=True)
class CounterEnvelope:
    """Aggregated ``Counter`` replies sent directly to one requester."""

    counters: Tuple[CounterValue, ...]

    def __post_init__(self) -> None:
        if not self.counters:
            raise ValueError("a counter envelope must carry at least one value")


@dataclass(frozen=True, slots=True)
class TokenEnvelope:
    """Aggregated resource tokens sent directly to one site."""

    tokens: Tuple[ResourceToken, ...]

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("a token envelope must carry at least one token")
