"""Scheduling functions ``A : IN^M -> IR`` (Section 3.3.2).

The function ``A`` maps the counter vector of a request to a real number;
requests are then served in increasing order of that number (ties broken
by site id).  ``A`` is a parameter of the algorithm and effectively *is*
the scheduling policy.  The liveness property requires ``A`` to guarantee
that every request eventually has the smallest value among pending ones —
which holds for any monotone function of counters, since counters grow at
every new request.

The paper's evaluation uses the **average of the non-zero entries**
(:class:`MeanNonZeroPolicy`).  The other policies are provided for the
ablation benchmark A2 (see DESIGN.md) and as examples of the pluggable
interface.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import AbstractSet, Dict, Sequence, Type


class SchedulingPolicy(ABC):
    """Strategy object computing the mark of a request from its vector."""

    #: Registry name used by :func:`get_policy` and experiment configs.
    name: str = "abstract"

    @abstractmethod
    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        """Return ``A(vector)`` for a request over the ``required`` resources.

        ``vector`` has one entry per resource; entries for non-required
        resources are zero by construction.
        """

    def describe(self) -> str:
        """Human-readable description for reports."""
        return self.name


class MeanNonZeroPolicy(SchedulingPolicy):
    """Average of the non-zero counter values (the paper's choice).

    Starvation freedom: every new request obtains counter values strictly
    greater than the ones previously handed out for the same resources, so
    the minimum possible mark of future requests keeps growing and any
    pending request eventually becomes the smallest one.
    """

    name = "mean_nonzero"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        values = [vector[r] for r in required if vector[r] > 0]
        if not values:
            return 0.0
        return sum(values) / len(values)


class MaxPolicy(SchedulingPolicy):
    """Largest counter value of the request (pessimistic ordering)."""

    name = "max"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        values = [vector[r] for r in required if vector[r] > 0]
        return float(max(values)) if values else 0.0


class MinNonZeroPolicy(SchedulingPolicy):
    """Smallest non-zero counter value (optimistic ordering).

    Still starvation-free because counters grow monotonically, but it tends
    to favour requests touching rarely used resources.
    """

    name = "min_nonzero"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        values = [vector[r] for r in required if vector[r] > 0]
        return float(min(values)) if values else 0.0


class SumPolicy(SchedulingPolicy):
    """Sum of the counter values: penalises large requests.

    Included to illustrate a policy that biases the schedule by request
    size; large requests accumulate more counter mass and therefore wait
    longer under contention.
    """

    name = "sum"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        return float(sum(vector[r] for r in required))


class BalancedPolicy(SchedulingPolicy):
    """Mean over the *full* footprint, zero entries included.

    Scarcity-aware ordering in the spirit of accasim's ``balanced``
    allocator criterion: a request whose footprint touches mostly cold
    (never- or rarely-counted) resources averages in their zeros and gets
    a small mark, so it is served early — spreading use across the
    resource pool instead of piling onto the already-hot entries.
    Monotone in every counter, hence starvation-free like the paper's
    policies.
    """

    name = "balanced"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        if not required:
            return 0.0
        return sum(vector[r] for r in required) / len(required)


class WeightedPolicy(SchedulingPolicy):
    """Root-mean-square of the footprint: hot resources dominate the mark.

    The quadratic mean weights each counter by its own magnitude, so the
    mark of a request is dominated by its most contended (scarcest)
    resources — accasim's ``weighted`` criticality ordering.  Requests
    blocking a critical resource are pushed behind the queue that built
    up on it, while requests over uncontended resources slip through.
    Component-wise monotone (counters are non-negative), hence
    starvation-free.
    """

    name = "weighted"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        if not required:
            return 0.0
        return math.sqrt(sum(vector[r] * vector[r] for r in required) / len(required))


class HybridPolicy(SchedulingPolicy):
    """Midpoint of :class:`BalancedPolicy` and :class:`WeightedPolicy`.

    Blends the load-spreading mean with the scarcity-weighted quadratic
    mean (accasim's ``hybrid`` ordering): cold footprints still serve
    early, but a single very hot resource in the footprint keeps its
    weight.  A convex combination of monotone marks is monotone, so the
    starvation-freedom argument carries over unchanged.
    """

    name = "hybrid"

    def mark(self, vector: Sequence[int], required: AbstractSet[int]) -> float:
        if not required:
            return 0.0
        balanced = sum(vector[r] for r in required) / len(required)
        weighted = math.sqrt(sum(vector[r] * vector[r] for r in required) / len(required))
        return 0.5 * (balanced + weighted)


_REGISTRY: Dict[str, Type[SchedulingPolicy]] = {
    cls.name: cls
    for cls in (
        MeanNonZeroPolicy,
        MaxPolicy,
        MinNonZeroPolicy,
        SumPolicy,
        BalancedPolicy,
        WeightedPolicy,
        HybridPolicy,
    )
}


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered policy by name.

    Raises ``KeyError`` with the list of known names when unknown, so
    configuration typos fail fast.
    """
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown scheduling policy {name!r}; known policies: {sorted(_REGISTRY)}"
        ) from None


def available_policies() -> Sequence[str]:
    """Names of all registered scheduling policies."""
    return sorted(_REGISTRY)
