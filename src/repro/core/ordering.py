"""The total order ``/`` over requests (Section 3.3.2, Definition 1).

A request is identified by ``(mark, sinit)`` where ``mark = A(vector)`` is
the scheduling function applied to the request's counter vector and
``sinit`` the issuing site.  ``req_i / req_j`` holds iff

``A(v_i) < A(v_j)  or  (A(v_i) = A(v_j) and s_i < s_j)``

which is a strict total order whenever the two requests come from
different sites (two concurrent requests from the same site cannot exist
— Hypothesis 4 — and successive requests of a site are distinguished by
their ``req_id``).
"""

from __future__ import annotations

from typing import Protocol, Tuple


class _HasMarkAndSite(Protocol):
    """Structural type of anything that can participate in the order ``/``."""

    mark: float
    sinit: int


def request_key(req: _HasMarkAndSite) -> Tuple[float, int]:
    """Sort key implementing the order ``/``: smaller key = higher priority."""
    return (req.mark, req.sinit)


def precedes(a: _HasMarkAndSite, b: _HasMarkAndSite) -> bool:
    """``a / b``: ``a`` strictly precedes (has priority over) ``b``."""
    return request_key(a) < request_key(b)


def precedes_values(mark_a: float, site_a: int, mark_b: float, site_b: int) -> bool:
    """Value-level variant of :func:`precedes` (used when no request object exists)."""
    return (mark_a, site_a) < (mark_b, site_b)
