"""Process-level implementation of the paper's algorithm (Annex A).

Every process runs one :class:`CoreAllocatorNode`.  Each resource has a
unique :class:`~repro.core.token.ResourceToken` managed over a dynamic tree
of probable-owner pointers (``tokDir``), following a simplified prioritised
Mueller scheme.  A critical-section request proceeds in two phases:

1. **counter phase** (``waitS``): the requester obtains, for every
   requested resource, the current value of the resource counter (either
   locally if it holds the token, or through a ``ReqCnt``/``Counter``
   exchange with the token holder).  The resulting vector, mapped through
   the scheduling function ``A``, gives the request its *mark*.
2. **acquisition phase** (``waitCS``): the requester sends ``ReqRes``
   messages along the trees; token holders arbitrate conflicts with the
   total order ``/`` (mark, then site id), yielding tokens to higher
   priority requests and queueing lower-priority ones inside the token.

When the loan mechanism is enabled, a process missing at most
``loan_threshold`` resources may ask the holders to *lend* it everything it
misses; a lender grants the loan only if it owns the full missing set, is
not in CS, has no other outstanding loan and does not itself hold borrowed
tokens — which is what makes the loan deadlock- and starvation-free
(Section 3.4).

Implementation notes (documented deviations)
--------------------------------------------
* Entries issued by a site are dropped from a token's queues when that site
  (re)gains ownership of the token, and a process skips its own stale
  entries when handing a token over; this avoids the send-to-self corner
  cases the pseudo-code leaves implicit.
* A borrower returning tokens after a *failed* loan re-registers its own
  ``ReqRes`` in the returned token so the request cannot be lost.
* An optional requester-side re-send timer (``CoreConfig`` is unchanged;
  see ``resend_interval`` below) re-issues pending ``ReqCnt``/``ReqRes``
  messages after a long silence.  Request messages are idempotent (they are
  de-duplicated through ``lastReqC``/``lastCS`` and queue membership), so
  the retry is a pure safety net against the rare message-drop case of
  Section 4.2.1 where no forwarder ends up seeing the token.

Crash-recovery model (beyond the paper)
---------------------------------------
The paper assumes nodes never halt; the lifecycle layer
(:mod:`repro.sim.lifecycle`) drops that assumption.  The node implements
the crash-recovery interface consumed by
:class:`repro.core.recovery.RecoveryCoordinator` under a standard
stable-storage model:

* **on_crash** — the process halts: its resend timer is cancelled (the
  network side — no sends, no deliveries — is enforced by the fault
  layer).  Tokens it holds are *durable* (stable storage) but unreachable
  while it is down.
* **on_recover** — the process reboots: volatile request state (the
  outstanding request, counter phase, aggregation buffers, remembered
  foreign requests) died with it and is reset; durable token state
  survives, so the reboot handler immediately serves the waiting queues
  of the tokens it still holds and returns any borrowed token.
* **token regeneration** — when a crash is *detected*
  (:class:`~repro.sim.detectorspec.DetectorSpec`), the lowest-id
  surviving requester of each lost token rebuilds it from its local
  stale copy (``lastTok``): queues and obsolescence vectors are restored
  from the last time the token passed through, and the counter is bumped
  by ``N`` as slack against values the lost token handed out after that
  snapshot.  Counter collisions merely perturb priorities, never safety
  (safety is token possession).  A node that recovers *after* its tokens
  were regenerated is fenced: it discards the stale ownership and points
  at the regenerator.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.allocator import AllocatorError, MultiResourceAllocator, validate_resources
from repro.core.config import CoreConfig
from repro.core.messages import (
    CounterEnvelope,
    CounterValue,
    ReqCnt,
    ReqLoan,
    ReqRes,
    RequestEnvelope,
    RequestKind,
    TokenEnvelope,
)
from repro.core.ordering import precedes, request_key
from repro.core.token import ResourceToken
from repro.sim.engine import Event, Simulator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.trace import TraceRecorder


class ProcessState(str, Enum):
    """The four states of the machine of Figure 2."""

    IDLE = "idle"
    WAIT_S = "waitS"
    WAIT_CS = "waitCS"
    IN_CS = "inCS"


class CoreAllocatorNode(Node, MultiResourceAllocator):
    """One process of the paper's multi-resource allocation algorithm.

    Parameters
    ----------
    sim, network, node_id:
        Simulation plumbing (see :class:`repro.sim.node.Node`).
    num_resources:
        Total number of resources ``M``.
    config:
        Algorithm configuration (loan on/off, threshold, policy ``A``).
    trace:
        Optional trace recorder for Gantt rendering / debugging.
    resend_interval:
        If not ``None``, re-send outstanding ``ReqCnt``/``ReqRes`` messages
        after this much simulated time without progress (safety net; see
        the module docstring).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: int,
        num_resources: int,
        config: Optional[CoreConfig] = None,
        trace: Optional[TraceRecorder] = None,
        resend_interval: Optional[float] = None,
    ) -> None:
        Node.__init__(self, sim, network, node_id)
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        self.num_resources = num_resources
        self.config = config if config is not None else CoreConfig()
        self.trace = trace
        self.resend_interval = resend_interval

        owner = self.config.initial_holder
        owns_all = node_id == owner
        # tokDir: probable owner per resource (None <=> this node holds the token)
        self.tok_dir: List[Optional[int]] = [None if owns_all else owner] * num_resources
        self.last_tok: List[ResourceToken] = [ResourceToken(resource=r) for r in range(num_resources)]
        self._t_owned: Set[int] = set(range(num_resources)) if owns_all else set()

        self._state = ProcessState.IDLE
        self._t_required: Set[int] = set()
        self._cnt_needed: Set[int] = set()
        self._my_vector: List[int] = [0] * num_resources
        self._cur_id = 0
        self._t_lent: Set[int] = set()
        self._loan_asked = False
        self._on_granted: Optional[Callable[[], None]] = None
        self._pending_req: Dict[int, Dict[Tuple[str, int, int], RequestKind]] = {
            r: {} for r in range(num_resources)
        }
        self._resend_event: Optional[Event] = None
        self._single_fast_path = False
        # Highest token epoch witnessed per resource (fencing against
        # stale copies of regenerated tokens; all zero in crash-free runs).
        self._tok_epoch: List[int] = [0] * num_resources
        # Safety-net re-sends issued by _on_resend_timer, reported by the
        # runner as ExperimentResult.resend_count (fault-recovery metric).
        self.resend_count = 0

        # Aggregation buffers (Section 4.2.2): request messages and response
        # messages addressed to the same site are combined per handler run.
        self._req_buffer: Dict[int, List[RequestKind]] = {}
        self._cnt_buffer: Dict[int, List[CounterValue]] = {}
        self._tok_buffer: Dict[int, List[ResourceToken]] = {}
        # Visited set for locally originated requests, allocated once: it
        # is passed on every flush and never mutated.
        self._visited_self: FrozenSet[int] = frozenset((self.node_id,))

    # ------------------------------------------------------------------ #
    # public interface (MultiResourceAllocator)
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> ProcessState:
        """Current protocol state (Figure 2)."""
        return self._state

    @property
    def in_critical_section(self) -> bool:
        return self._state is ProcessState.IN_CS

    @property
    def is_idle(self) -> bool:
        return self._state is ProcessState.IDLE

    @property
    def owned_tokens(self) -> FrozenSet[int]:
        """Resources whose token this process currently holds."""
        return frozenset(self._t_owned)

    @property
    def telemetry_queue_depth(self) -> int:
        """Requests queued on tokens this node holds (waiting + loan).

        Pull-style telemetry source (:mod:`repro.obs.runtime`): read only
        by the sampling probe of telemetry-enabled runs, never on the
        protocol's own path.
        """
        last_tok = self.last_tok
        return sum(
            len(last_tok[r].wqueue) + len(last_tok[r].wloan) for r in self._t_owned
        )

    @property
    def required_resources(self) -> FrozenSet[int]:
        """Resources of the outstanding request (empty when idle)."""
        return frozenset(self._t_required)

    @property
    def current_request_id(self) -> int:
        """Identifier of the most recent critical-section request."""
        return self._cur_id

    def acquire(self, resources: Iterable[int], on_granted: Callable[[], None]) -> None:
        """Request exclusive access to ``resources`` (``Request_CS``)."""
        if self._state is not ProcessState.IDLE:
            raise AllocatorError(
                f"node {self.node_id}: acquire() while a request is outstanding "
                f"(state={self._state.value})"
            )
        rset = validate_resources(resources, self.num_resources)
        self._cur_id += 1
        self._t_required = set(rset)
        self._on_granted = on_granted
        self._loan_asked = False
        self._my_vector = [0] * self.num_resources
        self._cnt_needed = set()
        self._single_fast_path = False
        if (
            self.config.single_resource_optimization
            and len(rset) == 1
            and self.tok_dir[next(iter(rset))] is not None
        ):
            # Section 4.6.1: single-resource requests skip the counter phase;
            # the holder applies A to the counter itself and treats this
            # ReqCnt as a resource request.
            resource = next(iter(rset))
            self._single_fast_path = True
            self._set_state(ProcessState.WAIT_CS)
            self._buffer_request(
                self.tok_dir[resource],
                ReqCnt(resource=resource, sinit=self.node_id, req_id=self._cur_id, single=True),
            )
            self._flush_requests(self._visited_self)
            self._arm_resend_timer()
            return
        self._set_state(ProcessState.WAIT_S)
        for r in sorted(rset):
            if self.tok_dir[r] is None:
                # Token held locally: reserve the counter value directly.
                self._my_vector[r] = self.last_tok[r].take_counter()
            else:
                self._cnt_needed.add(r)
                self._buffer_request(
                    self.tok_dir[r], ReqCnt(resource=r, sinit=self.node_id, req_id=self._cur_id)
                )
        self._flush_requests(self._visited_self)
        if self._t_required <= self._t_owned:
            self._enter_cs()
        elif not self._cnt_needed:
            # All counters known locally but some tokens were given away
            # since: move straight to the acquisition phase.
            self._process_cnt_needed_empty()
            self._flush_requests(self._visited_self)
        if self._state is not ProcessState.IN_CS:
            self._arm_resend_timer()

    def release(self) -> None:
        """Exit the critical section (``Release_CS``)."""
        if self._state is not ProcessState.IN_CS:
            raise AllocatorError(
                f"node {self.node_id}: release() outside critical section "
                f"(state={self._state.value})"
            )
        self._set_state(ProcessState.IDLE)
        self._loan_asked = False
        for r in sorted(self._t_required):
            tok = self.last_tok[r]
            tok.last_cs[self.node_id] = self._cur_id
            lender = tok.lender
            if lender is not None and lender != self.node_id:
                # Borrowed token: it goes straight back to its lender.
                tok.remove_requests_of(lender)
                tok.lender = None
                self._send_token(lender, r)
            elif tok.wqueue:
                nxt = self._pop_next_requester(tok)
                if nxt is not None:
                    self._send_token(nxt, r)
        self._t_required = set()
        self._my_vector = [0] * self.num_resources
        self._cancel_resend_timer()
        self._flush_responses()

    # ------------------------------------------------------------------ #
    # crash / recovery lifecycle (see the module docstring)
    # ------------------------------------------------------------------ #
    def on_crash(self, time: float) -> None:
        """The process halts: suspend local timers (the resend safety net)."""
        Node.on_crash(self, time)
        self._cancel_resend_timer()
        self._trace("crash", tokens=sorted(self._t_owned))

    def on_recover(self, time: float) -> None:
        """The process reboots: drop volatile state, serve durable tokens.

        Volatile state (the outstanding request, counter phase,
        aggregation buffers, remembered foreign requests) died with the
        process; tokens and their queues are durable.  Any token that was
        regenerated elsewhere while this node was down has already been
        fenced away by the recovery coordinator (a lifecycle *listener*,
        notified before this participant callback), so serving the
        remaining queues can never emit a duplicate token.
        """
        Node.on_recover(self, time)
        self._set_state(ProcessState.IDLE)
        self._t_required = set()
        self._cnt_needed = set()
        self._my_vector = [0] * self.num_resources
        self._on_granted = None
        self._loan_asked = False
        self._single_fast_path = False
        self._req_buffer = {}
        self._cnt_buffer = {}
        self._tok_buffer = {}
        self._pending_req = {r: {} for r in range(self.num_resources)}
        self._trace("recover", tokens=sorted(self._t_owned))
        self._return_failed_loans()
        self._serve_queues()
        if self.config.enable_loan:
            self._process_pending_loans()
        self._flush_responses()
        self._flush_requests(self._visited_self)

    # -- crash-recovery interface (RecoveryCoordinator) ----------------- #
    def recovery_token_keys(self) -> range:
        """Universe of token keys this algorithm manages (one per resource)."""
        return range(self.num_resources)

    def recovery_held_tokens(self) -> FrozenSet[int]:
        """Tokens on this node's stable storage (lost while it is down)."""
        return frozenset(self._t_owned)

    def recovery_requires(self) -> FrozenSet[int]:
        """Tokens this node is currently waiting for (regeneration priority)."""
        if self._state in (ProcessState.WAIT_S, ProcessState.WAIT_CS):
            return frozenset(self._t_required - self._t_owned)
        return frozenset()

    def recovery_purge(self, crashed: int) -> None:
        """A peer was detected dead: forget its queued requests.

        Entries of ``crashed`` are dropped from *every* ``lastTok``
        snapshot — held tokens (so no future grant goes to a node known
        to be down; it would be dropped in flight and lose the token
        again) *and* stale snapshots of tokens currently elsewhere, which
        are exactly what ``recovery_regenerate`` rebuilds from: a dead
        requester surviving inside a stale snapshot would re-enter the
        regenerated queue and be served into the void, with every
        detection already spent.  The locally remembered request history
        is scrubbed too.  A rebooted node re-requests with a fresh id,
        which re-registers normally.
        """
        for r in range(self.num_resources):
            tok = self.last_tok[r]
            tok.remove_requests_of(crashed)
            tok.remove_loans_of(crashed)
        for pending in self._pending_req.values():
            for key in [k for k, req in pending.items() if req.sinit == crashed]:
                del pending[key]

    def recovery_regenerate(
        self,
        resource: int,
        crashed: Optional[int],
        counter_slack: int,
        epoch: int,
        requesters: Tuple[int, ...] = (),
    ) -> None:
        """Rebuild the lost token of ``resource`` from local request state.

        The regenerated token is this node's stale ``lastTok`` snapshot —
        queues and obsolescence vectors from the last time the token
        passed through here — minus the crashed node's entries, with the
        counter bumped by ``counter_slack`` (the coordinator passes
        ``N``) as slack against values the lost token handed out after
        the snapshot.  Counter collisions only perturb request
        priorities, never safety; the fresh ``epoch`` fences out any
        stale copy of the previous incarnation still in flight.  Adopting
        the rebuilt token reuses the ordinary token arrival path, so
        entering the CS, serving queues and loans all behave exactly as
        for a received token.  ``requesters`` (the surviving-requester
        ids) is part of the coordinator interface but unused here: this
        algorithm's queues travel inside the token.
        """
        if resource in self._t_owned:  # pragma: no cover - defensive
            raise AllocatorError(
                f"node {self.node_id}: regenerating token {resource} it already holds"
            )
        tok = self.last_tok[resource].copy()
        tok.lender = None
        tok.counter += counter_slack
        tok.epoch = epoch
        if crashed is not None:
            tok.remove_requests_of(crashed)
            tok.remove_loans_of(crashed)
        self._trace("token_regenerated", resource=resource, crashed=crashed, epoch=epoch)
        self.on_TokenEnvelope(self.node_id, TokenEnvelope(tokens=(tok,)))

    def recovery_repoint(
        self,
        resource: int,
        owner: int,
        crashed: Optional[int],
        epoch: int,
        regenerated: bool,
        requesters: Tuple[int, ...] = (),
    ) -> None:
        """The token of ``resource`` lives at ``owner``: chase it, not the dead.

        Called on every survivor both for regenerated tokens (``owner``
        is the regenerator, ``epoch`` is fresh) and for alive tokens
        whose probable-owner chain may have run through the crashed node
        (``owner`` is the actual holder).  The pointer is set straight to
        ``owner`` — the freshest information available at detection time
        — the witnessed epoch is advanced so stale incarnations get
        discarded, and any outstanding request of our own for the
        resource is re-issued: it may have died in the crashed node's
        queues or in flight to it.  Re-issues are idempotent
        (``lastReqC``/``lastCS`` and queue-membership dedup), exactly
        like resend-timer retries.  ``regenerated`` and ``requesters``
        exist for algorithms that must rebuild distributed queues (the
        Naimi–Tréhel chain); this algorithm's queues travel inside the
        token, so both are ignored here.
        """
        if epoch > self._tok_epoch[resource]:
            self._tok_epoch[resource] = epoch
        if resource in self._t_owned or owner == self.node_id:
            return
        self.tok_dir[resource] = owner
        self._reissue_pending(resource, owner)
        self._flush_requests(self._visited_self)

    def recovery_fence(self, resource: int, owner: int, epoch: int) -> None:
        """Called on reboot for tokens regenerated while this node was down.

        Stale ownership (if any) is discarded in favour of the
        regenerator at ``owner`` — the rejoin handshake of a real
        implementation — and the witnessed epoch is advanced so a stale
        in-flight copy arriving after the reboot is discarded too.  Runs
        before :meth:`on_recover` (listeners precede participants), so
        the reboot handler never serves a fenced token's queues.
        """
        if epoch > self._tok_epoch[resource]:
            self._tok_epoch[resource] = epoch
        self._t_owned.discard(resource)
        self._t_lent.discard(resource)
        if owner != self.node_id:
            self.tok_dir[resource] = owner
        self._trace("token_fenced", resource=resource, owner=owner, epoch=epoch)

    def _reissue_pending(self, resource: int, dest: int) -> None:
        """Buffer a fresh copy of our outstanding request for ``resource``."""
        if self._state is ProcessState.WAIT_S:
            if resource in self._cnt_needed:
                self._buffer_request(
                    dest, ReqCnt(resource=resource, sinit=self.node_id, req_id=self._cur_id)
                )
        elif self._state is ProcessState.WAIT_CS:
            if resource in self._t_required and resource not in self._t_owned:
                if self._single_fast_path:
                    self._buffer_request(
                        dest,
                        ReqCnt(
                            resource=resource,
                            sinit=self.node_id,
                            req_id=self._cur_id,
                            single=True,
                        ),
                    )
                else:
                    self._buffer_request(
                        dest,
                        ReqRes(
                            resource=resource,
                            sinit=self.node_id,
                            req_id=self._cur_id,
                            mark=self._current_mark(),
                        ),
                    )

    # ------------------------------------------------------------------ #
    # message handlers
    # ------------------------------------------------------------------ #
    def on_RequestEnvelope(self, src: int, env: RequestEnvelope) -> None:
        """Handle an aggregated request message (``Receive Request``)."""
        for req in env.requests:
            self._handle_request(req, env.visited)
        if self._req_buffer:
            self._flush_requests(env.visited | {self.node_id})
        self._flush_responses()

    def on_CounterEnvelope(self, src: int, env: CounterEnvelope) -> None:
        """Handle aggregated counter values (``Receive Counter``)."""
        for cnt in env.counters:
            r = cnt.resource
            if r not in self._cnt_needed:
                # Duplicate / stale counter (already satisfied through a
                # token or an earlier reply): ignore.
                continue
            self._my_vector[r] = cnt.value
            self._cnt_needed.discard(r)
            if self.tok_dir[r] is not None:
                # Path shortcut (Section 4.6.2): the replier held the token.
                self.tok_dir[r] = src
        if self._state is ProcessState.WAIT_S and not self._cnt_needed:
            self._process_cnt_needed_empty()
        self._flush_requests(self._visited_self)
        self._flush_responses()

    def on_TokenEnvelope(self, src: int, env: TokenEnvelope) -> None:
        """Handle aggregated resource tokens (``Receive Token``)."""
        for tok in env.tokens:
            self._process_update(tok)
        if (
            self._t_required
            and self._t_required <= self._t_owned
            and self._state in (ProcessState.WAIT_S, ProcessState.WAIT_CS)
        ):
            self._flush_responses()
            self._flush_requests(self._visited_self)
            self._enter_cs()
            return
        # Not entering the CS: return failed loans, advance the counter
        # phase if complete, serve the queues of the tokens we hold and
        # possibly initiate a loan request of our own.
        self._return_failed_loans()
        if self._state is ProcessState.WAIT_S and not self._cnt_needed:
            self._process_cnt_needed_empty()
        self._serve_queues()
        if self.config.enable_loan:
            self._process_pending_loans()
            self._maybe_request_loan()
        self._flush_responses()
        self._flush_requests(self._visited_self)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _handle_request(self, req: RequestKind, visited: FrozenSet[int]) -> None:
        r = req.resource
        tok = self.last_tok[r]
        if isinstance(req, ReqCnt):
            if tok.is_obsolete_cnt(req.sinit, req.req_id):
                return
        elif tok.is_obsolete_cs(req.sinit, req.req_id):
            return

        if r in self._t_owned:
            if isinstance(req, ReqLoan):
                self._process_req_loan(req)
            elif r not in self._t_required or (
                self._state is ProcessState.WAIT_S and not isinstance(req, ReqCnt)
            ):
                # Either we do not need the resource, or we are still in the
                # counter phase: hand the token over directly.
                self._send_token(req.sinit, r)
            elif isinstance(req, ReqCnt):
                tok.last_req_cnt[req.sinit] = req.req_id
                if req.single:
                    # Section 4.6.1: stamp the request here and treat it as
                    # a resource request right away.
                    synthetic = ReqRes(
                        resource=r,
                        sinit=req.sinit,
                        req_id=req.req_id,
                        mark=float(tok.take_counter()),
                    )
                    self._handle_request(synthetic, visited)
                else:
                    self._buffer_counter(
                        req.sinit, CounterValue(resource=r, value=tok.take_counter())
                    )
            elif isinstance(req, ReqRes):
                if tok.queue_contains(req.sinit, req.req_id):
                    return
                if self._state is ProcessState.WAIT_CS:
                    my_req = self._my_req_for(r)
                    if precedes(req, my_req):
                        # The incoming request has priority: yield the token
                        # and queue our own request so it comes back.
                        tok.enqueue(my_req)
                        self._send_token(req.sinit, r)
                        return
                # We are in CS, or our request has priority: queue it.
                tok.enqueue(req)
        else:
            father = self.tok_dir[r]
            self._remember_pending(r, req)
            if father is not None and father not in visited:
                self._buffer_request(father, req)
            # else: forwarding stops; the request stays in our local history
            # and will be replayed when (if) the token passes through us.

    def _process_req_loan(self, req: ReqLoan) -> None:
        r = req.resource
        tok = self.last_tok[r]
        if tok.is_obsolete_cs(req.sinit, req.req_id):
            return
        if r not in self._t_owned:
            # Can happen when called on queued loans after the token moved.
            return
        if self._can_lend(req):
            self._t_lent = set(req.missing)
            for lent in sorted(self._t_lent):
                lent_tok = self.last_tok[lent]
                lent_tok.lender = self.node_id
                lent_tok.remove_loans_of(req.sinit)
                self._send_token(req.sinit, lent)
            if self.trace is not None:
                self._trace("loan_granted", borrower=req.sinit, resources=sorted(req.missing))
        else:
            if r not in self._t_required or self._state is ProcessState.WAIT_S:
                self._send_token(req.sinit, r)
            elif not tok.loan_contains(req.sinit, req.req_id):
                tok.enqueue_loan(req)

    def _can_lend(self, req: ReqLoan) -> bool:
        """The ``canLend`` predicate (Section 4.5 / lines 117-132)."""
        if not self.config.enable_loan:
            return False
        if not set(req.missing) <= self._t_owned:
            return False
        if any(self.last_tok[r].lender is not None for r in self._t_owned):
            return False
        if self._t_lent:
            return False
        if self._state is ProcessState.IN_CS:
            return False
        if self._state is ProcessState.WAIT_CS:
            if not self._loan_asked:
                return True
            return request_key(req) < (self._current_mark(), self.node_id)
        return True

    # ------------------------------------------------------------------ #
    # token handling
    # ------------------------------------------------------------------ #
    def _process_update(self, incoming: ResourceToken) -> None:
        """Adopt a received token as the authoritative state (``processUpdate``)."""
        r = incoming.resource
        if incoming.epoch < self._tok_epoch[r]:
            # Stale copy of a lost-and-regenerated token still in flight:
            # a newer incarnation exists, adopting this one would create
            # a second live token.  Unreachable in crash-free runs.
            self._trace("stale_token_dropped", resource=r, epoch=incoming.epoch)
            return
        self._tok_epoch[r] = incoming.epoch
        tok = incoming
        if tok.lender == self.node_id:
            # One of our lent tokens coming home.
            tok.lender = None
        self.last_tok[r] = tok
        self._t_owned.add(r)
        self.tok_dir[r] = None
        self._t_lent.discard(r)
        if r in self._cnt_needed:
            self._my_vector[r] = tok.take_counter()
            self._cnt_needed.discard(r)
        # Our own entries are satisfied by ownership; drop them (but keep
        # them inside borrowed tokens so a failed loan can restore them).
        if tok.lender is None:
            tok.remove_requests_of(self.node_id)
        tok.remove_loans_of(self.node_id)
        if self.trace is not None:
            self._trace("token_received", resource=r, lender=tok.lender)
        # Replay the locally buffered requests that may never have reached
        # the previous holders (Section 4.2.1).
        pending = self._pending_req[r]
        self._pending_req[r] = {}
        for req in pending.values():
            if req.sinit == self.node_id:
                continue
            if isinstance(req, ReqCnt):
                if tok.is_obsolete_cnt(req.sinit, req.req_id):
                    continue
                tok.last_req_cnt[req.sinit] = req.req_id
                if req.single:
                    if not tok.queue_contains(req.sinit, req.req_id):
                        tok.enqueue(
                            ReqRes(
                                resource=r,
                                sinit=req.sinit,
                                req_id=req.req_id,
                                mark=float(tok.take_counter()),
                            )
                        )
                else:
                    self._buffer_counter(
                        req.sinit, CounterValue(resource=r, value=tok.take_counter())
                    )
            elif isinstance(req, ReqRes):
                if tok.is_obsolete_cs(req.sinit, req.req_id):
                    continue
                if not tok.queue_contains(req.sinit, req.req_id):
                    tok.enqueue(req)
            elif isinstance(req, ReqLoan):
                if tok.is_obsolete_cs(req.sinit, req.req_id):
                    continue
                if not tok.loan_contains(req.sinit, req.req_id):
                    tok.enqueue_loan(req)

    def _return_failed_loans(self) -> None:
        """Return borrowed tokens when the loan did not let us enter the CS."""
        for r in sorted(self._t_owned):
            tok = self.last_tok[r]
            if tok.lender is None or tok.lender == self.node_id:
                continue
            lender = tok.lender
            tok.lender = None
            # Keep our request registered so it is not lost with the loan.
            if (
                r in self._t_required
                and self._state in (ProcessState.WAIT_S, ProcessState.WAIT_CS)
                and not tok.queue_contains(self.node_id, self._cur_id)
            ):
                tok.enqueue(self._my_req_for(r))
            self._send_token(lender, r)
            self._loan_asked = False
            self._trace("loan_failed", lender=lender, resource=r)

    def _serve_queues(self) -> None:
        """Grant owned tokens to higher-priority queued requests (lines 226-240)."""
        for r in sorted(self._t_owned):
            if r not in self._t_owned:  # pragma: no cover - defensive
                continue
            tok = self.last_tok[r]
            # Drop stale heads (our own entries or already-satisfied requests).
            while tok.wqueue and (
                tok.wqueue[0].sinit == self.node_id
                or tok.is_obsolete_cs(tok.wqueue[0].sinit, tok.wqueue[0].req_id)
            ):
                tok.dequeue()
            head = tok.head()
            if head is None:
                continue
            if self._state in (ProcessState.WAIT_S, ProcessState.IDLE) or r not in self._t_required:
                tok.dequeue()
                self._send_token(head.sinit, r)
            elif self._state is ProcessState.WAIT_CS:
                my_req = self._my_req_for(r)
                if precedes(head, my_req):
                    tok.dequeue()
                    tok.enqueue(my_req)
                    self._send_token(head.sinit, r)
            # IN_CS: queued requests wait until Release_CS.

    def _process_pending_loans(self) -> None:
        """Re-examine queued loan requests of the tokens we hold (lines 241-247)."""
        for r in sorted(self._t_owned):
            if r not in self._t_owned:
                continue
            tok = self.last_tok[r]
            if not tok.wloan:
                continue
            pending = list(tok.wloan)
            tok.wloan = []
            for req in pending:
                if r in self._t_owned:
                    self._process_req_loan(req)

    def _maybe_request_loan(self) -> None:
        """Initiate a loan request when few resources are missing (lines 248-252)."""
        if self._state is not ProcessState.WAIT_CS or self._loan_asked:
            return
        missing = self._t_required - self._t_owned
        if not missing or len(missing) > self.config.loan_threshold:
            return
        self._loan_asked = True
        mark = self._current_mark()
        fmissing = frozenset(missing)
        for r in sorted(missing):
            father = self.tok_dir[r]
            if father is None:  # pragma: no cover - defensive
                continue
            self._buffer_request(
                father,
                ReqLoan(
                    resource=r,
                    sinit=self.node_id,
                    req_id=self._cur_id,
                    mark=mark,
                    missing=fmissing,
                ),
            )
        if self.trace is not None:
            self._trace("loan_requested", missing=sorted(missing))

    # ------------------------------------------------------------------ #
    # counter phase
    # ------------------------------------------------------------------ #
    def _process_cnt_needed_empty(self) -> None:
        """All counter values obtained: move to ``waitCS`` and request tokens."""
        self._set_state(ProcessState.WAIT_CS)
        mark = self._current_mark()
        for r in sorted(self._t_required):
            if r in self._t_owned:
                continue
            father = self.tok_dir[r]
            if father is None:  # pragma: no cover - defensive
                continue
            self._buffer_request(
                father, ReqRes(resource=r, sinit=self.node_id, req_id=self._cur_id, mark=mark)
            )

    def _current_mark(self) -> float:
        """``A(MyVector)`` for the outstanding request."""
        return self.config.policy.mark(self._my_vector, self._t_required)

    def _my_req_for(self, resource: int) -> ReqRes:
        """Build our own ``ReqRes`` entry for ``resource`` (``myReq``)."""
        return ReqRes(
            resource=resource,
            sinit=self.node_id,
            req_id=self._cur_id,
            mark=self._current_mark(),
        )

    # ------------------------------------------------------------------ #
    # send helpers / aggregation buffers
    # ------------------------------------------------------------------ #
    def _send_token(self, dest: int, resource: int) -> None:
        if resource not in self._t_owned:
            raise AllocatorError(
                f"node {self.node_id}: sending token {resource} it does not own"
            )
        if dest == self.node_id:
            raise AllocatorError(f"node {self.node_id}: sending token {resource} to itself")
        tok = self.last_tok[resource]
        self._tok_buffer.setdefault(dest, []).append(tok.copy())
        self.tok_dir[resource] = dest
        self._t_owned.discard(resource)
        if self.trace is not None:
            self._trace("token_sent", resource=resource, dest=dest)

    def _buffer_request(self, dest: int, req: RequestKind) -> None:
        self._req_buffer.setdefault(dest, []).append(req)

    def _buffer_counter(self, dest: int, cnt: CounterValue) -> None:
        self._cnt_buffer.setdefault(dest, []).append(cnt)

    def _flush_requests(self, visited: FrozenSet[int]) -> None:
        if not self._req_buffer:
            return
        buffered = self._req_buffer
        self._req_buffer = {}
        for dest, reqs in buffered.items():
            self.send(dest, RequestEnvelope(visited=visited, requests=tuple(reqs)))

    def _flush_responses(self) -> None:
        if self._cnt_buffer:
            buffered = self._cnt_buffer
            self._cnt_buffer = {}
            for dest, counters in buffered.items():
                self.send(dest, CounterEnvelope(counters=tuple(counters)))
        if self._tok_buffer:
            buffered_toks = self._tok_buffer
            self._tok_buffer = {}
            for dest, toks in buffered_toks.items():
                self.send(dest, TokenEnvelope(tokens=tuple(toks)))

    # ------------------------------------------------------------------ #
    # misc internals
    # ------------------------------------------------------------------ #
    def _pop_next_requester(self, tok: ResourceToken) -> Optional[int]:
        """Pop the next live foreign requester from a token queue.

        Skips the node's own stale entries and entries made obsolete by an
        already-completed critical section (e.g. requests satisfied through
        a loan)."""
        while tok.wqueue:
            req = tok.dequeue()
            if req.sinit == self.node_id:
                continue
            if tok.is_obsolete_cs(req.sinit, req.req_id):
                continue
            return req.sinit
        return None

    def _enter_cs(self) -> None:
        self._set_state(ProcessState.IN_CS)
        self._cancel_resend_timer()
        callback = self._on_granted
        self._on_granted = None
        if self.trace is not None:
            self._trace("cs_enter", resources=sorted(self._t_required), req_id=self._cur_id)
        if callback is not None:
            callback()

    def _set_state(self, new_state: ProcessState) -> None:
        if new_state is self._state:
            return
        if self.trace is not None:
            self._trace("state", frm=self._state.value, to=new_state.value)
        self._state = new_state

    def _remember_pending(self, resource: int, req: RequestKind) -> None:
        key = (type(req).__name__, req.sinit, req.req_id)
        self._pending_req[resource][key] = req

    def _trace(self, kind: str, **details: object) -> None:
        if self.trace is not None:
            self.trace.record(self.sim.now, self.node_id, kind, **details)

    # ------------------------------------------------------------------ #
    # re-send safety net
    # ------------------------------------------------------------------ #
    def _arm_resend_timer(self) -> None:
        if self.resend_interval is None:
            return
        self._cancel_resend_timer()
        self._resend_event = self.set_timer(self.resend_interval, self._on_resend_timer)

    def _cancel_resend_timer(self) -> None:
        if self._resend_event is not None:
            self._resend_event.cancel()
            self._resend_event = None

    def _on_resend_timer(self) -> None:
        self._resend_event = None
        if self._state is ProcessState.WAIT_S:
            for r in sorted(self._cnt_needed):
                father = self.tok_dir[r]
                if father is not None:
                    self.resend_count += 1
                    self._buffer_request(
                        father, ReqCnt(resource=r, sinit=self.node_id, req_id=self._cur_id)
                    )
        elif self._state is ProcessState.WAIT_CS:
            mark = self._current_mark()
            for r in sorted(self._t_required - self._t_owned):
                father = self.tok_dir[r]
                if father is None:
                    continue
                self.resend_count += 1
                if self._single_fast_path:
                    self._buffer_request(
                        father,
                        ReqCnt(resource=r, sinit=self.node_id, req_id=self._cur_id, single=True),
                    )
                else:
                    self._buffer_request(
                        father,
                        ReqRes(resource=r, sinit=self.node_id, req_id=self._cur_id, mark=mark),
                    )
        else:
            return
        self._flush_requests(self._visited_self)
        self._arm_resend_timer()
