"""The paper's algorithm: counter-based, lock-free multi-resource allocation.

This package implements the contribution of the paper (Sections 3 and 4
and the pseudo-code of Annex A):

* one token per resource carrying a **counter**, a priority-ordered waiting
  queue and loan bookkeeping, managed over a dynamic tree of probable-owner
  pointers (a simplified, prioritised Mueller algorithm);
* a request is stamped with the vector of counter values it obtained, and
  requests are totally ordered by ``A(vector)`` with site ids breaking ties
  (the relation ``/`` of the paper) — :mod:`repro.core.ordering` and
  :mod:`repro.core.policies`;
* an optional **loan mechanism** by which a waiting process lends *all* the
  tokens another process is missing so the borrower can run its critical
  section immediately, with at most one outstanding loan per lender —
  enabled/disabled through :class:`repro.core.config.CoreConfig`
  (the "With loan" / "Without loan" variants of the evaluation).

The process-level endpoint is :class:`repro.core.node.CoreAllocatorNode`.
"""

from repro.core.config import DEFAULT_RESEND_INTERVAL, CoreConfig, CoreConfigSpec
from repro.core.messages import (
    CounterEnvelope,
    CounterValue,
    ReqCnt,
    ReqLoan,
    ReqRes,
    RequestEnvelope,
    TokenEnvelope,
)
from repro.core.node import CoreAllocatorNode, ProcessState
from repro.core.ordering import precedes, request_key
from repro.core.policies import (
    MaxPolicy,
    MeanNonZeroPolicy,
    MinNonZeroPolicy,
    SchedulingPolicy,
    SumPolicy,
    get_policy,
)
from repro.core.token import ResourceToken

__all__ = [
    "DEFAULT_RESEND_INTERVAL",
    "CoreConfig",
    "CoreConfigSpec",
    "CoreAllocatorNode",
    "ProcessState",
    "ResourceToken",
    "ReqCnt",
    "ReqRes",
    "ReqLoan",
    "CounterValue",
    "RequestEnvelope",
    "CounterEnvelope",
    "TokenEnvelope",
    "SchedulingPolicy",
    "MeanNonZeroPolicy",
    "MaxPolicy",
    "SumPolicy",
    "MinNonZeroPolicy",
    "get_policy",
    "precedes",
    "request_key",
]
