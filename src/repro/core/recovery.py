"""Crash detection and token regeneration.

The paper's algorithms are token-based: exactly one token exists per
resource, and a fail-silent crash of its holder retires the resource for
the rest of the run (``examples/fault_ablation.py`` shows every
completion rate collapsing once tokens can vanish).  This module closes
that gap with a deterministic recovery protocol layered on the lifecycle
events of :mod:`repro.sim.lifecycle`:

1. **Detection** — a scenario's :class:`~repro.sim.detectorspec.DetectorSpec`
   thaws into a :class:`~repro.sim.detectorspec.CrashDetector` whose
   ``detection_delay`` models a heartbeat scheme's worst-case latency.
   Each crash schedules one detection event that far in the future; a
   node that recovers first cancels it (its heartbeats resumed), so an
   undetected blip never triggers regeneration.
2. **Token-loss adjudication** — at detection time the coordinator builds
   the holder map over every recovery-capable allocator (the wave a real
   implementation would run over per-node stable-storage logs).  A token
   held by the detected node is *lost* and regenerated immediately.  A
   token held by *nobody* is suspicious — either it was dropped in
   flight toward a down node, or it is merely mid-flight between two
   live survivors at this very instant (senders disown a token when they
   put it on the wire) — so it gets a *confirmation round*: one
   detection delay later, a still-holderless token is declared lost and
   regenerated, while a token that landed meanwhile is left alone.
   Tokens held by a survivor are alive; tokens held by a different down
   node are left to that node's own detection.
3. **Regeneration** — each lost token is rebuilt by the lowest-id
   *surviving requester* (falling back to the lowest-id survivor) from
   its own local request state (``recovery_regenerate``), under a fresh
   *epoch*: stale copies of the previous incarnation still in flight are
   discarded on arrival by their epoch, so regeneration can never yield
   two live tokens.  Every other survivor is repointed at the new owner
   and re-issues its outstanding request (``recovery_repoint``), and
   survivors whose probable-owner chain for an *alive* token ran through
   the dead node are repointed at the actual holder — requests no longer
   chase a black hole.
4. **Purging and fencing** — survivors drop the dead node's queued
   requests (``recovery_purge``), so no future token is granted to a
   node known to be down.  If the crashed node later reboots, it is told
   which tokens were regenerated while it was gone
   (``recovery_fence``) *before* its own recovery handler runs, so stale
   ownership is discarded instead of served.

A recovery sweep also runs right after an *undetected* blip heals (the
node recovered before its detection fired): tokens granted to the node
while it was down were dropped in flight and would otherwise be lost
with no detection left to notice — the sweep sends exactly the
holderless ones through the same confirmation round.  Even if a
confirmation ever misfires on a token that is somehow still in transit,
the epoch fence keeps it safe: the stale incarnation is discarded on
arrival, never resurrected beside the new one.

Every step is a deterministic function of the scenario (windows and the
detection delay are data; adjudication reads single-threaded simulation
state), so recovery runs are memoisable and bit-identical between
``workers=1`` and ``workers=N`` like everything else.

Allocators opt into recovery by providing the ``recovery_*`` methods
(duck-typed; see :class:`repro.core.node.CoreAllocatorNode` and
:class:`repro.baselines.incremental.IncrementalAllocatorNode`).  Nodes
without the interface — e.g. the Bouabdallah–Laforest baseline, whose
control token has no regeneration story — are simply skipped: their
crashes are still detected, but their tokens stay lost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.detectorspec import CrashDetector
from repro.sim.engine import Event, Simulator
from repro.sim.lifecycle import NodeLifecycle

__all__ = ["RecoveryCoordinator", "supports_recovery"]

#: Methods an allocator must provide to take part in token recovery.
RECOVERY_INTERFACE = (
    "recovery_token_keys",
    "recovery_held_tokens",
    "recovery_requires",
    "recovery_purge",
    "recovery_regenerate",
    "recovery_repoint",
    "recovery_fence",
)


def supports_recovery(allocator: object) -> bool:
    """Whether ``allocator`` implements the crash-recovery interface."""
    return all(callable(getattr(allocator, name, None)) for name in RECOVERY_INTERFACE)


class RecoveryCoordinator:
    """Drives detection, adjudication, regeneration and fencing for one run.

    Registered as a :class:`~repro.sim.lifecycle.NodeLifecycle` listener,
    so it observes crash/recover edges before the participants act on
    them.  Aggregate outcomes are exposed for
    :class:`~repro.experiments.runner.ExperimentResult`:

    * :attr:`tokens_regenerated` — number of lost tokens rebuilt;
    * :attr:`recovery_time` — total simulated time from crash to
      regeneration, summed over lost tokens: typically one detection
      delay per token regenerated at its holder's detection, two per
      token that needed a confirmation round, more when a detection had
      to re-arm because no survivor was up yet (post-blip sweeps add
      nothing because the blip itself was never detected, leaving no
      crash to date the loss from).
    """

    def __init__(
        self,
        sim: Simulator,
        allocators: Sequence[object],
        lifecycle: NodeLifecycle,
        detector: CrashDetector,
    ) -> None:
        self._sim = sim
        self._allocators = list(allocators)
        self._lifecycle = lifecycle
        self._detector = detector
        self._pending: Dict[int, Event] = {}
        self._crashed_at: Dict[int, float] = {}
        # Fencing epoch per token key, bumped on every regeneration; stale
        # incarnations still in flight identify themselves by a smaller
        # epoch and are discarded on arrival.
        self._epochs: Dict[object, int] = {}
        # Per down node: key -> (owner, epoch) regenerated while it was
        # gone, applied as fences when (if) it reboots.
        self._fenced: Dict[int, Dict[object, Tuple[int, int]]] = {}
        self.tokens_regenerated = 0
        self.recovery_time = 0.0
        #: Fencing-epoch updates pushed to rebooting nodes (telemetry).
        self.fences_applied = 0
        lifecycle.add_listener(self)

    # ------------------------------------------------------------------ #
    # lifecycle listener
    # ------------------------------------------------------------------ #
    def node_crashed(self, node: int, time: float) -> None:
        """Arm the detection timeout for a fresh outage."""
        self._crashed_at[node] = time
        self._fenced.setdefault(node, {})
        self._pending[node] = self._sim.schedule(
            self._detector.detection_delay, self._detect, node
        )

    def node_recovered(self, node: int, time: float) -> None:
        """Apply fences, cancel pending detection, sweep for in-flight losses.

        Runs before the node's own participants (listeners precede
        participants), so stale ownership is fenced away before the
        reboot handler serves its token queues.  When the outage went
        *undetected* (the node beat its detection timeout), tokens
        granted to it while it was down were dropped in flight with no
        detection left to notice — a zero-delay follow-up sweep (after
        the reboot handlers have run) regenerates exactly the holderless
        ones.
        """
        pending = self._pending.pop(node, None)
        allocator = self._allocators[node]
        fences = self._fenced.pop(node, {})
        if fences and supports_recovery(allocator):
            for key in sorted(fences, key=repr):
                owner, epoch = fences[key]
                allocator.recovery_fence(key, owner=owner, epoch=epoch)
                self.fences_applied += 1
        if pending is not None:
            pending.cancel()
            self._sim.schedule(0.0, self._post_blip_sweep)

    # ------------------------------------------------------------------ #
    # detection + adjudication
    # ------------------------------------------------------------------ #
    def _capable(self) -> List[Tuple[int, object]]:
        return [
            (i, a) for i, a in enumerate(self._allocators) if supports_recovery(a)
        ]

    def _detect(self, node: int) -> None:
        """Detection timeout fired: the node is (still) down — adjudicate."""
        self._pending.pop(node, None)
        capable = self._capable()
        survivors = [
            a for i, a in capable if i != node and not self._lifecycle.is_down(i)
        ]
        if not survivors:
            # Nobody is up to adjudicate right now.  If another capable
            # node still has a reboot ahead, keep the detection armed —
            # a detection that fires once into a fully-down cluster and
            # gives up would leave this node's tokens lost forever even
            # after survivors return.  One retry is scheduled for a full
            # detection delay after the earliest such reboot (the
            # rebooted peer needs a heartbeat timeout of its own to
            # confirm this node is still dead), not polled every delay.
            # With no reboot ahead anywhere (all peers down permanently,
            # or no other capable node at all), retrying is pointless
            # and the timeout is dropped so the event queue can drain.
            reboots = [
                t
                for i, _ in capable
                if i != node
                for t in (self._lifecycle.next_reboot(i),)
                if t is not None
            ]
            if reboots:
                self._pending[node] = self._sim.schedule(
                    min(reboots) - self._sim.now + self._detector.detection_delay,
                    self._detect,
                    node,
                )
            return
        for allocator in survivors:
            allocator.recovery_purge(node)
        regenerated = self._adjudicate(dead=node, capable=capable, survivors=survivors)
        if regenerated:
            self.tokens_regenerated += regenerated
            # Per lost token, like _confirm_loss: crash-to-regeneration
            # latency accumulates once per rebuilt key, so the metric has
            # the same unit on both the immediate and the confirmed path.
            self.recovery_time += regenerated * (self._sim.now - self._crashed_at[node])

    def _post_blip_sweep(self) -> None:
        """Queue tokens dropped in flight during an undetected blip."""
        capable = self._capable()
        survivors = [a for i, a in capable if not self._lifecycle.is_down(i)]
        if not survivors:
            return
        self._adjudicate(dead=None, capable=capable, survivors=survivors)

    def _holder_map(self) -> Tuple[Dict[object, int], set]:
        """Current ``key -> holder`` map and key universe over capable nodes.

        A down node's claim to a key already fenced for it is *stale*:
        that key was regenerated away while the node was gone, and its
        local ownership only gets cleared by the fence at reboot.  Such
        claims are skipped here — otherwise a higher-id dead node would
        overwrite the true holder and, when the regenerator itself later
        crashes, adjudication would defer to a detection that has already
        fired, leaving the token lost forever.
        """
        holder_of: Dict[object, int] = {}
        universe = set()
        for i, allocator in self._capable():
            universe.update(allocator.recovery_token_keys())
            fenced = self._fenced.get(i, ())
            for key in allocator.recovery_held_tokens():
                if key in fenced:
                    continue  # regenerated elsewhere while i was down
                holder_of[key] = i
        return holder_of, universe

    def _adjudicate(
        self,
        dead: Optional[int],
        capable: List[Tuple[int, object]],
        survivors: List[object],
    ) -> int:
        """Classify every token: regenerate, confirm later, or repoint.

        ``dead`` is the freshly detected node, or ``None`` for a
        post-blip sweep.  Tokens held by ``dead`` are certainly lost and
        regenerate immediately; *holderless* tokens are only suspects —
        a sender disowns a token the instant it goes on the wire, so a
        transfer between two live survivors is holderless for one
        network latency — and are re-examined one detection delay later
        by :meth:`_confirm_loss` (a genuinely lost token is still
        holderless then; a live transfer has long landed).
        Alive-but-chained-through-``dead`` tokens get every survivor
        repointed at the real holder.  Returns the number of tokens
        regenerated *now* (confirmed losses count when they confirm).
        """
        holder_of, universe = self._holder_map()
        regenerated = 0
        for key in sorted(universe, key=repr):
            holder = holder_of.get(key)
            if holder is None:
                self._sim.schedule(
                    self._detector.detection_delay,
                    self._confirm_loss,
                    key,
                    dead,
                    self._crashed_at.get(dead) if dead is not None else None,
                )
                continue
            if holder != dead:
                if self._lifecycle.is_down(holder):
                    continue  # that node's own detection will handle it
                if dead is not None:
                    # Alive token: nobody must keep chasing it through the
                    # dead node.  Rebuild its waiting chain from the
                    # surviving requesters (requests that died inside the
                    # dead forwarder re-enter it) and repoint everyone —
                    # holder included — under the current epoch (nothing
                    # was regenerated).
                    epoch = self._epochs.get(key, 0)
                    requester_ids = tuple(
                        a.node_id for a in survivors if key in a.recovery_requires()
                    )
                    for allocator in survivors:
                        allocator.recovery_repoint(
                            key,
                            owner=holder,
                            crashed=dead,
                            epoch=epoch,
                            regenerated=False,
                            requesters=requester_ids,
                        )
                continue
            self._regenerate(key, dead=dead, survivors=survivors)
            regenerated += 1
        return regenerated

    def _confirm_loss(
        self, key: object, dead: Optional[int], crashed_at: Optional[float]
    ) -> None:
        """Confirmation round for a holderless token: still nobody? Rebuild.

        A token that was merely mid-flight at adjudication time has
        landed a full detection delay later and is left alone; one that
        is still holderless was dropped toward a down node and is
        regenerated at the lowest-id surviving requester, accounted like
        any other loss (with its originating crash when known).
        """
        holder_of, _ = self._holder_map()
        if key in holder_of:
            return  # the suspect landed: it was a live transfer
        survivors = [
            a for i, a in self._capable() if not self._lifecycle.is_down(i)
        ]
        if not survivors:
            return
        self._regenerate(key, dead=dead, survivors=survivors)
        self.tokens_regenerated += 1
        if crashed_at is not None:
            self.recovery_time += self._sim.now - crashed_at

    def _regenerate(self, key: object, dead: Optional[int], survivors: List[object]) -> None:
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        requesters = [a for a in survivors if key in a.recovery_requires()]
        target = requesters[0] if requesters else survivors[0]
        owner = target.node_id
        # Re-scrub the regeneration source for every node already
        # detected dead: the target's local state may have absorbed such
        # a node's queue entries *after* that node's own purge (e.g. from
        # a token that was in flight at purge time), and serving the
        # rebuilt token to a detected-dead node would drop it with no
        # detection left to notice.  Purges are idempotent, so repeating
        # them here is safe.
        for i in range(len(self._allocators)):
            if i != dead and self._lifecycle.is_down(i) and i not in self._pending:
                target.recovery_purge(i)
        # Every currently-down node must fence this key on reboot — to the
        # *latest* owner if it is regenerated again (double-crash of the
        # regenerator) before they come back.
        for fences in self._fenced.values():
            fences[key] = (owner, epoch)
        requester_ids = tuple(a.node_id for a in requesters)
        target.recovery_regenerate(
            key,
            crashed=dead,
            counter_slack=len(self._allocators),
            epoch=epoch,
            requesters=requester_ids,
        )
        for allocator in survivors:
            if allocator is not target:
                allocator.recovery_repoint(
                    key,
                    owner=owner,
                    crashed=dead,
                    epoch=epoch,
                    regenerated=True,
                    requesters=requester_ids,
                )
