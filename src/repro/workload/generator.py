"""Request stream generation.

Each process runs a closed loop: think for an exponentially distributed
time with mean ``beta``, then request ``x`` resources where ``x`` is drawn
uniformly from ``{1, ..., phi}``, hold them for a critical section whose
duration grows with ``x``, release, repeat (Section 5.1 of the paper).

The generator produces :class:`RequestSpec` objects; the driver in
:mod:`repro.experiments.driver` turns them into protocol calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional

from repro.sim.rng import RandomStreams
from repro.workload.params import WorkloadParams, cs_duration_for_size


@dataclass(frozen=True)
class RequestSpec:
    """One critical-section request produced by the workload.

    Attributes
    ----------
    process:
        Id of the issuing process.
    index:
        Sequence number of the request at that process (0-based).
    resources:
        Identifiers of the requested resources (non-empty, distinct).
    cs_duration:
        Time the process will spend in critical section once granted.
    think_time:
        Idle time the process waits *before* issuing this request.
    """

    process: int
    index: int
    resources: FrozenSet[int]
    cs_duration: float
    think_time: float

    @property
    def size(self) -> int:
        """Number of resources requested."""
        return len(self.resources)

    def __post_init__(self) -> None:
        if not self.resources:
            raise ValueError("a request must ask for at least one resource")
        if self.cs_duration <= 0:
            raise ValueError("cs_duration must be positive")
        if self.think_time < 0:
            raise ValueError("think_time must be non-negative")


def draw_request_shape(
    params: WorkloadParams,
    size_rng,
    pick_rng,
    cs_rng,
) -> tuple:
    """Draw one request's (resources, cs_duration) pair (Section 5.1).

    Size uniform in ``{1..phi}``, resources sampled without replacement,
    CS duration interpolated by size with multiplicative noise.  The draw
    order (size, pick, noise) is part of the reproducibility contract:
    the closed-loop stream and every open-loop stream share this exact
    sequence per request, so the request *shape* distribution is held
    fixed while the arrival process varies.
    """
    size = size_rng.randint(1, params.phi)
    resources = frozenset(pick_rng.sample(range(params.num_resources), size))
    mean_cs = cs_duration_for_size(
        size, params.num_resources, params.alpha_min, params.alpha_max
    )
    if params.cs_noise > 0:
        factor = cs_rng.uniform(1.0 - params.cs_noise, 1.0 + params.cs_noise)
    else:
        factor = 1.0
    return resources, max(mean_cs * factor, 1e-6)


class WorkloadStream:
    """Infinite iterator of :class:`RequestSpec` for a single process."""

    def __init__(self, params: WorkloadParams, process: int, streams: RandomStreams) -> None:
        self.params = params
        self.process = process
        self._size_rng = streams.stream("size", process)
        self._pick_rng = streams.stream("pick", process)
        self._think_rng = streams.stream("think", process)
        self._cs_rng = streams.stream("cs", process)
        self._index = 0

    def __iter__(self) -> Iterator[RequestSpec]:
        return self

    def __next__(self) -> RequestSpec:
        return self.next_request()

    def next_request(self) -> RequestSpec:
        """Draw the next request for this process."""
        p = self.params
        resources, cs_duration = draw_request_shape(
            p, self._size_rng, self._pick_rng, self._cs_rng
        )
        # First request of a process starts after a short staggered delay so
        # all N processes do not fire at exactly t=0; subsequent requests use
        # the exponential think time with mean beta.
        if self._index == 0:
            think = self._think_rng.uniform(0.0, min(p.beta, p.alpha_max))
        else:
            think = self._think_rng.expovariate(1.0 / p.beta) if p.beta > 0 else 0.0
        spec = RequestSpec(
            process=self.process,
            index=self._index,
            resources=resources,
            cs_duration=cs_duration,
            think_time=think,
        )
        self._index += 1
        return spec


class WorkloadGenerator:
    """Factory of per-process :class:`WorkloadStream` objects.

    All streams derive from the master seed in ``params.seed`` so that the
    workload is identical across algorithms being compared — the same
    request sequences are replayed against every protocol, exactly as the
    paper compares algorithms under a common workload.
    """

    def __init__(self, params: WorkloadParams) -> None:
        self.params = params
        self._streams = RandomStreams(params.seed)

    def stream_for(self, process: int) -> WorkloadStream:
        """Return the request stream of one process."""
        if not 0 <= process < self.params.num_processes:
            raise ValueError(f"process id {process} out of range")
        return WorkloadStream(self.params, process, self._streams)

    def all_streams(self) -> List[WorkloadStream]:
        """Return one stream per process, in process-id order."""
        return [self.stream_for(p) for p in range(self.params.num_processes)]

    def preview(self, process: int, count: int) -> List[RequestSpec]:
        """Materialise the first ``count`` requests of a process (testing aid)."""
        stream = self.stream_for(process)
        return [stream.next_request() for _ in range(count)]


def fixed_requests(
    process: int,
    resource_sets: List[FrozenSet[int]],
    cs_duration: float = 10.0,
    think_time: float = 1.0,
) -> List[RequestSpec]:
    """Build a deterministic scripted request list (used by examples/tests)."""
    specs: List[RequestSpec] = []
    for index, resources in enumerate(resource_sets):
        specs.append(
            RequestSpec(
                process=process,
                index=index,
                resources=frozenset(resources),
                cs_duration=cs_duration,
                think_time=think_time if index > 0 else 0.0,
            )
        )
    return specs
