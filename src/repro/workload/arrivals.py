"""Declarative arrival processes for open-loop workloads.

A closed-loop workload (:class:`~repro.workload.spec.SyntheticSpec`)
derives its timing from the think-time loop; an *open-loop* workload
instead issues requests at externally driven instants, whether or not
earlier requests have completed.  Each :class:`ArrivalSpec` below is the
frozen, picklable description of one such arrival process; it thaws into
an infinite inter-arrival-gap generator via :meth:`ArrivalSpec.gaps`
inside the process running the experiment (exactly the
:class:`~repro.sim.latencyspec.LatencySpec` thaw idiom).

All specs are *rate-normalised*: ``rate`` is the per-process mean arrival
rate in requests per simulated millisecond, and every family draws gaps
with mean ``1/rate`` — so swapping Poisson for Pareto changes the shape
(variance, tail, burst structure) of the load while holding its mean
offered rate fixed, which is what makes the heavy-tail/burstiness
ablations an apples-to-apples comparison.  ``rate=None`` resolves to
``1 / params.beta`` at build time: the mean think rate of the equivalent
closed loop.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from random import Random
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.params import WorkloadParams

__all__ = [
    "ArrivalSpec",
    "PoissonArrivals",
    "ParetoArrivals",
    "LognormalArrivals",
    "MarkovModulatedArrivals",
    "DiurnalArrivals",
]


class ArrivalSpec(ABC):
    """Frozen description of a per-process arrival process."""

    #: Per-process mean arrival rate (requests / ms); ``None`` resolves to
    #: ``1 / params.beta`` at build time.
    rate: Optional[float]

    def mean_rate(self, params: "WorkloadParams") -> float:
        """Effective per-process mean rate (requests / ms) under ``params``."""
        if self.rate is not None:
            return self.rate
        beta = params.beta
        if beta <= 0:
            raise ValueError(
                "rate=None needs params.beta > 0 to derive a default arrival rate"
            )
        return 1.0 / beta

    @abstractmethod
    def gaps(self, rng: Random, params: "WorkloadParams") -> Iterator[float]:
        """Infinite stream of inter-arrival gaps (ms) drawn from ``rng``.

        The first gap is the absolute arrival time of the process's first
        request; every later gap is relative to the *previous arrival*
        (not the previous completion — that is the open-loop property).
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return repr(self)

    def _check_rate(self) -> None:
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive (or None for 1/beta)")


@dataclass(frozen=True)
class PoissonArrivals(ArrivalSpec):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    rate: Optional[float] = None

    def __post_init__(self) -> None:
        self._check_rate()

    def gaps(self, rng: Random, params: "WorkloadParams") -> Iterator[float]:
        """Exponential inter-arrival gaps."""
        rate = self.mean_rate(params)
        while True:
            yield rng.expovariate(rate)


@dataclass(frozen=True)
class ParetoArrivals(ArrivalSpec):
    """Heavy-tailed gaps: Pareto with tail index ``shape``, mean ``1/rate``.

    ``shape`` must exceed 1 for the mean to exist; values just above 2
    give wild (infinite-variance-like) burst gaps, larger values approach
    exponential-looking traffic.  The scale is chosen so the mean gap is
    exactly ``1/rate``.
    """

    rate: Optional[float] = None
    shape: float = 2.5

    def __post_init__(self) -> None:
        self._check_rate()
        if self.shape <= 1.0:
            raise ValueError("shape must be > 1 (the mean gap diverges otherwise)")

    def gaps(self, rng: Random, params: "WorkloadParams") -> Iterator[float]:
        """Pareto inter-arrival gaps with the configured tail index."""
        mean_gap = 1.0 / self.mean_rate(params)
        scale = mean_gap * (self.shape - 1.0) / self.shape
        while True:
            yield scale * rng.paretovariate(self.shape)


@dataclass(frozen=True)
class LognormalArrivals(ArrivalSpec):
    """Log-normal gaps with shape ``sigma`` and mean ``1/rate``.

    A moderate heavy tail (all moments finite): ``sigma`` around 1 gives
    the skewed session-like gaps observed in service traces, ``sigma``
    near 0 degenerates to near-deterministic arrivals.
    """

    rate: Optional[float] = None
    sigma: float = 1.0

    def __post_init__(self) -> None:
        self._check_rate()
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def gaps(self, rng: Random, params: "WorkloadParams") -> Iterator[float]:
        """Log-normal inter-arrival gaps."""
        mean_gap = 1.0 / self.mean_rate(params)
        mu = math.log(mean_gap) - 0.5 * self.sigma * self.sigma
        while True:
            yield rng.lognormvariate(mu, self.sigma)


@dataclass(frozen=True)
class MarkovModulatedArrivals(ArrivalSpec):
    """Two-state MMPP: Poisson arrivals whose rate jumps between burst and calm.

    The process alternates between a *burst* state (rate multiplied by
    ``burst_factor``) and a *calm* state, with exponentially distributed
    dwell times; ``burst_fraction`` is the long-run fraction of time spent
    bursting and ``dwell`` the mean burst length in ms.  Rates are chosen
    so the long-run mean rate is exactly ``rate`` — burstiness without a
    change in offered load.
    """

    rate: Optional[float] = None
    burst_factor: float = 8.0
    burst_fraction: float = 0.1
    dwell: float = 200.0

    def __post_init__(self) -> None:
        self._check_rate()
        if self.burst_factor <= 1.0:
            raise ValueError("burst_factor must be > 1 (1 is plain Poisson)")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must lie in (0, 1)")
        if self.dwell <= 0:
            raise ValueError("dwell must be positive")

    def gaps(self, rng: Random, params: "WorkloadParams") -> Iterator[float]:
        """Exponential gaps modulated by a two-state Markov chain.

        Crossing a state boundary exploits memorylessness: the residual
        wait is redrawn at the new state's rate, which is distributionally
        exact for an MMPP.
        """
        mean = self.mean_rate(params)
        f = self.burst_fraction
        calm_rate = mean / (1.0 + f * (self.burst_factor - 1.0))
        burst_rate = self.burst_factor * calm_rate
        dwell_burst = self.dwell
        dwell_calm = self.dwell * (1.0 - f) / f
        in_burst = rng.random() < f
        remaining = rng.expovariate(1.0 / (dwell_burst if in_burst else dwell_calm))
        while True:
            gap = 0.0
            while True:
                draw = rng.expovariate(burst_rate if in_burst else calm_rate)
                if draw <= remaining:
                    remaining -= draw
                    gap += draw
                    break
                gap += remaining
                in_burst = not in_burst
                remaining = rng.expovariate(
                    1.0 / (dwell_burst if in_burst else dwell_calm)
                )
            yield gap


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalSpec):
    """Poisson arrivals under a sinusoidal rate envelope (day/night cycle).

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t/period))``
    — mean ``rate`` over a full period.  Gaps are drawn by Lewis-Shedler
    thinning against the envelope peak, so the non-homogeneous process is
    exact, not an approximation.
    """

    rate: Optional[float] = None
    amplitude: float = 0.5
    period: float = 5_000.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        self._check_rate()
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must lie in [0, 1) (the rate must stay positive)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def gaps(self, rng: Random, params: "WorkloadParams") -> Iterator[float]:
        """Thinned non-homogeneous Poisson gaps under the sinusoid."""
        mean = self.mean_rate(params)
        peak = mean * (1.0 + self.amplitude)
        omega = 2.0 * math.pi / self.period
        t = 0.0
        last = 0.0
        while True:
            t += rng.expovariate(peak)
            lam = mean * (1.0 + self.amplitude * math.sin(omega * (t + self.phase)))
            if rng.random() * peak <= lam:
                yield t - last
                last = t
