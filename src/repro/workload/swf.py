"""Lazy parser for SWF (Standard Workload Format) job traces.

The Parallel Workloads Archive distributes cluster traces as SWF: one
job per line, 18 whitespace-separated integer/float fields, with header
and comment lines starting with ``;``.  Only a handful of fields matter
for replaying a trace as a mutual-exclusion workload — submit time,
runtime and requested processor count — but :class:`SWFJob` carries the
full standard record so other consumers need no second parser (the
accasim ``workload_parser`` idiom cited in ROADMAP.md).

Parsing is **lazy**: :func:`read_swf` and :func:`parse_swf` are
generators holding one line in memory at a time, so a multi-million-job
trace streams through :class:`~repro.workload.spec.TraceReplaySpec`
without ever materialising a job list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator, Optional

__all__ = ["SWFJob", "SWF_FIELDS", "parse_swf", "read_swf", "count_swf_jobs"]

#: The 18 standard SWF fields, in file order (Feitelson's definition).
SWF_FIELDS = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "allocated_procs",
    "avg_cpu_time",
    "used_memory",
    "requested_procs",
    "requested_time",
    "requested_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time",
)


@dataclass(frozen=True)
class SWFJob:
    """One SWF trace record.  Unknown values carry the SWF sentinel ``-1``.

    Integer identity fields stay ``int``; measured quantities
    (``submit_time``, ``wait_time``, ``run_time``, ``avg_cpu_time``,
    ``requested_time``) are ``float`` — some archives log fractional
    seconds.
    """

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    allocated_procs: int
    avg_cpu_time: float
    used_memory: int
    requested_procs: int
    requested_time: float
    requested_memory: int
    status: int
    user_id: int
    group_id: int
    executable: int
    queue: int
    partition: int
    preceding_job: int
    think_time: float

    @property
    def procs(self) -> int:
        """Best available processor count: requested, falling back to allocated."""
        if self.requested_procs > 0:
            return self.requested_procs
        return max(self.allocated_procs, 1)


_FLOAT_FIELDS = frozenset(
    ("submit_time", "wait_time", "run_time", "avg_cpu_time", "requested_time", "think_time")
)


def _parse_line(line: str, lineno: int) -> Optional[SWFJob]:
    """Parse one SWF line; ``None`` for comments/blank lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith(";"):
        return None
    fields = stripped.split()
    if len(fields) < len(SWF_FIELDS):
        # Tolerate truncated records (some archive exports drop the
        # trailing dependency fields): pad with the SWF unknown sentinel.
        fields = fields + ["-1"] * (len(SWF_FIELDS) - len(fields))
    values = {}
    for name, token in zip(SWF_FIELDS, fields):
        try:
            values[name] = float(token) if name in _FLOAT_FIELDS else int(float(token))
        except ValueError:
            raise ValueError(
                f"SWF line {lineno}: field {name!r} is not numeric: {token!r}"
            ) from None
    return SWFJob(**values)


def parse_swf(lines: Iterable[str]) -> Iterator[SWFJob]:
    """Lazily parse an iterable of SWF lines into :class:`SWFJob` records.

    Comment (``;``) and blank lines are skipped; malformed numeric fields
    raise ``ValueError`` naming the line.  The generator never holds more
    than one record.
    """
    for lineno, line in enumerate(lines, start=1):
        job = _parse_line(line, lineno)
        if job is not None:
            yield job


def read_swf(path: str) -> Iterator[SWFJob]:
    """Lazily stream the jobs of the SWF file at ``path``.

    The file handle is held open for the lifetime of the generator and
    closed when it is exhausted or garbage-collected.
    """
    fh: IO[str]
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        yield from parse_swf(fh)


def count_swf_jobs(path: str) -> int:
    """Number of job records in the trace (one cheap streaming pass)."""
    return sum(1 for _ in read_swf(path))
