"""Declarative workload specifications.

Workload generation was the last experiment dimension still baked into a
single hard-coded generator: latency, faults and detectors all have
frozen, picklable, content-hashable spec axes thawed per-run
(:mod:`repro.sim.latencyspec` is the template).  A :class:`WorkloadSpec`
closes that gap — it is the declarative description of *how requests
arrive*, carried by :class:`~repro.experiments.scenario.Scenario` as the
``workload`` axis and thawed into per-process request streams inside
whatever process runs the experiment:

* :class:`SyntheticSpec` — the paper's Section-5.1 closed loop, exactly
  as :class:`~repro.workload.generator.WorkloadGenerator` produces it.
  Scenarios built from bare :class:`~repro.workload.params.WorkloadParams`
  normalise to this spec, and its canonical form is neutral, so existing
  cache keys and figure series are unchanged.
* :class:`OpenLoopSpec` — requests arrive at instants drawn from a
  pluggable :class:`~repro.workload.arrivals.ArrivalSpec` (Poisson,
  heavy-tailed, bursty, diurnal), independent of completions.
* :class:`TraceReplaySpec` — replays an SWF job trace
  (:mod:`repro.workload.swf`), streamed lazily; the SHA-256 of the trace
  file's contents is folded into the scenario key via
  :meth:`TraceReplaySpec.__canonical__`, so the run cache can never serve
  a result computed from a stale or edited trace.

Thawed workloads expose per-process **iterators** of
:class:`~repro.workload.generator.RequestSpec`; nothing ever materialises
a request list, which is what lets a multi-million-request trace or
open-loop run stream through the simulator in O(1) workload memory.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

from repro.sim.rng import RandomStreams
from repro.workload.arrivals import ArrivalSpec, PoissonArrivals
from repro.workload.generator import (
    RequestSpec,
    WorkloadGenerator,
    draw_request_shape,
)
from repro.workload.params import cs_duration_for_size
from repro.workload.swf import count_swf_jobs, read_swf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.params import WorkloadParams

__all__ = [
    "Workload",
    "WorkloadSpec",
    "SyntheticSpec",
    "OpenLoopSpec",
    "TraceReplaySpec",
]


# --------------------------------------------------------------------- #
# thawed side: live per-run workloads
# --------------------------------------------------------------------- #
class Workload(ABC):
    """Live (thawed) workload: a factory of per-process request streams.

    ``closed_loop`` selects the driving client in the runner: ``True``
    pairs the streams with
    :class:`~repro.experiments.driver.ClosedLoopClient` (the next request
    waits for the previous completion), ``False`` with
    :class:`~repro.experiments.driver.OpenLoopClient` (arrivals are
    external; ``RequestSpec.think_time`` is the inter-arrival gap).
    """

    closed_loop: bool = True

    @abstractmethod
    def stream_for(self, process: int) -> Iterator[RequestSpec]:
        """Lazy request stream of one process (never a materialised list)."""

    def expected_requests(self) -> Optional[int]:
        """Approximate total request count across all processes.

        Used to derive the event-count safety valve for workloads whose
        volume is not captured by the closed-loop think-time formula;
        ``None`` falls back to
        :func:`repro.experiments.runner.default_max_events`.
        """
        return None


class SyntheticWorkload(Workload):
    """Thawed :class:`SyntheticSpec`: the Section-5.1 closed-loop streams."""

    closed_loop = True

    def __init__(self, params: "WorkloadParams") -> None:
        self.params = params
        self._generator = WorkloadGenerator(params)

    def stream_for(self, process: int) -> Iterator[RequestSpec]:
        """The exact stream :class:`WorkloadGenerator` produces (bit-identical)."""
        return self._generator.stream_for(process)


class OpenLoopWorkload(Workload):
    """Thawed :class:`OpenLoopSpec`: externally timed request streams.

    Request *shapes* (size, resource pick, CS duration) reuse the
    synthetic distribution and draw order of
    :func:`~repro.workload.generator.draw_request_shape` on dedicated
    RNG streams, so two open-loop specs differing only in their arrival
    process issue identically shaped requests at different instants.
    """

    closed_loop = False

    def __init__(self, spec: "OpenLoopSpec", params: "WorkloadParams") -> None:
        self.spec = spec
        self.params = params
        self._streams = RandomStreams(params.seed)

    def stream_for(self, process: int) -> Iterator[RequestSpec]:
        """Lazy open-loop stream: gaps from the arrival spec, synthetic shapes."""
        params = self.params
        if not 0 <= process < params.num_processes:
            raise ValueError(f"process id {process} out of range")
        size_rng = self._streams.stream("ol-size", process)
        pick_rng = self._streams.stream("ol-pick", process)
        cs_rng = self._streams.stream("ol-cs", process)
        arrival_rng = self._streams.stream("ol-arrival", process)
        gaps = self.spec.arrival.gaps(arrival_rng, params)
        for index, gap in enumerate(gaps):
            resources, cs_duration = draw_request_shape(params, size_rng, pick_rng, cs_rng)
            yield RequestSpec(
                process=process,
                index=index,
                resources=resources,
                cs_duration=cs_duration,
                think_time=gap,
            )

    def expected_requests(self) -> Optional[int]:
        """Mean offered volume: ``N * duration * rate`` (capped by the per-process limit)."""
        params = self.params
        per_process = params.duration * self.spec.arrival.mean_rate(params)
        if params.requests_per_process is not None:
            per_process = min(per_process, params.requests_per_process)
        return max(1, math.ceil(per_process * params.num_processes))


class TraceWorkload(Workload):
    """Thawed :class:`TraceReplaySpec`: lazy SWF replay.

    Jobs are dealt round-robin over the ``N`` processes in trace order;
    each per-process stream makes its own lazy pass over the file (``N``
    cheap sequential scans instead of an unbounded cross-process reorder
    buffer), re-basing submit times so the trace starts at t=0.  Job
    size maps to ``min(phi, bit_length(procs))`` — a log2 compression of
    the requested processor count into the paper's request-size range —
    and the CS duration is the job's scaled runtime (falling back to the
    synthetic size-dependent duration when the trace lacks one).
    """

    closed_loop = False

    def __init__(self, spec: "TraceReplaySpec", params: "WorkloadParams") -> None:
        self.spec = spec
        self.params = params
        self._streams = RandomStreams(params.seed)

    def _jobs(self):
        jobs = read_swf(self.spec.path)
        if self.spec.max_jobs is not None:
            jobs = itertools.islice(jobs, self.spec.max_jobs)
        return jobs

    def stream_for(self, process: int) -> Iterator[RequestSpec]:
        """Lazy stream of this process's round-robin share of the trace."""
        params = self.params
        if not 0 <= process < params.num_processes:
            raise ValueError(f"process id {process} out of range")
        pick_rng = self._streams.stream("trace-pick", process)
        scale = self.spec.time_scale
        base: Optional[float] = None
        last_arrival: Optional[float] = None
        index = 0
        for n, job in enumerate(self._jobs()):
            if base is None:
                base = max(job.submit_time, 0.0)
            if n % params.num_processes != process:
                continue
            arrival = max(max(job.submit_time, 0.0) - base, 0.0) * scale
            if last_arrival is None:
                gap = arrival
            else:
                gap = max(arrival - last_arrival, 0.0)
                arrival = max(arrival, last_arrival)
            last_arrival = arrival
            size = min(params.phi, max(1, job.procs.bit_length()))
            resources = frozenset(pick_rng.sample(range(params.num_resources), size))
            if job.run_time > 0:
                cs_duration = max(job.run_time * scale, 1e-6)
            else:
                cs_duration = cs_duration_for_size(
                    size, params.num_resources, params.alpha_min, params.alpha_max
                )
            yield RequestSpec(
                process=process,
                index=index,
                resources=resources,
                cs_duration=cs_duration,
                think_time=gap,
            )
            index += 1

    def expected_requests(self) -> Optional[int]:
        """Job count of the trace (one streaming pass, capped by ``max_jobs``)."""
        count = count_swf_jobs(self.spec.path)
        if self.spec.max_jobs is not None:
            count = min(count, self.spec.max_jobs)
        params = self.params
        if params.requests_per_process is not None:
            count = min(count, params.requests_per_process * params.num_processes)
        return max(1, count)


# --------------------------------------------------------------------- #
# frozen side: declarative specs
# --------------------------------------------------------------------- #
class WorkloadSpec(ABC):
    """Frozen description of a workload, thawed per-run via :meth:`build`."""

    @abstractmethod
    def build(self, params: "WorkloadParams") -> Workload:
        """Instantiate the live workload for ``params``."""

    def normalized(self, params: "WorkloadParams") -> "WorkloadSpec":
        """Normal form under ``params`` (default: the spec itself).

        Scenario normalisation calls this hook so specs can fail fast on
        parameterisations they cannot drive and collapse equivalent
        spellings onto one cache key.
        """
        return self

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return repr(self)


@dataclass(frozen=True)
class SyntheticSpec(WorkloadSpec):
    """The paper's Section-5.1 closed-loop workload (the default).

    Carries no fields of its own: everything (N, phi, load, seed, ...)
    comes from the scenario's :class:`WorkloadParams`.  Its canonical
    form is neutral in :meth:`Scenario.key`, so a scenario written before
    the workload axis existed hashes to the same key as one spelling
    ``workload=SyntheticSpec()`` explicitly.
    """

    def build(self, params: "WorkloadParams") -> SyntheticWorkload:
        """Thaw into the closed-loop generator streams."""
        return SyntheticWorkload(params)

    def describe(self) -> str:
        """Canonical label of the closed-loop workload."""
        return "workload=synthetic"


@dataclass(frozen=True)
class OpenLoopSpec(WorkloadSpec):
    """Open-loop workload: arrivals from a pluggable arrival process.

    Unlike the closed loop, a slow protocol does not throttle its own
    offered load — arrivals keep coming and queue at the client, so
    waiting times reflect the *backlog* a real service would build up.
    ``arrival`` defaults to rate-matched Poisson
    (:class:`~repro.workload.arrivals.PoissonArrivals` at ``1/beta``).
    """

    arrival: ArrivalSpec = PoissonArrivals()

    def __post_init__(self) -> None:
        if not isinstance(self.arrival, ArrivalSpec):
            raise TypeError(
                f"arrival must be an ArrivalSpec (got {type(self.arrival).__name__}); "
                f"use e.g. PoissonArrivals / ParetoArrivals / MarkovModulatedArrivals"
            )

    def build(self, params: "WorkloadParams") -> OpenLoopWorkload:
        """Thaw into per-process open-loop streams (validates the rate)."""
        self.arrival.mean_rate(params)  # fail fast on underivable rates
        return OpenLoopWorkload(self, params)

    def describe(self) -> str:
        """Label naming the arrival family."""
        return f"workload=open-loop({self.arrival.describe()})"


#: Cache of trace-file digests keyed by (abspath, mtime_ns, size): key
#: computations are frequent (every sweep expansion hashes each
#: scenario), file reads are not.
_TRACE_HASHES: Dict[Tuple[str, int, int], str] = {}


def _file_sha256(path: str) -> str:
    """SHA-256 of the file's bytes (cached by path + mtime + size)."""
    st = os.stat(path)
    cache_key = (os.path.abspath(path), st.st_mtime_ns, st.st_size)
    digest = _TRACE_HASHES.get(cache_key)
    if digest is None:
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                h.update(block)
        digest = _TRACE_HASHES[cache_key] = h.hexdigest()
    return digest


@dataclass(frozen=True)
class TraceReplaySpec(WorkloadSpec):
    """Replay an SWF-format job trace as the workload.

    Parameters
    ----------
    path:
        SWF trace file (see :mod:`repro.workload.swf`).  The *contents*
        of the file — not the path — enter the scenario key, so moving a
        trace keeps its cache entries and editing it invalidates them.
    time_scale:
        Multiplier applied to submit times and runtimes (traces log
        seconds; the simulator thinks in milliseconds of simulated time,
        so small scales compress a long trace into a short run).
    max_jobs:
        Optional cap on the number of jobs replayed.
    """

    path: str
    time_scale: float = 1.0
    max_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must name an SWF trace file")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.max_jobs is not None and self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1 (or None for the whole trace)")

    def trace_sha256(self) -> str:
        """Content digest of the trace file (raises if the file is missing)."""
        return _file_sha256(self.path)

    def __canonical__(self):
        """Canonical form folding the trace *contents* into the key.

        Two specs pointing at byte-identical traces share a key whatever
        their paths; a modified trace changes the key, so the run cache
        can never serve a result computed from a stale file.  Raises
        ``FileNotFoundError`` at key time when the trace is absent —
        before any worker is spawned.
        """
        return (
            "TraceReplaySpec",
            (
                ("max_jobs", self.max_jobs),
                ("time_scale", self.time_scale),
                ("trace_sha256", self.trace_sha256()),
            ),
        )

    def build(self, params: "WorkloadParams") -> TraceWorkload:
        """Thaw into lazy per-process replay streams (checks the file exists)."""
        if not os.path.exists(self.path):
            raise FileNotFoundError(f"SWF trace not found: {self.path}")
        return TraceWorkload(self, params)

    def describe(self) -> str:
        """Label naming the trace file and scale."""
        extras = f", scale={self.time_scale:g}"
        if self.max_jobs is not None:
            extras += f", max_jobs={self.max_jobs}"
        return f"workload=trace({os.path.basename(self.path)}{extras})"
