"""Experiment parameters.

The paper characterises an experiment by (Section 5.1):

* ``N``     — number of processes (32),
* ``M``     — number of resources (80),
* ``alpha`` — critical-section duration (5 ms to 35 ms, growing with the
              number of resources in the request),
* ``beta``  — mean think time between releasing a CS and issuing the next
              request,
* ``gamma`` — one-way network latency (~0.6 ms),
* ``rho``   — ``beta / (alpha + gamma)``, inversely proportional to load,
* ``phi``   — maximum number of resources a single request may ask for.

All times in this library are expressed in *milliseconds* of simulated
time, matching the paper's units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from functools import cached_property
from typing import Dict, Optional


class LoadLevel(str, Enum):
    """Named load scenarios used throughout the paper's evaluation.

    ``rho`` is inversely proportional to the load: the *high* load scenario
    uses a small think time relative to the CS duration, the *medium* one a
    larger think time.  The exact cluster values are not published, so the
    defaults below were chosen to land in the qualitative regimes the paper
    describes (high load keeps nearly all processes requesting; medium load
    leaves processes idle a significant fraction of the time).
    """

    MEDIUM = "medium"
    HIGH = "high"
    LOW = "low"

    @property
    def default_rho(self) -> float:
        """Default ``rho = beta / (alpha + gamma)`` for this level."""
        return {LoadLevel.HIGH: 0.5, LoadLevel.MEDIUM: 4.0, LoadLevel.LOW: 12.0}[self]


def cs_duration_for_size(
    size: int,
    num_resources: int,
    alpha_min: float = 5.0,
    alpha_max: float = 35.0,
) -> float:
    """Deterministic component of the CS duration for a request of ``size``.

    Section 5.1: "the critical section time of the request depends on the
    value of x: the greater its value, the higher the probability of a long
    critical section time".  We model the mean CS duration as a linear
    interpolation between ``alpha_min`` (single resource) and ``alpha_max``
    (all ``M`` resources); the workload generator adds multiplicative noise
    around this mean.
    """
    if size < 1:
        raise ValueError("request size must be >= 1")
    if num_resources < 1:
        raise ValueError("num_resources must be >= 1")
    if num_resources == 1:
        return float(alpha_max)
    frac = (min(size, num_resources) - 1) / (num_resources - 1)
    return alpha_min + (alpha_max - alpha_min) * frac


class _FrozenExtra(dict):
    """Read-only ``dict`` used for :attr:`WorkloadParams.extra`.

    ``WorkloadParams`` is a frozen, content-hashed value: a mutable
    ``extra`` dict would let callers change a scenario *after* its cache
    key was computed, silently serving stale cached results.  Freezing at
    construction makes that a loud ``TypeError`` instead.  Still a real
    ``dict`` subclass, so canonicalisation, equality and pickling are
    unchanged.
    """

    def _frozen(self, *args: object, **kwargs: object) -> None:
        raise TypeError(
            "WorkloadParams.extra is frozen; build a new WorkloadParams "
            "(dataclasses.replace) instead of mutating it in place"
        )

    __setitem__ = _frozen
    __delitem__ = _frozen
    __ior__ = _frozen
    clear = _frozen
    pop = _frozen
    popitem = _frozen
    setdefault = _frozen
    update = _frozen

    def __reduce__(self):
        return (_FrozenExtra, (dict(self),))


@dataclass(frozen=True)
class WorkloadParams:
    """Full parameterisation of one experiment run.

    Attributes mirror the paper's notation; see the module docstring.

    ``requests_per_process`` bounds the closed-loop workload: each process
    issues at most that many CS requests (the simulation also stops issuing
    new requests after ``duration`` simulated milliseconds, whichever comes
    first).  ``warmup`` cuts the initial transient out of the metrics.
    """

    num_processes: int = 32
    num_resources: int = 80
    phi: int = 4
    alpha_min: float = 5.0
    alpha_max: float = 35.0
    gamma: float = 0.6
    load: LoadLevel = LoadLevel.MEDIUM
    rho: Optional[float] = None
    duration: float = 20_000.0
    warmup: float = 1_000.0
    requests_per_process: Optional[int] = None
    cs_noise: float = 0.2
    seed: int = 1
    loan_threshold: int = 1
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        if self.num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        if not 1 <= self.phi <= self.num_resources:
            raise ValueError("phi must lie in [1, num_resources]")
        if self.alpha_min <= 0 or self.alpha_max < self.alpha_min:
            raise ValueError("require 0 < alpha_min <= alpha_max")
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must lie in [0, duration)")
        if not 0 <= self.cs_noise < 1:
            raise ValueError("cs_noise must lie in [0, 1)")
        if self.loan_threshold < 0:
            raise ValueError("loan_threshold must be >= 0")
        if self.rho is not None and self.rho < 0:
            raise ValueError("rho must be non-negative (it is beta / (alpha + gamma))")
        if self.requests_per_process is not None and self.requests_per_process < 1:
            raise ValueError("requests_per_process must be >= 1 (or None for unbounded)")
        if not isinstance(self.extra, _FrozenExtra):
            object.__setattr__(self, "extra", _FrozenExtra(self.extra))

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @cached_property
    def mean_alpha(self) -> float:
        """Mean CS duration over the request-size distribution U(1, phi).

        Cached: the generator draws ``beta`` (and through it this sum) on
        every request, and all fields feeding it are frozen.  The cache
        lives in the instance ``__dict__``, invisible to the field-based
        ``__eq__``/``__hash__``/``replace`` of the dataclass.
        """
        return sum(
            cs_duration_for_size(s, self.num_resources, self.alpha_min, self.alpha_max)
            for s in range(1, self.phi + 1)
        ) / self.phi

    @property
    def effective_rho(self) -> float:
        """``rho`` actually used (explicit value, or the load level's default)."""
        return self.rho if self.rho is not None else self.load.default_rho

    @cached_property
    def beta(self) -> float:
        """Mean think time derived from ``rho = beta / (alpha + gamma)``."""
        return self.effective_rho * (self.mean_alpha + self.gamma)

    def with_phi(self, phi: int) -> "WorkloadParams":
        """Return a copy with a different maximum request size."""
        return replace(self, phi=phi)

    def with_load(self, load: LoadLevel) -> "WorkloadParams":
        """Return a copy with a different load level (rho reset to default)."""
        return replace(self, load=load, rho=None)

    def with_seed(self, seed: int) -> "WorkloadParams":
        """Return a copy with a different master seed."""
        return replace(self, seed=seed)

    def scaled(self, processes: int, resources: int, duration: float) -> "WorkloadParams":
        """Return a scaled-down copy (used by the fast benchmark suite)."""
        return replace(
            self,
            num_processes=processes,
            num_resources=resources,
            phi=min(self.phi, resources),
            duration=duration,
            warmup=min(self.warmup, duration / 10.0),
        )

    def describe(self) -> str:
        """One-line summary used in reports.

        Includes every knob that distinguishes runs in practice — in
        particular ``loan_threshold`` and ``requests_per_process``, so two
        report lines differing only in those are not conflated.
        """
        requests = self.requests_per_process if self.requests_per_process is not None else "all"
        return (
            f"N={self.num_processes} M={self.num_resources} phi={self.phi} "
            f"load={self.load.value} rho={self.effective_rho:g} "
            f"alpha=[{self.alpha_min},{self.alpha_max}]ms gamma={self.gamma}ms "
            f"duration={self.duration:g}ms loan_threshold={self.loan_threshold} "
            f"requests={requests} seed={self.seed}"
        )
