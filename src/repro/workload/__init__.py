"""Workload generation.

Reproduces the experimental configuration of Section 5.1 of the paper: a
closed system of ``N`` processes sharing ``M`` resources where each process
alternates between *thinking* (mean duration ``beta``), *requesting* a
random subset of at most ``phi`` resources and *using* them for a critical
section whose duration grows with the request size (``alpha`` between 5 ms
and 35 ms in the paper).  The load parameter ``rho = beta / (alpha + gamma)``
is inversely proportional to the request load.
"""

from repro.workload.params import LoadLevel, WorkloadParams, cs_duration_for_size
from repro.workload.generator import RequestSpec, WorkloadGenerator, WorkloadStream
from repro.workload.arrivals import (
    ArrivalSpec,
    DiurnalArrivals,
    LognormalArrivals,
    MarkovModulatedArrivals,
    ParetoArrivals,
    PoissonArrivals,
)
from repro.workload.spec import (
    OpenLoopSpec,
    SyntheticSpec,
    TraceReplaySpec,
    Workload,
    WorkloadSpec,
)
from repro.workload.swf import SWFJob, count_swf_jobs, parse_swf, read_swf

__all__ = [
    "LoadLevel",
    "WorkloadParams",
    "cs_duration_for_size",
    "RequestSpec",
    "WorkloadGenerator",
    "WorkloadStream",
    "ArrivalSpec",
    "PoissonArrivals",
    "ParetoArrivals",
    "LognormalArrivals",
    "MarkovModulatedArrivals",
    "DiurnalArrivals",
    "WorkloadSpec",
    "Workload",
    "SyntheticSpec",
    "OpenLoopSpec",
    "TraceReplaySpec",
    "SWFJob",
    "parse_swf",
    "read_swf",
    "count_swf_jobs",
]
