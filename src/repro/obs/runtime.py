"""Live instrumentation of a running experiment.

:class:`TelemetryRuntime` is created by the runner only when a run asks
for telemetry (``Scenario(telemetry=...)`` or ``$REPRO_TELEMETRY``) —
the nullable seam that keeps default runs at zero frames from this
package.  It samples the run **pull-style**: a self-rescheduling probe
event reads counters the hot layers already maintain (the engine's
dispatched/pending totals, :class:`~repro.sim.network.MessageStats`,
allocator resend counts and queue depths, recovery totals) every
``sample_interval`` simulated ms, so instrumentation costs nothing on
the per-event path.  The single *push* hook is
:meth:`observe_grant`, called by the metrics collector behind a
``None``-check when a request enters its critical section — the one
place a per-request waiting time exists.

Everything is driven by simulated time: snapshots of the same scenario
are bit-identical whichever worker produced them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.health import HealthMonitor, HeartbeatCheck, HealthStatus, StallCheck
from repro.obs.metrics import MetricsRegistry, TelemetrySnapshot
from repro.obs.spec import TelemetrySpec

__all__ = ["TelemetryRuntime"]


class TelemetryRuntime:
    """Registry + probe + health checks for one experiment run.

    Parameters mirror what the runner has in hand when it wires a run:
    the simulator, the (possibly absent) network, the allocator nodes,
    the metrics collector, the workload clients and the (possibly
    absent) recovery coordinator.  ``source`` records whether telemetry
    came from the scenario axis or the env override (see
    :class:`~repro.obs.metrics.TelemetrySnapshot`).
    """

    def __init__(
        self,
        spec: TelemetrySpec,
        sim,
        network=None,
        allocators: Sequence = (),
        collector=None,
        clients: Sequence = (),
        coordinator=None,
        source: str = "scenario",
    ) -> None:
        self.spec = spec
        self.sim = sim
        self.network = network
        self.allocators = list(allocators)
        self.collector = collector
        self.clients = list(clients)
        self.coordinator = coordinator
        self.source = source

        reg = MetricsRegistry()
        self.registry = reg
        self._events = reg.counter(
            "repro_events_dispatched_total", "Simulation events dispatched."
        )
        self._backlog = reg.gauge(
            "repro_scheduler_backlog", "Events pending in the scheduler queue."
        )
        self._sim_time = reg.gauge(
            "repro_sim_time_ms", "Current simulated time in ms."
        )
        self._samples_taken = reg.counter(
            "repro_telemetry_samples_total", "Telemetry probe firings."
        )
        self._sent = reg.counter(
            "repro_messages_sent_total",
            "Messages sent, by message class.",
            labelnames=("type",),
        )
        self._dropped = reg.counter(
            "repro_messages_dropped_total",
            "Messages dropped by the fault layer, by message class.",
            labelnames=("type",),
        )
        self._resends = reg.counter(
            "repro_resends_total", "Control-plane resends across allocator nodes."
        )
        self._issued = reg.counter(
            "repro_requests_issued_total", "Requests issued by workload clients."
        )
        self._completed = reg.counter(
            "repro_requests_completed_total", "Requests completed (CS exited)."
        )
        self._grants = reg.counter(
            "repro_grants_total", "Requests granted (CS entered)."
        )
        self._wait = reg.histogram(
            "repro_request_wait_ms",
            "Request waiting time (issue to grant), simulated ms.",
            buckets=spec.wait_buckets,
        )
        self._queue_depth = reg.gauge(
            "repro_node_queue_depth",
            "Waiting requests queued on tokens owned by each node.",
            labelnames=("node",),
        )
        self._token_wait = reg.gauge(
            "repro_node_token_wait_ms",
            "Most recent request wait granted by each node, simulated ms.",
            labelnames=("node",),
        )
        self._regenerated = reg.counter(
            "repro_tokens_regenerated_total", "Tokens regenerated after crashes."
        )
        self._fences = reg.counter(
            "repro_fences_applied_total", "Fencing-epoch updates applied to nodes."
        )
        self._recovery_time = reg.gauge(
            "repro_recovery_time_ms", "Simulated time spent in token recovery."
        )
        self._health_gauge = reg.gauge(
            "repro_health",
            "Health status by check (0 healthy, 1 unknown, 2 degraded, 3 unhealthy).",
            labelnames=("check",),
        )

        self.monitor = HealthMonitor()
        self._heartbeat = self.monitor.register(HeartbeatCheck())
        self._stall = self.monitor.register(StallCheck(spec.stall_after))

        # Last-seen totals for delta sampling of cumulative sources.
        self._last: Dict[str, float] = {}
        self._last_sent: Dict[str, int] = {}
        self._last_dropped: Dict[str, int] = {}
        self._armed = False

        # Child series are resolved once here, not per sample/grant:
        # ``labels()`` validates the label set and stringifies values on
        # every call, which would dominate telemetry cost on short runs
        # (the probe touches every node each sample, the grant hook
        # fires per request).
        if spec.node_gauges:
            self._wait_children = [
                self._token_wait.labels(node=p) for p in range(len(self.clients))
            ]
            self._depth_children = [
                (a, self._queue_depth.labels(node=getattr(a, "node_id", i)))
                for i, a in enumerate(self.allocators)
                if hasattr(a, "telemetry_queue_depth")
            ]
        else:
            self._wait_children = []
            self._depth_children = []
        self._sent_children: Dict[str, object] = {}
        self._dropped_children: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # push hook (collector.on_grant, behind a None-check)
    # ------------------------------------------------------------------ #
    def observe_grant(self, time: float, process: int, wait: float) -> None:
        """Record one granted request: called when a CS is entered."""
        self._grants.inc()
        self._wait.observe(wait)
        wait_children = self._wait_children
        if wait_children:
            wait_children[process].set(wait)

    # ------------------------------------------------------------------ #
    # pull-style sampling probe
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Arm the sampling probe (first firing one interval from now)."""
        if not self._armed:
            self._armed = True
            self.sim.post_in(self.spec.sample_interval, self._probe)

    def _work_remains(self) -> bool:
        """Re-arm while clients still issue or requests are outstanding.

        Both conditions are required.  ``pending_events`` mirrors the
        runner's drain-the-queue termination: when the probe fires into
        an otherwise empty queue the run is over no matter what the
        request ledger says (a crashed node's aborted requests never
        complete, and re-arming on them alone would stretch the run to
        its horizon).  The ledger check stops the probe early on healthy
        closed loops, where stale resend timers keep the queue non-empty
        after the last grant.
        """
        if self.sim.pending_events == 0:
            return False
        if any(not c.stopped for c in self.clients):
            return True
        if self.collector is not None and not self.collector.all_completed():
            return True
        return False

    def _delta(self, key: str, current: float) -> float:
        """Non-negative delta of a cumulative source since the last sample."""
        last = self._last.get(key, 0.0)
        self._last[key] = current
        return current - last if current > last else 0.0

    def sample(self) -> None:
        """Read every pull-style source into the registry, once."""
        sim = self.sim
        now = sim.now
        self._samples_taken.inc()
        self._sim_time.set(now)
        self._events.inc(self._delta("events", sim.processed_events))
        self._backlog.set(sim.pending_events)

        if self.network is not None:
            stats = self.network.stats
            for name, count in stats.by_type.items():
                prev = self._last_sent.get(name, 0)
                if count > prev:
                    child = self._sent_children.get(name)
                    if child is None:
                        child = self._sent.labels(type=name)
                        self._sent_children[name] = child
                    child.inc(count - prev)
                self._last_sent[name] = count
            for name, count in stats.dropped_snapshot().items():
                prev = self._last_dropped.get(name, 0)
                if count > prev:
                    child = self._dropped_children.get(name)
                    if child is None:
                        child = self._dropped.labels(type=name)
                        self._dropped_children[name] = child
                    child.inc(count - prev)
                self._last_dropped[name] = count

        resends = sum(getattr(a, "resend_count", 0) for a in self.allocators)
        self._resends.inc(self._delta("resends", resends))
        for allocator, child in self._depth_children:
            child.set(allocator.telemetry_queue_depth)

        issued = sum(c.issued for c in self.clients)
        completed = sum(c.completed for c in self.clients)
        self._issued.inc(self._delta("issued", issued))
        self._completed.inc(self._delta("completed", completed))

        if self.coordinator is not None:
            coord = self.coordinator
            self._regenerated.inc(
                self._delta("regenerated", coord.tokens_regenerated)
            )
            self._fences.inc(
                self._delta("fences", getattr(coord, "fences_applied", 0))
            )
            self._recovery_time.set(coord.recovery_time)

        self._heartbeat.beat(now)
        self._stall.update(now, int(self._grants.value))

    def _probe(self) -> None:
        self.sample()
        if self._work_remains():
            self.sim.post_in(self.spec.sample_interval, self._probe)
        else:
            self._armed = False

    # ------------------------------------------------------------------ #
    # end of run
    # ------------------------------------------------------------------ #
    def finalize(self) -> TelemetrySnapshot:
        """Take a final sample and freeze the run's telemetry."""
        self.sample()
        reports = self.monitor.run_all(self.sim.now)
        for report in reports:
            self._health_gauge.labels(check=report.name).set(
                HealthStatus.severity(report.status)
            )
        return TelemetrySnapshot(
            samples=self.registry.collect(),
            health=reports,
            source=self.source,
        )
