"""Health checks: liveness heartbeat and grant-stall detection.

A :class:`HealthCheck` wraps a probe callable returning a
:class:`HealthReport`; a :class:`HealthMonitor` runs a set of checks and
aggregates the worst status.  Two stateful built-ins cover the run
itself:

* :class:`HeartbeatCheck` — liveness of the event clock.  Fed the
  simulator's current time at every telemetry sample; reports
  ``HEALTHY`` while the clock advances between samples, ``UNHEALTHY``
  once it has observed two consecutive samples at the same time (the
  run has wedged), ``UNKNOWN`` before the first beat.
* :class:`StallCheck` — progress of the protocol, not just the clock.
  Fed ``(now, grants_completed)``; reports ``DEGRADED`` when the event
  clock has advanced more than ``stall_after`` simulated ms since the
  last completed grant (events are flowing but nobody gets the
  resource), escalating to ``UNHEALTHY`` at ``2 * stall_after``.

Statuses order by severity (``HEALTHY < DEGRADED < UNHEALTHY``;
``UNKNOWN`` sits between healthy and degraded — no data is worse than
good data but better than known-bad data), so a monitor's overall
status is simply ``max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "HealthCheck",
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "HeartbeatCheck",
    "StallCheck",
]


class HealthStatus:
    """Ordered health states (string-valued enum; severity-comparable)."""

    HEALTHY = "healthy"
    UNKNOWN = "unknown"
    DEGRADED = "degraded"
    UNHEALTHY = "unhealthy"

    #: Severity ordering used by :meth:`HealthMonitor.overall`.
    ORDER = (HEALTHY, UNKNOWN, DEGRADED, UNHEALTHY)

    @classmethod
    def severity(cls, status: str) -> int:
        """Numeric severity of ``status`` (raises on unknown strings)."""
        return cls.ORDER.index(status)

    @classmethod
    def worst(cls, statuses: "List[str] | Tuple[str, ...]") -> str:
        """Most severe of ``statuses`` (``HEALTHY`` when empty)."""
        if not statuses:
            return cls.HEALTHY
        return max(statuses, key=cls.severity)


@dataclass(frozen=True)
class HealthReport:
    """One check's verdict at a point in simulated time (picklable)."""

    name: str
    status: str
    detail: str = ""
    checked_at: float = 0.0


class HealthCheck:
    """Named wrapper around a probe callable.

    The probe returns ``(status, detail)``; a probe that raises is
    reported as ``UNKNOWN`` with the exception text — a broken check
    must never take down the run it is watching.
    """

    def __init__(
        self, name: str, probe: Callable[[], Tuple[str, str]]
    ) -> None:
        self.name = name
        self._probe = probe

    def run(self, now: float = 0.0) -> HealthReport:
        """Execute the probe, shielding the caller from probe errors."""
        try:
            status, detail = self._probe()
        except Exception as exc:  # noqa: BLE001 - shield by contract
            return HealthReport(
                name=self.name,
                status=HealthStatus.UNKNOWN,
                detail=f"probe raised {type(exc).__name__}: {exc}",
                checked_at=now,
            )
        if status not in HealthStatus.ORDER:
            return HealthReport(
                name=self.name,
                status=HealthStatus.UNKNOWN,
                detail=f"probe returned invalid status {status!r}",
                checked_at=now,
            )
        return HealthReport(name=self.name, status=status, detail=detail, checked_at=now)


class HealthMonitor:
    """Runs a set of :class:`HealthCheck` and aggregates the worst status."""

    def __init__(self) -> None:
        self._checks: Dict[str, HealthCheck] = {}

    def register(self, check: HealthCheck) -> HealthCheck:
        """Add ``check`` (replacing any previous check of the same name)."""
        self._checks[check.name] = check
        return check

    def run_all(self, now: float = 0.0) -> Tuple[HealthReport, ...]:
        """Run every check, in registration order."""
        return tuple(check.run(now) for check in self._checks.values())

    def overall(self, now: float = 0.0) -> str:
        """Most severe status across all checks."""
        return HealthStatus.worst([r.status for r in self.run_all(now)])


class HeartbeatCheck(HealthCheck):
    """Liveness of the event clock, fed by :meth:`beat` at each sample."""

    def __init__(self, name: str = "heartbeat") -> None:
        super().__init__(name, self._status)
        self._last_time: Optional[float] = None
        self._stuck_beats = 0

    def beat(self, now: float) -> None:
        """Record a sample of the simulator clock."""
        if self._last_time is not None and now <= self._last_time:
            self._stuck_beats += 1
        else:
            self._stuck_beats = 0
        self._last_time = now

    def _status(self) -> Tuple[str, str]:
        if self._last_time is None:
            return HealthStatus.UNKNOWN, "no heartbeat observed yet"
        if self._stuck_beats >= 2:
            return (
                HealthStatus.UNHEALTHY,
                f"event clock stuck at {self._last_time:g} for "
                f"{self._stuck_beats} samples",
            )
        return HealthStatus.HEALTHY, f"last beat at {self._last_time:g}"


class StallCheck(HealthCheck):
    """Grant-progress watchdog: clock advances but no grants complete.

    ``stall_after`` is the simulated-ms budget between completed grants;
    beyond it the check degrades, and at twice the budget it is
    unhealthy.  :meth:`update` is fed ``(now, grants_completed)`` at each
    telemetry sample.
    """

    def __init__(self, stall_after: float, name: str = "grant_progress") -> None:
        if stall_after <= 0:
            raise ValueError(f"stall_after must be > 0, got {stall_after!r}")
        super().__init__(name, self._status)
        self.stall_after = float(stall_after)
        self._last_grants: Optional[int] = None
        self._last_progress_time = 0.0
        self._now = 0.0

    def update(self, now: float, grants_completed: int) -> None:
        """Record the grant total at simulated time ``now``."""
        self._now = now
        if self._last_grants is None or grants_completed > self._last_grants:
            self._last_progress_time = now
        self._last_grants = grants_completed

    def _status(self) -> Tuple[str, str]:
        if self._last_grants is None:
            return HealthStatus.UNKNOWN, "no samples observed yet"
        idle = self._now - self._last_progress_time
        if idle > 2 * self.stall_after:
            return (
                HealthStatus.UNHEALTHY,
                f"no grant completed for {idle:g} ms "
                f"(budget {self.stall_after:g} ms)",
            )
        if idle > self.stall_after:
            return (
                HealthStatus.DEGRADED,
                f"no grant completed for {idle:g} ms "
                f"(budget {self.stall_after:g} ms)",
            )
        return (
            HealthStatus.HEALTHY,
            f"{self._last_grants} grants completed, last progress at "
            f"{self._last_progress_time:g}",
        )
