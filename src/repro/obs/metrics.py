"""Metric primitives and the telemetry registry.

Three metric kinds, modelled on the Prometheus client data model:

* :class:`Counter` — monotonically non-decreasing total (events
  dispatched, messages sent, tokens regenerated);
* :class:`Gauge` — instantaneous value that may go up and down
  (scheduler backlog, per-node queue depth, token-wait age);
* :class:`Histogram` — bucketed distribution with ``sum`` and ``count``
  (request waiting times).

Every metric family may carry **labels** (``labels(type="ReqRes")``
returns the child series for that label combination), and the whole
registry renders to the Prometheus text exposition format with
:meth:`MetricsRegistry.render_text` — ``# HELP`` / ``# TYPE`` headers,
``_bucket``/``_sum``/``_count`` histogram series with cumulative ``le``
buckets, escaped label values.

The registry is an in-process, single-threaded structure: the simulator
is single-threaded, so no locking is needed, and all values are driven
by *simulated* time — a snapshot of the same scenario is bit-identical
whichever worker process produced it (the ``workers=N`` pickle
contract).  :meth:`MetricsRegistry.snapshot` freezes the current state
into a picklable :class:`TelemetrySnapshot` of plain tuples for exactly
that transport.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.health import HealthReport

__all__ = [
    "Counter",
    "DEFAULT_WAIT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "TelemetrySnapshot",
]

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default waiting-time histogram boundaries, in simulated milliseconds
#: (the paper's time unit): sub-CS waits up to multi-round-trip stalls.
DEFAULT_WAIT_BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)

#: Label-values key of an unlabelled metric's single series.
_BARE: Tuple[str, ...] = ()


def _format_value(value: float) -> str:
    """Exposition-format number: integral values render without a dot."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line: backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value: backslash, double quote and newline."""
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    """``{a="x",b="y"}`` (empty string for an unlabelled series)."""
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class _MetricFamily:
    """Shared machinery of the three metric kinds: naming and labels.

    A family created with ``labelnames`` owns one child series per label
    combination (:meth:`labels`); a family created without labels *is*
    its single series and exposes the value API directly.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        if not _METRIC_NAME.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_NAME.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names on metric {name!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], "_MetricFamily"] = {}
        if not self.labelnames:
            self._children[_BARE] = self

    def labels(self, **labelvalues: object) -> "_MetricFamily":
        """Return (creating if needed) the child series for these labels."""
        if not self.labelnames:
            raise ValueError(f"metric {self.name!r} has no labels")
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {list(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _make_child(self) -> "_MetricFamily":
        child = type(self).__new__(type(self))
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child._children = {_BARE: child}
        child._init_value()
        return child

    def _init_value(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _series(self) -> List[Tuple[Tuple[Tuple[str, str], ...], "_MetricFamily"]]:
        """Children as ``(label pairs, series)``, sorted by label values."""
        return [
            (tuple(zip(self.labelnames, key)), child)
            for key, child in sorted(self._children.items())
        ]


class Counter(_MetricFamily):
    """Monotonically non-decreasing total.

    ``inc`` rejects negative amounts — monotonicity is the counter
    contract (rates computed from a counter that went backwards are
    garbage), pinned by ``tests/obs/test_metrics.py``.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labelled; use .labels(...).inc()")
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount!r})")
        self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        return self._value


class Gauge(_MetricFamily):
    """Instantaneous value that can move in both directions."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._init_value()

    def _init_value(self) -> None:
        self._value = 0.0

    def _check_bare(self) -> None:
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labelled; use .labels(...)")

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._check_bare()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self._check_bare()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self._check_bare()
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram(_MetricFamily):
    """Bucketed distribution with ``sum`` and ``count``.

    ``buckets`` are the finite upper bounds, strictly increasing; the
    implicit ``+Inf`` bucket is always present.  ``le`` is inclusive
    (a value equal to a bound lands in that bound's bucket), matching
    the Prometheus definition.  Exposition renders buckets cumulatively.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_WAIT_BUCKETS_MS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError(f"histogram {name!r} buckets must be finite (+Inf is implicit)")
        self.buckets = bounds
        super().__init__(name, help, labelnames)
        self._init_value()

    def _make_child(self) -> "Histogram":
        child = type(self).__new__(type(self))
        child.name = self.name
        child.help = self.help
        child.labelnames = ()
        child.buckets = self.buckets  # set before _init_value sizes the counts
        child._children = {_BARE: child}
        child._init_value()
        return child

    def _init_value(self) -> None:
        # Per-bucket *non-cumulative* hit counts; the last slot is +Inf.
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def labels(self, **labelvalues: object) -> "Histogram":
        """Return the child histogram for these labels (shares buckets)."""
        return super().labels(**labelvalues)  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        """Record one observation."""
        if self.labelnames:
            raise ValueError(f"metric {self.name!r} is labelled; use .labels(...).observe()")
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name!r} cannot observe NaN")
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bound >= value (bisect on the bounds)
            mid = (lo + hi) // 2
            if self.buckets[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self._bucket_counts[lo] += 1
        self._sum += value
        self._count += 1

    @property
    def sum_value(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def count_value(self) -> int:
        """Number of observations."""
        return self._count

    def cumulative_counts(self) -> Tuple[int, ...]:
        """Cumulative per-bucket counts, ending with the ``+Inf`` total."""
        out: List[int] = []
        running = 0
        for hits in self._bucket_counts:
            running += hits
            out.append(running)
        return tuple(out)


MetricLike = Union[Counter, Gauge, Histogram]

#: Structured value of one series inside a :class:`MetricSample`: a plain
#: number for counters/gauges, ``(cumulative buckets, sum, count)`` for
#: histograms.
SeriesValue = Union[float, Tuple[Tuple[int, ...], float, int]]


@dataclass(frozen=True)
class MetricSample:
    """Frozen state of one metric family at snapshot time."""

    name: str
    kind: str
    help: str
    #: ``((label pairs, value), ...)`` — label pairs are ``(name, value)``
    #: tuples sorted by label values; see :data:`SeriesValue`.
    series: Tuple[Tuple[Tuple[Tuple[str, str], ...], SeriesValue], ...]
    #: Histogram bucket bounds (``None`` for counters/gauges).
    buckets: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Picklable end-of-run telemetry: metric samples plus health reports.

    Built by :meth:`TelemetryRuntime.finalize
    <repro.obs.runtime.TelemetryRuntime.finalize>` and shipped on
    :attr:`repro.experiments.runner.ExperimentResult.telemetry`.  Made of
    plain tuples of primitives, so its pickle is deterministic: a
    ``workers=N`` sweep ships snapshots bit-identical to the ``workers=1``
    reference (pinned in ``tests/obs/test_pipeline.py``).

    ``source`` records how telemetry was switched on: ``"scenario"`` for
    an explicit ``Scenario(telemetry=...)`` axis, ``"env"`` for the
    ``REPRO_TELEMETRY`` process override.  Env-derived snapshots never
    enter a :class:`~repro.parallel.cache.RunCache` (the scenario's cache
    key does not know about the env var).
    """

    samples: Tuple[MetricSample, ...]
    health: Tuple[HealthReport, ...] = ()
    source: str = "scenario"

    def render_text(self) -> str:
        """Render the snapshot in the Prometheus text exposition format."""
        return render_samples(self.samples)

    def sample(self, name: str) -> MetricSample:
        """Return the sample of metric family ``name`` (KeyError if absent)."""
        for sample in self.samples:
            if sample.name == name:
                return sample
        raise KeyError(name)

    def value(self, name: str, **labelvalues: object) -> SeriesValue:
        """Value of one series: ``snapshot.value("repro_messages_sent_total", type="ReqRes")``."""
        sample = self.sample(name)
        wanted = {k: str(v) for k, v in labelvalues.items()}
        for pairs, value in sample.series:
            if dict(pairs) == wanted:
                return value
        raise KeyError(f"{name} has no series with labels {wanted!r}")


def render_samples(samples: Sequence[MetricSample]) -> str:
    """Prometheus text exposition of frozen metric samples."""
    lines: List[str] = []
    for sample in samples:
        lines.append(f"# HELP {sample.name} {_escape_help(sample.help)}")
        lines.append(f"# TYPE {sample.name} {sample.kind}")
        for pairs, value in sample.series:
            if sample.kind == "histogram":
                cumulative, total, count = value  # type: ignore[misc]
                bounds = [_format_value(b) for b in (sample.buckets or ())] + ["+Inf"]
                for bound, running in zip(bounds, cumulative):
                    le_pairs = tuple(pairs) + (("le", bound),)
                    lines.append(
                        f"{sample.name}_bucket{_render_labels(le_pairs)} {running}"
                    )
                lines.append(f"{sample.name}_sum{_render_labels(pairs)} {_format_value(total)}")
                lines.append(f"{sample.name}_count{_render_labels(pairs)} {count}")
            else:
                lines.append(
                    f"{sample.name}{_render_labels(pairs)} {_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


class MetricsRegistry:
    """Ordered collection of metric families with get-or-create accessors.

    Registration is idempotent: asking twice for the same name with the
    same kind returns the same family (so instrumentation sites never
    need to coordinate), while re-registering a name as a different kind
    raises — one name, one type, as in Prometheus.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricLike] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: object) -> MetricLike:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {cls.kind}"  # type: ignore[attr-defined]
                )
            return existing
        metric = cls(name, help, **kwargs)  # type: ignore[arg-type]
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames=labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_WAIT_BUCKETS_MS,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )  # type: ignore[return-value]

    def collect(self) -> Tuple[MetricSample, ...]:
        """Freeze every family into :class:`MetricSample` tuples."""
        samples: List[MetricSample] = []
        for name, metric in self._metrics.items():
            series: List[Tuple[Tuple[Tuple[str, str], ...], SeriesValue]] = []
            for pairs, child in metric._series():
                if isinstance(child, Histogram):
                    series.append(
                        (pairs, (child.cumulative_counts(), child._sum, child._count))
                    )
                else:
                    series.append((pairs, child._value))
            samples.append(
                MetricSample(
                    name=name,
                    kind=metric.kind,
                    help=metric.help,
                    series=tuple(series),
                    buckets=metric.buckets if isinstance(metric, Histogram) else None,
                )
            )
        return tuple(samples)

    def render_text(self) -> str:
        """Prometheus text exposition of the registry's current state."""
        return render_samples(self.collect())
