"""Run-time observability: metric registry, health checks, telemetry axis.

The package gives a running experiment a *live interior*: counters,
gauges and histograms collected into a :class:`~repro.obs.metrics.MetricsRegistry`
(Prometheus text exposition via ``render_text()``), health probes
(:mod:`repro.obs.health`) watching the run's heartbeat and grant
progress, and a sampling :class:`~repro.obs.runtime.TelemetryRuntime`
wired into the simulator, network, allocator nodes and recovery layer.

Telemetry is a declarative scenario axis
(:class:`~repro.obs.spec.TelemetrySpec`, ``Scenario(telemetry=...)``)
that is **hash-neutral when unset** and provably inert when disabled:
default runs execute zero frames from this package (pinned by
``scripts/profile_run.py --check``), and the whole package stays
importable *optional* — the runner only imports it when a run actually
asks for telemetry, so a deployment may strip ``repro/obs`` entirely
without touching default results (pinned by the differential test in
``tests/obs/test_zero_overhead.py``).
"""

from repro.obs.health import HealthCheck, HealthMonitor, HealthReport, HealthStatus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetrySnapshot,
)
from repro.obs.runtime import TelemetryRuntime
from repro.obs.spec import TelemetrySpec, telemetry_from_env

__all__ = [
    "Counter",
    "Gauge",
    "HealthCheck",
    "HealthMonitor",
    "HealthReport",
    "HealthStatus",
    "Histogram",
    "MetricsRegistry",
    "TelemetryRuntime",
    "TelemetrySnapshot",
    "TelemetrySpec",
    "telemetry_from_env",
]
