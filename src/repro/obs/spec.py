"""Declarative telemetry axis: ``Scenario(telemetry=TelemetrySpec(...))``.

A :class:`TelemetrySpec` is frozen, picklable and content-hashable like
every other scenario axis (latency, faults, workload, scheduler).  The
axis is **hash-neutral when unset**: ``Scenario(telemetry=None)`` keys
identically to a scenario written before the axis existed, because a
run without telemetry *is* that run — the instrumentation executes zero
frames (see :mod:`repro.obs` and ``scripts/profile_run.py --check``).

The ``REPRO_TELEMETRY`` environment variable switches telemetry on for
a whole process without touching scenarios — mirroring
``REPRO_SCHEDULER`` — and, like it, **loses to an explicit scenario
value** and never participates in cache keys (env-derived snapshots are
stripped before results enter a :class:`~repro.parallel.cache.RunCache`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.metrics import DEFAULT_WAIT_BUCKETS_MS

__all__ = ["TELEMETRY_ENV", "TelemetrySpec", "telemetry_from_env"]

#: Process-wide telemetry override (explicit scenario values win).
TELEMETRY_ENV = "REPRO_TELEMETRY"

_ENV_OFF = frozenset({"", "0", "off", "false", "no", "none"})
_ENV_ON = frozenset({"1", "on", "true", "yes", "default"})


@dataclass(frozen=True)
class TelemetrySpec:
    """How a run samples itself.

    Attributes
    ----------
    sample_interval:
        Simulated milliseconds between telemetry samples (the probe
        reads engine/network/node counters at this cadence).
    node_gauges:
        Collect per-node queue-depth and token-wait series.  Off for
        very large clusters where per-node label cardinality would
        dominate the snapshot.
    wait_buckets:
        Upper bounds of the request-waiting-time histogram, in simulated
        milliseconds (strictly increasing; ``+Inf`` is implicit).
    stall_after:
        Grant-progress health budget: the run degrades when the event
        clock advances more than this many simulated ms without any
        grant completing (see :class:`repro.obs.health.StallCheck`).
    """

    sample_interval: float = 50.0
    node_gauges: bool = True
    wait_buckets: Tuple[float, ...] = DEFAULT_WAIT_BUCKETS_MS
    stall_after: float = 500.0

    def __post_init__(self) -> None:
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be > 0, got {self.sample_interval!r}"
            )
        if self.stall_after <= 0:
            raise ValueError(f"stall_after must be > 0, got {self.stall_after!r}")
        if not isinstance(self.wait_buckets, tuple):
            object.__setattr__(self, "wait_buckets", tuple(self.wait_buckets))
        if not self.wait_buckets:
            raise ValueError("wait_buckets must not be empty")
        if any(b2 <= b1 for b1, b2 in zip(self.wait_buckets, self.wait_buckets[1:])):
            raise ValueError("wait_buckets must be strictly increasing")

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"telemetry@{self.sample_interval:g}ms"]
        if not self.node_gauges:
            parts.append("no-node-gauges")
        if self.wait_buckets != DEFAULT_WAIT_BUCKETS_MS:
            parts.append(f"{len(self.wait_buckets)}buckets")
        if self.stall_after != 500.0:
            parts.append(f"stall>{self.stall_after:g}ms")
        return ",".join(parts)


def telemetry_from_env(environ=None) -> Optional[TelemetrySpec]:
    """Telemetry spec selected by ``$REPRO_TELEMETRY`` (``None`` when off).

    Accepted values: off switches (``0``/``off``/``false``/``no``/
    ``none``/empty), on switches (``1``/``on``/``true``/``yes``/
    ``default``) giving the default spec, or a number giving the sample
    interval in simulated ms.  Anything else raises ``ValueError`` — a
    typo silently disabling telemetry would defeat the point of asking
    for it.
    """
    env = os.environ if environ is None else environ
    raw = env.get(TELEMETRY_ENV)
    if raw is None:
        return None
    value = raw.strip().lower()
    if value in _ENV_OFF:
        return None
    if value in _ENV_ON:
        return TelemetrySpec()
    try:
        interval = float(value)
    except ValueError:
        raise ValueError(
            f"invalid {TELEMETRY_ENV}={raw!r}: expected on/off/1/0 or a "
            f"sample interval in simulated ms"
        ) from None
    return TelemetrySpec(sample_interval=interval)
