"""Abstract interface of an embeddable single-resource mutex instance."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable


class MutexError(RuntimeError):
    """Raised on invalid use of a mutex instance (double request, etc.)."""


class MutexInstance(ABC):
    """One instance of a distributed mutual-exclusion algorithm.

    An instance is identified by ``instance_id`` (e.g. the resource id it
    protects) and lives inside a host node.  It communicates through the
    ``send_fn(dst, message)`` callback supplied by the host; incoming
    messages for the instance must be routed to :meth:`handle` by the host.
    """

    def __init__(
        self,
        instance_id: Hashable,
        node_id: int,
        send_fn: Callable[[int, Any], None],
    ) -> None:
        self.instance_id = instance_id
        self.node_id = int(node_id)
        self._send = send_fn

    @abstractmethod
    def request(self, on_acquired: Callable[[], None]) -> None:
        """Ask for the critical section; ``on_acquired`` fires exactly once."""

    @abstractmethod
    def release(self) -> None:
        """Leave the critical section."""

    @abstractmethod
    def handle(self, src: int, message: Any) -> None:
        """Process a protocol message addressed to this instance."""

    @property
    @abstractmethod
    def has_token(self) -> bool:
        """Whether this instance currently holds the token."""

    @property
    @abstractmethod
    def in_critical_section(self) -> bool:
        """Whether the host process is inside this instance's CS."""
