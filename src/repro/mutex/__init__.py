"""Single-resource distributed mutual-exclusion substrates.

The paper's evaluation uses the Naimi–Tréhel token algorithm twice:

* the *incremental* baseline runs ``M`` independent instances (one per
  resource) and locks resources in a global total order;
* the *Bouabdallah–Laforest* baseline uses one instance to circulate its
  global *control token*.

:class:`~repro.mutex.naimi_trehel.NaimiTrehelInstance` implements the
algorithm as an embeddable component: it is owned by a host
:class:`~repro.sim.node.Node` and sends/receives its messages through
callbacks provided by the host, so several instances can be multiplexed
over a single simulated process exactly as a real implementation would
multiplex them over one MPI rank.
"""

from repro.mutex.base import MutexError, MutexInstance
from repro.mutex.naimi_trehel import NaimiTrehelInstance, NTRequest, NTToken

__all__ = [
    "MutexError",
    "MutexInstance",
    "NaimiTrehelInstance",
    "NTRequest",
    "NTToken",
]
