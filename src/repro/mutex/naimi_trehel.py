"""Naimi–Tréhel token-based mutual exclusion.

Reference: M. Naimi and M. Tréhel, "An improvement of the log(n)
distributed algorithm for mutual exclusion" (ICDCS 1987) — reference [18]
of the paper.  Each process keeps two pointers:

* ``owner`` — the *probable owner* (father in a dynamic logical tree); the
  process that is, as far as this node knows, the last requester and hence
  the one that will eventually hold the token.  ``None`` means this node is
  the root.
* ``next`` — the process to hand the token to after the local critical
  section, forming a distributed FIFO queue of pending requests.

Requests travel along ``owner`` pointers to the root; the token travels
directly along the ``next`` chain.  Message complexity is O(log N) on
average, which is why the paper picks it both for the incremental baseline
and for circulating Bouabdallah–Laforest's control token.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro.mutex.base import MutexError, MutexInstance


@dataclass(frozen=True)
class NTRequest:
    """Request message: ``requester`` asks for the CS of ``instance``."""

    instance: Hashable
    requester: int


@dataclass(frozen=True)
class NTToken:
    """The unique token of ``instance``; ``payload`` travels with it."""

    instance: Hashable
    payload: Any = None


class NaimiTrehelInstance(MutexInstance):
    """One embeddable Naimi–Tréhel instance.

    Parameters
    ----------
    instance_id:
        Identifier used to tag messages (e.g. the resource id).
    node_id:
        Id of the host process.
    send_fn:
        Callback ``send_fn(dst, message)`` used to emit protocol messages.
    initial_holder:
        Process that owns the token at time zero (the *elected node*).
    on_token_received:
        Optional hook invoked with the token payload whenever the token
        arrives, before the acquisition callback; used by the
        Bouabdallah–Laforest control token to read/update its vector.
    """

    def __init__(
        self,
        instance_id: Hashable,
        node_id: int,
        send_fn: Callable[[int, Any], None],
        initial_holder: int = 0,
        on_token_received: Optional[Callable[[Any], None]] = None,
    ) -> None:
        super().__init__(instance_id, node_id, send_fn)
        self._has_token = node_id == initial_holder
        self.owner: Optional[int] = None if self._has_token else initial_holder
        self.next: Optional[int] = None
        self._requesting = False
        self._in_cs = False
        self._on_acquired: Optional[Callable[[], None]] = None
        self._on_token_received = on_token_received
        self.token_payload: Any = None

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def has_token(self) -> bool:
        return self._has_token

    @property
    def in_critical_section(self) -> bool:
        return self._in_cs

    @property
    def requesting(self) -> bool:
        """Whether a request is outstanding (waiting for the token)."""
        return self._requesting

    # ------------------------------------------------------------------ #
    # public protocol
    # ------------------------------------------------------------------ #
    def request(self, on_acquired: Callable[[], None]) -> None:
        """Request the critical section of this instance."""
        if self._requesting or self._in_cs:
            raise MutexError(
                f"instance {self.instance_id!r} at node {self.node_id}: "
                "request while a request is already outstanding"
            )
        self._on_acquired = on_acquired
        if self.owner is None:
            # This node is the root: it holds the token and nobody else is
            # ahead of it, so it enters the CS immediately.
            if not self._has_token:
                # Root without token only happens while waiting for the
                # token to arrive, which implies _requesting — excluded
                # above.  Defensive guard.
                raise MutexError("root node without token outside of a request")
            self._enter_cs()
        else:
            self._requesting = True
            self._send(self.owner, NTRequest(self.instance_id, self.node_id))
            self.owner = None

    def release(self) -> None:
        """Exit the critical section, handing the token to ``next`` if any."""
        if not self._in_cs:
            raise MutexError(
                f"instance {self.instance_id!r} at node {self.node_id}: release outside CS"
            )
        self._in_cs = False
        if self.next is not None:
            self._has_token = False
            self._send(self.next, NTToken(self.instance_id, self.token_payload))
            self.next = None

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def handle(self, src: int, message: Any) -> None:
        if isinstance(message, NTRequest):
            self._on_request(message.requester)
        elif isinstance(message, NTToken):
            self._on_token(message)
        else:  # pragma: no cover - defensive
            raise MutexError(f"unexpected message for mutex instance: {message!r}")

    def _on_request(self, requester: int) -> None:
        if self.owner is None:
            # This node is the root.
            if self._requesting or self._in_cs:
                # The requester will receive the token right after us.
                self.next = requester
            else:
                # Idle root: hand over the token directly.
                self._has_token = False
                self._send(requester, NTToken(self.instance_id, self.token_payload))
        else:
            # Forward along the probable-owner chain.
            self._send(self.owner, NTRequest(self.instance_id, requester))
        self.owner = requester

    def _on_token(self, token: NTToken) -> None:
        self._has_token = True
        self.token_payload = token.payload
        if self._on_token_received is not None:
            self._on_token_received(token.payload)
        if not self._requesting:  # pragma: no cover - protocol guarantees this
            return
        self._requesting = False
        self._enter_cs()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _enter_cs(self) -> None:
        self._in_cs = True
        callback = self._on_acquired
        self._on_acquired = None
        if callback is not None:
            callback()
