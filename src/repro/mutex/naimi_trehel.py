"""Naimi–Tréhel token-based mutual exclusion.

Reference: M. Naimi and M. Tréhel, "An improvement of the log(n)
distributed algorithm for mutual exclusion" (ICDCS 1987) — reference [18]
of the paper.  Each process keeps two pointers:

* ``owner`` — the *probable owner* (father in a dynamic logical tree); the
  process that is, as far as this node knows, the last requester and hence
  the one that will eventually hold the token.  ``None`` means this node is
  the root.
* ``next`` — the process to hand the token to after the local critical
  section, forming a distributed FIFO queue of pending requests.

Requests travel along ``owner`` pointers to the root; the token travels
directly along the ``next`` chain.  Message complexity is O(log N) on
average, which is why the paper picks it both for the incremental baseline
and for circulating Bouabdallah–Laforest's control token.

Crash-recovery support
----------------------
The instance exposes primitives consumed by the host allocator's
crash-recovery interface (see :mod:`repro.core.recovery`):
:meth:`NaimiTrehelInstance.reset_after_crash` (reboot of the host),
:meth:`~NaimiTrehelInstance.regenerate_token` (rebuild a token lost with
its crashed holder), :meth:`~NaimiTrehelInstance.repoint_after_loss`
(survivor-side rebuild of the waiting chain and probable-owner pointers)
and :meth:`~NaimiTrehelInstance.fence_token` (discard stale ownership on
a late reboot).  Because Naimi–Tréhel requests are *not* idempotent —
the waiting queue is a distributed ``next`` chain, not a set — recovery
rebuilds the chain globally from the surviving requesters instead of
re-sending requests; the message handlers below carry guards (never
overwrite an occupied ``next``, never hand out a token the node does not
hold) so that stale in-flight requests arriving after a rebuild degrade
to a dropped request rather than a duplicated token.  The guards are
unreachable in fault-free runs, which therefore stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional

from repro.mutex.base import MutexError, MutexInstance


@dataclass(frozen=True)
class NTRequest:
    """Request message: ``requester`` asks for the CS of ``instance``."""

    instance: Hashable
    requester: int


@dataclass(frozen=True)
class NTToken:
    """The unique token of ``instance``; ``payload`` travels with it.

    ``epoch`` is the fencing epoch of this token incarnation, bumped by
    every regeneration (:mod:`repro.core.recovery`); receivers ignore
    tokens older than the epoch they last witnessed.  Always ``0`` in
    crash-free runs.
    """

    instance: Hashable
    payload: Any = None
    epoch: int = 0


class NaimiTrehelInstance(MutexInstance):
    """One embeddable Naimi–Tréhel instance.

    Parameters
    ----------
    instance_id:
        Identifier used to tag messages (e.g. the resource id).
    node_id:
        Id of the host process.
    send_fn:
        Callback ``send_fn(dst, message)`` used to emit protocol messages.
    initial_holder:
        Process that owns the token at time zero (the *elected node*).
    on_token_received:
        Optional hook invoked with the token payload whenever the token
        arrives, before the acquisition callback; used by the
        Bouabdallah–Laforest control token to read/update its vector.
    """

    def __init__(
        self,
        instance_id: Hashable,
        node_id: int,
        send_fn: Callable[[int, Any], None],
        initial_holder: int = 0,
        on_token_received: Optional[Callable[[Any], None]] = None,
    ) -> None:
        super().__init__(instance_id, node_id, send_fn)
        self._has_token = node_id == initial_holder
        self.owner: Optional[int] = None if self._has_token else initial_holder
        self.next: Optional[int] = None
        self._requesting = False
        self._in_cs = False
        self._on_acquired: Optional[Callable[[], None]] = None
        self._on_token_received = on_token_received
        self.token_payload: Any = None
        # Highest token epoch witnessed (fencing against stale copies of
        # regenerated tokens; stays 0 in crash-free runs).
        self._token_epoch = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def has_token(self) -> bool:
        return self._has_token

    @property
    def in_critical_section(self) -> bool:
        return self._in_cs

    @property
    def requesting(self) -> bool:
        """Whether a request is outstanding (waiting for the token)."""
        return self._requesting

    # ------------------------------------------------------------------ #
    # public protocol
    # ------------------------------------------------------------------ #
    def request(self, on_acquired: Callable[[], None]) -> None:
        """Request the critical section of this instance."""
        if self._requesting or self._in_cs:
            raise MutexError(
                f"instance {self.instance_id!r} at node {self.node_id}: "
                "request while a request is already outstanding"
            )
        self._on_acquired = on_acquired
        if self.owner is None:
            # This node is the root: it holds the token and nobody else is
            # ahead of it, so it enters the CS immediately.
            if not self._has_token:
                # Root without token only happens while waiting for the
                # token to arrive, which implies _requesting — excluded
                # above.  Defensive guard.
                raise MutexError("root node without token outside of a request")
            self._enter_cs()
        else:
            self._requesting = True
            self._send(self.owner, NTRequest(self.instance_id, self.node_id))
            self.owner = None

    def release(self) -> None:
        """Exit the critical section, handing the token to ``next`` if any."""
        if not self._in_cs:
            raise MutexError(
                f"instance {self.instance_id!r} at node {self.node_id}: release outside CS"
            )
        self._in_cs = False
        if self.next is not None:
            self._hand_token(self.next)
            self.next = None

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def handle(self, src: int, message: Any) -> None:
        if isinstance(message, NTRequest):
            self._on_request(message.requester)
        elif isinstance(message, NTToken):
            self._on_token(message)
        else:  # pragma: no cover - defensive
            raise MutexError(f"unexpected message for mutex instance: {message!r}")

    def _on_request(self, requester: int) -> None:
        if requester == self.node_id:
            # Own request echoed back through stale post-recovery pointers;
            # unreachable in fault-free runs.
            return
        if self.owner is None:
            # This node is the root.
            if self._requesting or self._in_cs or not self._has_token:
                # The requester will receive the token right after us.  An
                # occupied ``next`` (or a root transiently without the
                # token) only happens for stale requests arriving after a
                # recovery chain rebuild, whose requester is already
                # queued: dropping beats corrupting the rebuilt chain.
                if self.next is None:
                    self.next = requester
            else:
                # Idle root: hand over the token directly.
                self._hand_token(requester)
        else:
            # Forward along the probable-owner chain.
            self._send(self.owner, NTRequest(self.instance_id, requester))
        self.owner = requester

    def _on_token(self, token: NTToken) -> None:
        if token.epoch < self._token_epoch:
            # Stale copy of a lost-and-regenerated token: a newer
            # incarnation exists elsewhere; absorbing this one would
            # resurrect a second token.  Unreachable in crash-free runs.
            return
        self._token_epoch = token.epoch
        self._has_token = True
        self.token_payload = token.payload
        if self._on_token_received is not None:
            self._on_token_received(token.payload)
        if not self._requesting:
            # Fault-free, a token only ever arrives at a requester; after a
            # crash recovery it may chase a stale queue entry into a node
            # that no longer requests.  Pass it on to our successor if we
            # have one; otherwise absorb it as the idle *root* (owner
            # pointer cleared) so future requests find a grantable holder
            # instead of a parked token.
            if self.next is not None:
                self._hand_token(self.next)
                self.owner = self.next
                self.next = None
            else:
                self.owner = None
            return
        self._requesting = False
        self._enter_cs()

    # ------------------------------------------------------------------ #
    # crash-recovery primitives (see the module docstring)
    # ------------------------------------------------------------------ #
    def reset_after_crash(self) -> None:
        """Reboot handler: volatile request state died with the host.

        The token, its payload and the ``next`` queue entry are durable
        (stable storage); an interrupted critical section is abandoned,
        so a held token is handed straight to the queued successor, if
        any (which also becomes the probable owner — a node that gives
        its token away must never be left looking like a root).  Tokens
        regenerated elsewhere while the host was down have already been
        fenced away (:meth:`fence_token` runs first).
        """
        self._requesting = False
        self._on_acquired = None
        self._in_cs = False
        if self._has_token and self.next is not None:
            self._hand_token(self.next)
            self.owner = self.next
            self.next = None

    def regenerate_token(
        self,
        next_requester: Optional[int] = None,
        epoch: int = 0,
        probable_owner: Optional[int] = None,
    ) -> None:
        """Rebuild the lost token locally, becoming the root.

        ``next_requester`` is this node's successor in the waiting chain
        rebuilt by the recovery coordinator, ``probable_owner`` the
        chain's tail (who later requests must be forwarded to once the
        token moves on), and ``epoch`` the fresh fencing epoch of the new
        incarnation.  If the host was waiting for this token, the
        regeneration doubles as its arrival and the host enters the
        critical section.
        """
        self.owner = probable_owner if probable_owner != self.node_id else None
        self.next = next_requester
        self._has_token = True
        self._token_epoch = max(self._token_epoch, epoch)
        if self._requesting:
            self._requesting = False
            self._enter_cs()

    def note_epoch(self, epoch: int) -> None:
        """Advance the witnessed epoch (stale incarnations get ignored)."""
        self._token_epoch = max(self._token_epoch, epoch)

    def purge_requester(self, crashed: int) -> None:
        """Forget a dead node's queue entry so no token is sent into the void."""
        if self.next == crashed:
            self.next = None

    def repoint_after_loss(
        self, owner: Optional[int], next_requester: Optional[int]
    ) -> None:
        """Survivor-side rebuild of this node's slot in the waiting chain.

        A surviving *requester* re-enters the rebuilt chain with
        ``next_requester`` as its successor and ``owner`` as its probable
        owner (the chain's tail): in normal operation a waiting root that
        queued a successor saw later requests *forwarded* toward the last
        requester, never queued or dropped mid-chain.  The chain's tail
        itself gets ``owner=None``/``next=None`` and queues the next
        newcomer, exactly like a fault-free waiting root.  A surviving
        *non-requester* simply repoints its probable-owner pointer at
        ``owner`` (the chain's last requester, or the live holder when
        the chain is empty).
        """
        if self._has_token:  # pragma: no cover - defensive (holder never loses)
            return
        if self._requesting:
            self.owner = owner if owner != self.node_id else None
            self.next = next_requester
        else:
            self.owner = owner
            self.next = None

    def rebuild_as_holder(
        self, successor: Optional[int], probable_owner: Optional[int]
    ) -> None:
        """Recovery chain rebuild at the node actually holding the token.

        Used for *alive* tokens whose waiting chain crossed a crashed
        node: the coordinator rebuilds the chain from the surviving
        requesters, and the holder adopts its head as ``next`` — handing
        the token over immediately when idle — and its tail as probable
        owner, so later requests are forwarded to the chain's end just as
        if it had been built by normal requests.
        """
        if not self._has_token:  # pragma: no cover - defensive
            return
        self.owner = probable_owner if probable_owner != self.node_id else None
        if successor is None:
            return
        if self._in_cs or self._requesting:
            self.next = successor
        else:
            self.next = None
            self._hand_token(successor)

    def fence_token(self, owner: Optional[int], epoch: int = 0) -> None:
        """Discard stale ownership: the token was regenerated while down.

        Called on reboot, before :meth:`reset_after_crash`, so the reboot
        handler can never hand out a token that now lives elsewhere; the
        witnessed ``epoch`` is advanced so a stale in-flight copy
        arriving after the reboot is ignored too.
        """
        self._has_token = False
        self.next = None
        self.owner = owner
        self._token_epoch = max(self._token_epoch, epoch)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _hand_token(self, dest: int) -> None:
        """Give the token up and put it on the wire toward ``dest``.

        The single place the token leaves this node: disowning before
        sending and carrying the payload and the witnessed fencing epoch
        are invariants every hand-off shares (callers handle their own
        ``owner``/``next`` bookkeeping, which differs per site).
        """
        self._has_token = False
        self._send(dest, NTToken(self.instance_id, self.token_payload, self._token_epoch))

    def _enter_cs(self) -> None:
        self._in_cs = True
        callback = self._on_acquired
        self._on_acquired = None
        if callback is not None:
            callback()
