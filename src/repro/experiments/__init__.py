"""Experiment harness.

Glues together workload generation, the algorithm implementations and the
metrics collector, and provides the sweep drivers that regenerate every
figure of the paper's evaluation (see DESIGN.md for the experiment index).
"""

from repro.experiments.driver import ClosedLoopClient, OpenLoopClient
from repro.experiments.registry import (
    ALGORITHMS,
    ALGORITHM_LABELS,
    AlgorithmDef,
    available_algorithms,
    build_allocators,
    get_algorithm,
    register_algorithm,
)
from repro.experiments.scenario import Scenario
from repro.experiments.runner import ExperimentResult, run, run_experiment
from repro.experiments.figures import (
    FigureSeries,
    figure5_use_rate,
    figure6_waiting_time,
    figure7_waiting_by_size,
)
from repro.experiments.report import format_figure5, format_figure6, format_figure7, format_table

__all__ = [
    "ClosedLoopClient",
    "OpenLoopClient",
    "ALGORITHMS",
    "ALGORITHM_LABELS",
    "AlgorithmDef",
    "available_algorithms",
    "build_allocators",
    "get_algorithm",
    "register_algorithm",
    "Scenario",
    "ExperimentResult",
    "run",
    "run_experiment",
    "FigureSeries",
    "figure5_use_rate",
    "figure6_waiting_time",
    "figure7_waiting_by_size",
    "format_table",
    "format_figure5",
    "format_figure6",
    "format_figure7",
]
