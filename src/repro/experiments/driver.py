"""Closed-loop workload driver.

One :class:`ClosedLoopClient` sits on top of each process's allocator and
replays the process's request stream: think -> request -> critical section
-> release -> think -> ...  (the closed system of Section 5.1).  It reports
every lifecycle event to the shared :class:`~repro.metrics.collector.MetricsCollector`,
which also performs the online safety check.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.allocator import MultiResourceAllocator
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.workload.generator import RequestSpec


class ClosedLoopClient:
    """Drives one process through its workload.

    Parameters
    ----------
    sim:
        Simulation engine.
    process:
        Process id (matches the allocator's node id).
    allocator:
        The protocol endpoint of this process.
    requests:
        Iterator of :class:`RequestSpec` — either an infinite
        :class:`~repro.workload.generator.WorkloadStream` or a finite
        scripted list (an exhausted iterator simply stops the client).
    metrics:
        Shared collector.
    stop_issuing_at:
        No new request is issued at or after this simulated time; requests
        already issued run to completion.
    max_requests:
        Optional hard cap on the number of requests this client issues.
    """

    def __init__(
        self,
        sim: Simulator,
        process: int,
        allocator: MultiResourceAllocator,
        requests: Iterator[RequestSpec],
        metrics: MetricsCollector,
        stop_issuing_at: float,
        max_requests: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.process = process
        self.allocator = allocator
        self.requests = iter(requests)
        self.metrics = metrics
        self.stop_issuing_at = stop_issuing_at
        self.max_requests = max_requests
        self.issued = 0
        self.completed = 0
        self._current: Optional[RequestSpec] = None
        self._stopped = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Schedule the first request of this client."""
        self._schedule_next()

    @property
    def stopped(self) -> bool:
        """Whether the client has stopped issuing new requests."""
        return self._stopped

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _schedule_next(self) -> None:
        if self.max_requests is not None and self.issued >= self.max_requests:
            self._stopped = True
            return
        try:
            spec = next(self.requests)
        except StopIteration:
            self._stopped = True
            return
        self._current = spec
        self.sim.schedule(spec.think_time, self._issue)

    def _issue(self) -> None:
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        if self.sim.now >= self.stop_issuing_at:
            self._stopped = True
            return
        self.issued += 1
        self.metrics.on_issue(self.sim.now, self.process, spec.index, spec.resources)
        self.allocator.acquire(spec.resources, self._on_granted)

    def _on_granted(self) -> None:
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        self.metrics.on_grant(self.sim.now, self.process, spec.index)
        self.sim.schedule(spec.cs_duration, self._on_cs_done)

    def _on_cs_done(self) -> None:
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        # Record the release before letting the protocol hand resources to
        # the next process, so same-timestamp grants never look like
        # safety violations.
        self.metrics.on_release(self.sim.now, self.process, spec.index)
        self.completed += 1
        self._current = None
        self.allocator.release()
        self._schedule_next()
