"""Closed-loop workload driver.

One :class:`ClosedLoopClient` sits on top of each process's allocator and
replays the process's request stream: think -> request -> critical section
-> release -> think -> ...  (the closed system of Section 5.1).  It reports
every lifecycle event to the shared :class:`~repro.metrics.collector.MetricsCollector`,
which also performs the online safety check.

The client is also a crash-lifecycle participant
(:mod:`repro.sim.lifecycle`): when its node goes down it cancels the
think-time / critical-section timer it owns and reports an interrupted
critical section to the collector (:meth:`MetricsCollector.on_abort`);
when the node reboots it resumes issuing from the next request of its
stream — provided the allocator came back idle (protocols without a
reboot handler stop issuing instead of crashing the run).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.allocator import MultiResourceAllocator
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Event, Simulator
from repro.workload.generator import RequestSpec


class ClosedLoopClient:
    """Drives one process through its workload.

    Parameters
    ----------
    sim:
        Simulation engine.
    process:
        Process id (matches the allocator's node id).
    allocator:
        The protocol endpoint of this process.
    requests:
        Iterator of :class:`RequestSpec` — either an infinite
        :class:`~repro.workload.generator.WorkloadStream` or a finite
        scripted list (an exhausted iterator simply stops the client).
    metrics:
        Shared collector.
    stop_issuing_at:
        No new request is issued at or after this simulated time; requests
        already issued run to completion.
    max_requests:
        Optional hard cap on the number of requests this client issues.
    """

    def __init__(
        self,
        sim: Simulator,
        process: int,
        allocator: MultiResourceAllocator,
        requests: Iterator[RequestSpec],
        metrics: MetricsCollector,
        stop_issuing_at: float,
        max_requests: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.process = process
        self.allocator = allocator
        self.requests = iter(requests)
        self.metrics = metrics
        self.stop_issuing_at = stop_issuing_at
        self.max_requests = max_requests
        self.issued = 0
        self.completed = 0
        self._current: Optional[RequestSpec] = None
        self._stopped = False
        # Timer this client currently owns (think-time or CS-duration
        # event), kept so a crash can suspend it; None while the
        # allocator owns the request (waiting for the grant).
        self._timer: Optional[Event] = None
        self._in_cs = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Schedule the first request of this client."""
        self._schedule_next()

    @property
    def stopped(self) -> bool:
        """Whether the client has stopped issuing new requests."""
        return self._stopped

    # ------------------------------------------------------------------ #
    # crash lifecycle
    # ------------------------------------------------------------------ #
    def on_crash(self, time: float) -> None:
        """The node went down: suspend timers, abort an interrupted CS.

        A request waiting for its grant is simply abandoned (the
        rebooting allocator forgets it; the record stays ungranted); a
        request inside its critical section is *aborted* — the collector
        frees its resources at the crash instant and the request counts
        as incomplete.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        spec = self._current
        if self._in_cs and spec is not None:
            self.metrics.on_abort(time, self.process, spec.index)
            self._in_cs = False
        self._current = None

    def on_recover(self, time: float) -> None:
        """The node rebooted: resume the closed loop with a fresh request.

        Runs after the allocator's own recovery handler (participants are
        notified allocator-first), so an idle allocator is ready for the
        next ``acquire``.  An allocator still inside a critical section
        here is parked in the one the crash aborted — only possible for
        a protocol without a reboot handler, which kept its CS across
        the outage — and is released first: nobody is running that CS,
        and the resources it holds would wedge every other node forever.
        If the allocator still did not come back idle, the client stops
        issuing instead of raising on the next acquire.
        """
        if self._stopped:
            return
        if self.allocator.in_critical_section:
            self.allocator.release()
        if not self.allocator.is_idle:
            self._stopped = True
            return
        self._schedule_next()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _schedule_next(self) -> None:
        if self.max_requests is not None and self.issued >= self.max_requests:
            self._stopped = True
            return
        try:
            spec = next(self.requests)
        except StopIteration:
            self._stopped = True
            return
        self._current = spec
        self._timer = self.sim.schedule(spec.think_time, self._issue)

    def _issue(self) -> None:
        self._timer = None
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        if self.sim.now >= self.stop_issuing_at:
            self._stopped = True
            return
        self.issued += 1
        self.metrics.on_issue(self.sim.now, self.process, spec.index, spec.resources)
        self.allocator.acquire(spec.resources, self._on_granted)

    def _on_granted(self) -> None:
        spec = self._current
        if spec is None:
            # The request was abandoned by a crash, but the allocator's
            # distributed acquisition completed anyway: an allocator
            # without a reboot handler keeps its grant callback across
            # the outage.  The grant is not recorded (the request died
            # with the crash) — but the resources must not stay held by
            # a critical section nobody is running, so release them
            # straight back to the protocol.
            self.allocator.release()
            return
        self.metrics.on_grant(self.sim.now, self.process, spec.index)
        self._in_cs = True
        self._timer = self.sim.schedule(spec.cs_duration, self._on_cs_done)

    def _on_cs_done(self) -> None:
        self._timer = None
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        # Record the release before letting the protocol hand resources to
        # the next process, so same-timestamp grants never look like
        # safety violations.
        self.metrics.on_release(self.sim.now, self.process, spec.index)
        self.completed += 1
        self._in_cs = False
        self._current = None
        self.allocator.release()
        self._schedule_next()
