"""Workload drivers: closed-loop and open-loop clients.

One :class:`ClosedLoopClient` sits on top of each process's allocator and
replays the process's request stream: think -> request -> critical section
-> release -> think -> ...  (the closed system of Section 5.1).  It reports
every lifecycle event to the shared :class:`~repro.metrics.collector.MetricsCollector`,
which also performs the online safety check.

:class:`OpenLoopClient` drives the same allocator/metrics machinery from
an *open-loop* stream (:class:`~repro.workload.spec.OpenLoopSpec` /
:class:`~repro.workload.spec.TraceReplaySpec`): request arrivals are
externally timed — ``RequestSpec.think_time`` is the gap since the
previous *arrival*, not the previous completion — so a slow protocol
builds a client-side backlog instead of throttling its own load.
Waiting time then measures arrival-to-grant, backlog included.

The client is also a crash-lifecycle participant
(:mod:`repro.sim.lifecycle`): when its node goes down it cancels the
think-time / critical-section timer it owns and reports an interrupted
critical section to the collector (:meth:`MetricsCollector.on_abort`);
when the node reboots it resumes issuing from the next request of its
stream — provided the allocator came back idle (protocols without a
reboot handler stop issuing instead of crashing the run).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional

from repro.allocator import MultiResourceAllocator
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Event, Simulator
from repro.workload.generator import RequestSpec


class ClosedLoopClient:
    """Drives one process through its workload.

    Parameters
    ----------
    sim:
        Simulation engine.
    process:
        Process id (matches the allocator's node id).
    allocator:
        The protocol endpoint of this process.
    requests:
        Iterator of :class:`RequestSpec` — either an infinite
        :class:`~repro.workload.generator.WorkloadStream` or a finite
        scripted list (an exhausted iterator simply stops the client).
    metrics:
        Shared collector.
    stop_issuing_at:
        No new request is issued at or after this simulated time; requests
        already issued run to completion.
    max_requests:
        Optional hard cap on the number of requests this client issues.
    fast_timers:
        When true, think-time and CS-duration timers go through the
        engine's no-handle :meth:`~repro.sim.engine.Simulator.post_in`
        fast path instead of allocating a cancellable
        :class:`~repro.sim.engine.Event` per state transition.  Only
        valid for runs that can never crash this node (no crash windows):
        the handle exists solely so :meth:`on_crash` can suspend the
        timer.  Timings and results are identical either way.
    """

    def __init__(
        self,
        sim: Simulator,
        process: int,
        allocator: MultiResourceAllocator,
        requests: Iterator[RequestSpec],
        metrics: MetricsCollector,
        stop_issuing_at: float,
        max_requests: Optional[int] = None,
        fast_timers: bool = False,
    ) -> None:
        self.sim = sim
        self.process = process
        self.allocator = allocator
        self.requests = iter(requests)
        self.metrics = metrics
        self.stop_issuing_at = stop_issuing_at
        self.max_requests = max_requests
        self.issued = 0
        self.completed = 0
        self._current: Optional[RequestSpec] = None
        self._stopped = False
        # Timer this client currently owns (think-time or CS-duration
        # event), kept so a crash can suspend it; None while the
        # allocator owns the request (waiting for the grant).
        self._timer: Optional[Event] = None
        self._fast_timers = fast_timers
        self._in_cs = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Schedule the first request of this client."""
        self._schedule_next()

    @property
    def stopped(self) -> bool:
        """Whether the client has stopped issuing new requests."""
        return self._stopped

    # ------------------------------------------------------------------ #
    # crash lifecycle
    # ------------------------------------------------------------------ #
    def on_crash(self, time: float) -> None:
        """The node went down: suspend timers, abort an interrupted CS.

        A request waiting for its grant is simply abandoned (the
        rebooting allocator forgets it; the record stays ungranted); a
        request inside its critical section is *aborted* — the collector
        frees its resources at the crash instant and the request counts
        as incomplete.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        spec = self._current
        if self._in_cs and spec is not None:
            self.metrics.on_abort(time, self.process, spec.index)
            self._in_cs = False
        self._current = None

    def on_recover(self, time: float) -> None:
        """The node rebooted: resume the closed loop with a fresh request.

        Runs after the allocator's own recovery handler (participants are
        notified allocator-first), so an idle allocator is ready for the
        next ``acquire``.  An allocator still inside a critical section
        here is parked in the one the crash aborted — only possible for
        a protocol without a reboot handler, which kept its CS across
        the outage — and is released first: nobody is running that CS,
        and the resources it holds would wedge every other node forever.
        If the allocator still did not come back idle, the client stops
        issuing instead of raising on the next acquire.
        """
        if self._stopped:
            return
        if self.allocator.in_critical_section:
            self.allocator.release()
        if not self.allocator.is_idle:
            self._stopped = True
            return
        self._schedule_next()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _schedule_next(self) -> None:
        if self.max_requests is not None and self.issued >= self.max_requests:
            self._stopped = True
            return
        try:
            spec = next(self.requests)
        except StopIteration:
            self._stopped = True
            return
        self._current = spec
        if self._fast_timers:
            self.sim.post_in(spec.think_time, self._issue)
        else:
            self._timer = self.sim.schedule(spec.think_time, self._issue)

    def _issue(self) -> None:
        self._timer = None
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        if self.sim.now >= self.stop_issuing_at:
            self._stopped = True
            return
        self.issued += 1
        self.metrics.on_issue(self.sim.now, self.process, spec.index, spec.resources)
        self.allocator.acquire(spec.resources, self._on_granted)

    def _on_granted(self) -> None:
        spec = self._current
        if spec is None:
            # The request was abandoned by a crash, but the allocator's
            # distributed acquisition completed anyway: an allocator
            # without a reboot handler keeps its grant callback across
            # the outage.  The grant is not recorded (the request died
            # with the crash) — but the resources must not stay held by
            # a critical section nobody is running, so release them
            # straight back to the protocol.
            self.allocator.release()
            return
        self.metrics.on_grant(self.sim.now, self.process, spec.index)
        self._in_cs = True
        if self._fast_timers:
            self.sim.post_in(spec.cs_duration, self._on_cs_done)
        else:
            self._timer = self.sim.schedule(spec.cs_duration, self._on_cs_done)

    def _on_cs_done(self) -> None:
        self._timer = None
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        # Record the release before letting the protocol hand resources to
        # the next process, so same-timestamp grants never look like
        # safety violations.
        self.metrics.on_release(self.sim.now, self.process, spec.index)
        self.completed += 1
        self._in_cs = False
        self._current = None
        self.allocator.release()
        self._schedule_next()


class OpenLoopClient:
    """Drives one process from externally timed arrivals.

    Arrivals are scheduled from the stream's inter-arrival gaps
    regardless of how earlier requests are progressing; a request whose
    allocator is still busy queues client-side (FIFO) and is dispatched
    when the previous critical section completes.  The collector's
    ``on_issue`` fires at *arrival* time, so the measured waiting time is
    arrival-to-grant — queueing backlog plus protocol latency — which is
    the quantity an open system's users experience.

    Constructor parameters match :class:`ClosedLoopClient` (including
    ``fast_timers`` for crash-free runs); ``requests`` must yield specs
    whose ``think_time`` is the gap since the previous arrival (the
    open-loop convention of :mod:`repro.workload.spec`).
    """

    def __init__(
        self,
        sim: Simulator,
        process: int,
        allocator: MultiResourceAllocator,
        requests: Iterator[RequestSpec],
        metrics: MetricsCollector,
        stop_issuing_at: float,
        max_requests: Optional[int] = None,
        fast_timers: bool = False,
    ) -> None:
        self.sim = sim
        self.process = process
        self.allocator = allocator
        self.requests = iter(requests)
        self.metrics = metrics
        self.stop_issuing_at = stop_issuing_at
        self.max_requests = max_requests
        self.issued = 0
        self.completed = 0
        #: Largest client-side backlog observed (arrived, not yet
        #: dispatched to the allocator) — an overload indicator.
        self.max_backlog = 0
        self._queue: Deque[RequestSpec] = deque()
        self._pending: Optional[RequestSpec] = None  # next arrival, timer armed
        self._current: Optional[RequestSpec] = None  # with the allocator / in CS
        self._stopped = False
        self._arrival_timer: Optional[Event] = None
        self._cs_timer: Optional[Event] = None
        self._fast_timers = fast_timers
        self._in_cs = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Arm the first arrival of this client."""
        self._schedule_arrival()

    @property
    def stopped(self) -> bool:
        """Whether the client has stopped admitting new arrivals."""
        return self._stopped

    @property
    def backlog(self) -> int:
        """Requests arrived but not yet handed to the allocator."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # crash lifecycle
    # ------------------------------------------------------------------ #
    def on_crash(self, time: float) -> None:
        """The node went down: drop timers, backlog and any interrupted CS.

        Queued arrivals die with the node (their records stay ungranted
        and count as incomplete), a request waiting for its grant is
        abandoned, and a request inside its CS is aborted so the
        collector frees its resources at the crash instant.
        """
        if self._arrival_timer is not None:
            self._arrival_timer.cancel()
            self._arrival_timer = None
        if self._cs_timer is not None:
            self._cs_timer.cancel()
            self._cs_timer = None
        spec = self._current
        if self._in_cs and spec is not None:
            self.metrics.on_abort(time, self.process, spec.index)
            self._in_cs = False
        self._current = None
        self._pending = None
        self._queue.clear()

    def on_recover(self, time: float) -> None:
        """The node rebooted: resume arrivals from the next stream entry.

        Mirrors :meth:`ClosedLoopClient.on_recover`: a stale critical
        section kept across the outage is released first, and if the
        allocator still is not idle the client stops instead of raising
        on the next acquire.
        """
        if self._stopped:
            return
        if self.allocator.in_critical_section:
            self.allocator.release()
        if not self.allocator.is_idle:
            self._stopped = True
            return
        self._schedule_arrival()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _schedule_arrival(self) -> None:
        if self.max_requests is not None and self.issued >= self.max_requests:
            self._stopped = True
            return
        try:
            spec = next(self.requests)
        except StopIteration:
            self._stopped = True
            return
        self._pending = spec
        if self._fast_timers:
            self.sim.post_in(spec.think_time, self._on_arrival)
        else:
            self._arrival_timer = self.sim.schedule(spec.think_time, self._on_arrival)

    def _on_arrival(self) -> None:
        self._arrival_timer = None
        spec = self._pending
        self._pending = None
        if spec is None:  # pragma: no cover - defensive
            return
        if self.sim.now >= self.stop_issuing_at:
            self._stopped = True
            return
        self.issued += 1
        self.metrics.on_issue(self.sim.now, self.process, spec.index, spec.resources)
        self._queue.append(spec)
        if len(self._queue) > self.max_backlog:
            self.max_backlog = len(self._queue)
        # Arrivals keep coming whatever the service is doing — that is
        # the open loop.  The next arrival is armed before dispatch so
        # a same-instant grant cannot delay the arrival process.
        self._schedule_arrival()
        if self._current is None:
            self._dispatch()

    def _dispatch(self) -> None:
        spec = self._queue.popleft()
        self._current = spec
        self.allocator.acquire(spec.resources, self._on_granted)

    def _on_granted(self) -> None:
        spec = self._current
        if spec is None:
            # Grant for a request abandoned by a crash (see
            # ClosedLoopClient._on_granted): hand the resources straight
            # back so nobody holds a CS that is not running.
            self.allocator.release()
            return
        self.metrics.on_grant(self.sim.now, self.process, spec.index)
        self._in_cs = True
        if self._fast_timers:
            self.sim.post_in(spec.cs_duration, self._on_cs_done)
        else:
            self._cs_timer = self.sim.schedule(spec.cs_duration, self._on_cs_done)

    def _on_cs_done(self) -> None:
        self._cs_timer = None
        spec = self._current
        if spec is None:  # pragma: no cover - defensive
            return
        # Release recorded before the protocol moves the resources on,
        # exactly like the closed-loop client.
        self.metrics.on_release(self.sim.now, self.process, spec.index)
        self.completed += 1
        self._in_cs = False
        self._current = None
        self.allocator.release()
        if self._queue:
            self._dispatch()
