"""Sweep drivers regenerating the figures of the paper's evaluation.

Each driver expresses its grid declaratively — a base
:class:`~repro.experiments.scenario.Scenario` expanded with
:meth:`Scenario.sweep` over (algorithm × phi × seed) axes — and submits
the scenarios through :mod:`repro.parallel`.  Pass ``workers=N`` to fan
the independent runs out over ``N`` processes (``workers=1``, the
default, is the serial reference path and produces bit-identical series),
or pass a shared :class:`~repro.parallel.executor.SweepExecutor` to reuse
one run cache across several figures (the scenario content hash is the
cache key, so grid points shared between figures are simulated once).

Each function returns a :class:`FigureSeries` holding the raw numbers; the
textual rendering (the "rows/series the paper reports") is produced by
:mod:`repro.experiments.report`.

The default parameters reproduce the paper's configuration (N=32, M=80,
alpha in [5, 35] ms, gamma = 0.6 ms); pass a scaled-down
:class:`~repro.workload.params.WorkloadParams` for quick runs, as the
benchmark suite does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.registry import ALGORITHMS
from repro.experiments.runner import FIGURE7_SIZE_BUCKETS, ExperimentResult, run_experiment
from repro.experiments.scenario import Scenario
from repro.parallel.executor import SweepExecutor
from repro.workload.params import LoadLevel, WorkloadParams

__all__ = [
    "DEFAULT_PHI_SWEEP",
    "FIGURE5_ALGORITHMS",
    "FIGURE67_ALGORITHMS",
    "FigureSeries",
    "figure5_use_rate",
    "figure6_waiting_time",
    "figure7_waiting_by_size",
    "run_experiment",
]

#: phi values swept by Figure 5 for M = 80 (the paper's x-axis spans 1..80).
DEFAULT_PHI_SWEEP: Sequence[int] = (1, 4, 8, 16, 24, 40, 60, 80)

#: Algorithms plotted in Figure 5 (all five curves).
FIGURE5_ALGORITHMS: Sequence[str] = tuple(ALGORITHMS)

#: Algorithms plotted in Figures 6 and 7 (the incremental algorithm is
#: omitted by the paper because its waiting time is off the chart).
FIGURE67_ALGORITHMS: Sequence[str] = ("bouabdallah", "without_loan", "with_loan")


@dataclass
class FigureSeries:
    """Raw data of one reproduced figure.

    ``series`` maps an algorithm name to a list of ``(x, y)`` points (or to
    richer tuples for Figure 7); ``results`` keeps the full per-run results
    for anyone who wants more detail than the figure shows.  Each result's
    request lifecycles are columnar
    (:class:`~repro.metrics.columns.RecordColumns`), so holding a whole
    sweep's worth of results stays cheap even for large grids; the figure
    numbers themselves come from ``result.metrics``, which is aggregated
    in-process at full double precision.
    """

    figure: str
    load: LoadLevel
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    errors: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    results: List[ExperimentResult] = field(default_factory=list)

    def series_for(self, algorithm: str) -> List[Tuple[float, float]]:
        """Points of one curve (empty list if the algorithm was not run)."""
        return self.series.get(algorithm, [])


def _submit(
    scenarios: Sequence[Scenario],
    workers: int,
    executor: Optional[SweepExecutor],
) -> List[ExperimentResult]:
    """Run the grid through the given executor (or a throwaway one)."""
    if executor is None:
        executor = SweepExecutor(workers=workers)
    return executor.run(scenarios)


def figure5_use_rate(
    load: LoadLevel = LoadLevel.MEDIUM,
    base_params: Optional[WorkloadParams] = None,
    phis: Sequence[int] = DEFAULT_PHI_SWEEP,
    algorithms: Sequence[str] = FIGURE5_ALGORITHMS,
    seeds: Sequence[int] = (1,),
    workers: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> FigureSeries:
    """Figure 5: resource-use rate as a function of the maximum request size.

    Returns one ``(phi, use_rate_percent)`` series per algorithm, averaged
    over ``seeds``.
    """
    params = base_params if base_params is not None else WorkloadParams()
    params = params.with_load(load)
    valid_phis = [phi for phi in phis if phi <= params.num_resources]
    out = FigureSeries(figure="figure5", load=load)
    if not algorithms or not valid_phis or not seeds:
        return out
    base = Scenario(algorithm=algorithms[0], params=params)
    grid = base.sweep(algorithm=algorithms, phi=valid_phis, seed=seeds)
    results = iter(_submit(grid, workers, executor))

    for algorithm in algorithms:
        points: List[Tuple[float, float]] = []
        for phi in valid_phis:
            rates = []
            for _seed in seeds:
                result = next(results)
                out.results.append(result)
                rates.append(result.use_rate)
            points.append((float(phi), sum(rates) / len(rates)))
        out.series[algorithm] = points
    return out


def figure6_waiting_time(
    load: LoadLevel = LoadLevel.MEDIUM,
    base_params: Optional[WorkloadParams] = None,
    algorithms: Sequence[str] = FIGURE67_ALGORITHMS,
    phi: int = 4,
    seeds: Sequence[int] = (1,),
    workers: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> FigureSeries:
    """Figure 6: average waiting time (and stddev) for small requests (phi=4).

    Each algorithm contributes a single bar: ``series[alg] = [(0, mean)]``
    and ``errors[alg] = [(0, stddev)]``.
    """
    params = base_params if base_params is not None else WorkloadParams()
    params = params.with_load(load).with_phi(phi)
    out = FigureSeries(figure="figure6", load=load)
    if not algorithms or not seeds:
        return out
    base = Scenario(algorithm=algorithms[0], params=params)
    grid = base.sweep(algorithm=algorithms, seed=seeds)
    results = iter(_submit(grid, workers, executor))

    for algorithm in algorithms:
        means, stds = [], []
        for _seed in seeds:
            result = next(results)
            out.results.append(result)
            means.append(result.metrics.waiting.mean)
            stds.append(result.metrics.waiting.stddev)
        out.series[algorithm] = [(0.0, sum(means) / len(means))]
        out.errors[algorithm] = [(0.0, sum(stds) / len(stds))]
    return out


def figure7_waiting_by_size(
    load: LoadLevel = LoadLevel.MEDIUM,
    base_params: Optional[WorkloadParams] = None,
    algorithms: Sequence[str] = FIGURE67_ALGORITHMS,
    phi: Optional[int] = None,
    size_buckets: Optional[Sequence[int]] = None,
    seeds: Sequence[int] = (1,),
    workers: int = 1,
    executor: Optional[SweepExecutor] = None,
) -> FigureSeries:
    """Figure 7: average waiting time per request-size class at phi = M.

    ``series[alg]`` holds ``(bucket_size, mean_waiting_time)`` points and
    ``errors[alg]`` the matching standard deviations.
    """
    params = base_params if base_params is not None else WorkloadParams()
    phi_value = phi if phi is not None else params.num_resources
    params = params.with_load(load).with_phi(phi_value)
    buckets = list(size_buckets) if size_buckets is not None else list(FIGURE7_SIZE_BUCKETS)
    buckets = [b for b in buckets if b <= params.num_resources] or [params.num_resources]
    out = FigureSeries(figure="figure7", load=load)
    if not algorithms or not seeds:
        return out
    base = Scenario(algorithm=algorithms[0], params=params, size_buckets=tuple(buckets))
    grid = base.sweep(algorithm=algorithms, seed=seeds)
    results = iter(_submit(grid, workers, executor))

    for algorithm in algorithms:
        sums: Dict[int, List[float]] = {b: [] for b in buckets}
        devs: Dict[int, List[float]] = {b: [] for b in buckets}
        for _seed in seeds:
            result = next(results)
            out.results.append(result)
            for bucket, stats in result.metrics.waiting_by_size.items():
                if bucket in sums and stats.count:
                    sums[bucket].append(stats.mean)
                    devs[bucket].append(stats.stddev)
        out.series[algorithm] = [
            (float(b), sum(sums[b]) / len(sums[b])) for b in buckets if sums[b]
        ]
        out.errors[algorithm] = [
            (float(b), sum(devs[b]) / len(devs[b])) for b in buckets if devs[b]
        ]
    return out
