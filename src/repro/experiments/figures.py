"""Sweep drivers regenerating the figures of the paper's evaluation.

Each function returns a :class:`FigureSeries` holding the raw numbers; the
textual rendering (the "rows/series the paper reports") is produced by
:mod:`repro.experiments.report`.

The default parameters reproduce the paper's configuration (N=32, M=80,
alpha in [5, 35] ms, gamma = 0.6 ms); pass a scaled-down
:class:`~repro.workload.params.WorkloadParams` for quick runs, as the
benchmark suite does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.registry import ALGORITHMS
from repro.experiments.runner import FIGURE7_SIZE_BUCKETS, ExperimentResult, run_experiment
from repro.workload.params import LoadLevel, WorkloadParams

#: phi values swept by Figure 5 for M = 80 (the paper's x-axis spans 1..80).
DEFAULT_PHI_SWEEP: Sequence[int] = (1, 4, 8, 16, 24, 40, 60, 80)

#: Algorithms plotted in Figure 5 (all five curves).
FIGURE5_ALGORITHMS: Sequence[str] = tuple(ALGORITHMS)

#: Algorithms plotted in Figures 6 and 7 (the incremental algorithm is
#: omitted by the paper because its waiting time is off the chart).
FIGURE67_ALGORITHMS: Sequence[str] = ("bouabdallah", "without_loan", "with_loan")


@dataclass
class FigureSeries:
    """Raw data of one reproduced figure.

    ``series`` maps an algorithm name to a list of ``(x, y)`` points (or to
    richer tuples for Figure 7); ``results`` keeps the full per-run results
    for anyone who wants more detail than the figure shows.
    """

    figure: str
    load: LoadLevel
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    errors: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    results: List[ExperimentResult] = field(default_factory=list)

    def series_for(self, algorithm: str) -> List[Tuple[float, float]]:
        """Points of one curve (empty list if the algorithm was not run)."""
        return self.series.get(algorithm, [])


def figure5_use_rate(
    load: LoadLevel = LoadLevel.MEDIUM,
    base_params: Optional[WorkloadParams] = None,
    phis: Sequence[int] = DEFAULT_PHI_SWEEP,
    algorithms: Sequence[str] = FIGURE5_ALGORITHMS,
    seeds: Sequence[int] = (1,),
) -> FigureSeries:
    """Figure 5: resource-use rate as a function of the maximum request size.

    Returns one ``(phi, use_rate_percent)`` series per algorithm, averaged
    over ``seeds``.
    """
    params = base_params if base_params is not None else WorkloadParams()
    params = params.with_load(load)
    out = FigureSeries(figure="figure5", load=load)
    for algorithm in algorithms:
        points: List[Tuple[float, float]] = []
        for phi in phis:
            if phi > params.num_resources:
                continue
            rates = []
            for seed in seeds:
                result = run_experiment(algorithm, params.with_phi(phi).with_seed(seed))
                out.results.append(result)
                rates.append(result.use_rate)
            points.append((float(phi), sum(rates) / len(rates)))
        out.series[algorithm] = points
    return out


def figure6_waiting_time(
    load: LoadLevel = LoadLevel.MEDIUM,
    base_params: Optional[WorkloadParams] = None,
    algorithms: Sequence[str] = FIGURE67_ALGORITHMS,
    phi: int = 4,
    seeds: Sequence[int] = (1,),
) -> FigureSeries:
    """Figure 6: average waiting time (and stddev) for small requests (phi=4).

    Each algorithm contributes a single bar: ``series[alg] = [(0, mean)]``
    and ``errors[alg] = [(0, stddev)]``.
    """
    params = base_params if base_params is not None else WorkloadParams()
    params = params.with_load(load).with_phi(phi)
    out = FigureSeries(figure="figure6", load=load)
    for algorithm in algorithms:
        means, stds = [], []
        for seed in seeds:
            result = run_experiment(algorithm, params.with_seed(seed))
            out.results.append(result)
            means.append(result.metrics.waiting.mean)
            stds.append(result.metrics.waiting.stddev)
        out.series[algorithm] = [(0.0, sum(means) / len(means))]
        out.errors[algorithm] = [(0.0, sum(stds) / len(stds))]
    return out


def figure7_waiting_by_size(
    load: LoadLevel = LoadLevel.MEDIUM,
    base_params: Optional[WorkloadParams] = None,
    algorithms: Sequence[str] = FIGURE67_ALGORITHMS,
    phi: Optional[int] = None,
    size_buckets: Optional[Sequence[int]] = None,
    seeds: Sequence[int] = (1,),
) -> FigureSeries:
    """Figure 7: average waiting time per request-size class at phi = M.

    ``series[alg]`` holds ``(bucket_size, mean_waiting_time)`` points and
    ``errors[alg]`` the matching standard deviations.
    """
    params = base_params if base_params is not None else WorkloadParams()
    phi_value = phi if phi is not None else params.num_resources
    params = params.with_load(load).with_phi(phi_value)
    buckets = list(size_buckets) if size_buckets is not None else list(FIGURE7_SIZE_BUCKETS)
    buckets = [b for b in buckets if b <= params.num_resources] or [params.num_resources]
    out = FigureSeries(figure="figure7", load=load)
    for algorithm in algorithms:
        sums: Dict[int, List[float]] = {b: [] for b in buckets}
        devs: Dict[int, List[float]] = {b: [] for b in buckets}
        for seed in seeds:
            result = run_experiment(
                algorithm, params.with_seed(seed), size_buckets=buckets
            )
            out.results.append(result)
            for bucket, stats in result.metrics.waiting_by_size.items():
                if bucket in sums and stats.count:
                    sums[bucket].append(stats.mean)
                    devs[bucket].append(stats.stddev)
        out.series[algorithm] = [
            (float(b), sum(sums[b]) / len(sums[b])) for b in buckets if sums[b]
        ]
        out.errors[algorithm] = [
            (float(b), sum(devs[b]) / len(devs[b])) for b in buckets if devs[b]
        ]
    return out
