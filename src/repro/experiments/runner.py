"""Single-experiment runner.

:func:`run` is the Scenario-API entrypoint: it takes a declarative
:class:`~repro.experiments.scenario.Scenario`, builds the whole system
(simulator, network, allocators, workload clients, metrics), runs it to
completion and returns an :class:`ExperimentResult` with the paper's
metrics plus message accounting.  Every sweep driver in
:mod:`repro.experiments.figures` and every benchmark funnels through it —
directly or through :mod:`repro.parallel`, where the scenario also serves
as the memoisation key.

:func:`run_experiment` is the pre-Scenario keyword interface, kept as a
thin compatibility shim: it folds its keyword soup into a scenario and
delegates to the same engine (see README.md for the migration table).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.recovery import RecoveryCoordinator
from repro.experiments.driver import ClosedLoopClient, OpenLoopClient
from repro.experiments.registry import (
    DEFAULT_RESEND_INTERVAL,
    config_from_overrides,
    get_algorithm,
)
from repro.experiments.scenario import Scenario
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.columns import ChunkedColumns, DowntimeColumns, RecordColumns
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.latencyspec import ConstantLatencySpec, LatencySpec
from repro.sim.lifecycle import NodeLifecycle
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder
from repro.workload.params import WorkloadParams
from repro.workload.spec import SyntheticSpec

#: Size classes reported by Figure 7 of the paper (for M = 80).
FIGURE7_SIZE_BUCKETS = [1, 17, 33, 49, 65, 80]


def default_max_events(
    params: WorkloadParams, expected_requests: Optional[int] = None
) -> int:
    """Default event-count safety valve for a run of ``params``.

    Generous upper bound: each request costs a bounded number of protocol
    messages plus a handful of client events.  Exceeding it indicates a
    livelock in the protocol under test, not a long workload.

    ``expected_requests`` overrides the closed-loop think-time estimate —
    open-loop and trace workloads report their own offered volume through
    :meth:`~repro.workload.spec.Workload.expected_requests`, which would
    otherwise be wildly misestimated by the ``beta``-based formula.
    """
    if expected_requests is None:
        expected_requests = max(
            1,
            int(params.num_processes * params.duration / max(params.beta + params.alpha_min, 1.0)),
        )
    per_request = 40 + 12 * min(params.phi, params.num_resources)
    return max(200_000, expected_requests * per_request * 4)


def fault_run_until(params: WorkloadParams) -> float:
    """Simulated-time cap applied to runs with an active fault layer.

    Without faults a run terminates when the event queue drains; with
    them a stalled protocol (a lost token, a crashed holder) re-arms its
    resend timers forever, so the queue never drains.  The cap is
    deterministic in the params — part of the scenario's semantics, not
    of who runs it — and deliberately generous: one full workload
    duration of grace plus far more than the worst-case serial drain of
    every process's last critical section, so a run whose faults dropped
    little (or nothing) completes its natural tail instead of having it
    clipped and miscounted as a liveness failure.
    """
    return 2.0 * params.duration + 20.0 * params.num_processes * params.alpha_max


@dataclass
class ExperimentResult:
    """Everything produced by one experiment run.

    Per-request lifecycles live in ``record_columns``, a struct-of-arrays
    :class:`~repro.metrics.columns.RecordColumns` (sorted by
    ``(process, index)``, float32 times) that is cheap to pickle across
    the worker-pool boundary and into the run cache; :attr:`records`
    exposes the same rows as lazy ``RequestRecord`` views for code that
    iterated or indexed the old record list.

    ``trace`` is process-local: it is only populated on in-process runs
    (``collect_trace=True`` through :func:`run` / ``run_experiment``) and
    is stripped from any result shipped back from a worker process or
    stored in a :class:`~repro.parallel.cache.RunCache`.
    """

    algorithm: str
    params: WorkloadParams
    metrics: RunMetrics
    trace: Optional[TraceRecorder]
    simulated_time: float
    events_processed: int
    #: Request lifecycles: a ``(process, index)``-sorted
    #: :class:`RecordColumns`, or — for chunked scenarios
    #: (``record_chunk_rows``) — an issue-ordered
    #: :class:`~repro.metrics.columns.ChunkedColumns`.
    record_columns: "RecordColumns | ChunkedColumns"
    #: Messages lost to injected faults (0 under reliable links).
    messages_dropped: int = 0
    #: Safety-net re-sends issued by the core algorithm's resend timers.
    resend_count: int = 0
    #: Lost tokens rebuilt by the recovery protocol (requires a
    #: ``Scenario.detector``; 0 when crashes go undetected).
    tokens_regenerated: int = 0
    #: Total simulated time from crash to regeneration, summed over lost
    #: tokens (one detection delay per token rebuilt at its holder's
    #: detection, two per token needing a confirmation round).
    recovery_time: float = 0.0
    #: Per-node downtime columns (:class:`DowntimeColumns`); ``None`` when
    #: the scenario declares no crash windows at all.
    downtime: Optional[DowntimeColumns] = None
    #: End-of-run telemetry (a
    #: :class:`~repro.obs.metrics.TelemetrySnapshot` of plain tuples),
    #: populated only when the run asked for it via
    #: ``Scenario(telemetry=...)`` or ``$REPRO_TELEMETRY``; ``None``
    #: otherwise.  Picklable and deterministic, so it ships through the
    #: worker-pool path bit-identically to a ``workers=1`` run.
    telemetry: Optional[object] = None

    @property
    def records(self) -> RecordColumns:
        """Request lifecycles as a lazy sequence of ``RequestRecord`` views.

        Backed by :attr:`record_columns`: ``len``, iteration, integer
        indexing and slicing all work as they did on the old list, each
        access materialising a fresh view (mutations are not written
        back).  Times are float32 — sub-microsecond at the simulated-ms
        scale; exact doubles only exist on the in-process collector.
        """
        return self.record_columns

    @property
    def use_rate(self) -> float:
        """Resource-use rate in percent (Figure 5's y-axis)."""
        return self.metrics.use_rate

    @property
    def average_waiting_time(self) -> float:
        """Average waiting time in ms (Figures 6 and 7's y-axis)."""
        return self.metrics.waiting.mean

    @property
    def completion_rate(self) -> float:
        """Fraction of *issued* requests that completed (1.0 = full liveness).

        Caveat for fault studies: the workload is closed-loop, so a
        stalled process stops issuing and shrinks the denominator — a run
        that stalled early can still show a high rate.  For absolute
        throughput, compare ``metrics.completed`` against a reliable
        (``NoFaults``) run of the same scenario.
        """
        if self.metrics.issued == 0:
            return 1.0
        return self.metrics.completed / self.metrics.issued

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"[{self.params.describe()}] {self.metrics.describe()}"


def run(scenario: Scenario) -> ExperimentResult:
    """Run one declarative scenario to completion.

    The result is a pure function of the scenario: the latency spec is
    thawed into a live model here, randomness enters exclusively through
    ``scenario.params.seed``, and nothing is shared with any other run —
    which is what lets :mod:`repro.parallel` fan scenarios out over worker
    processes and memoise them by :meth:`Scenario.key`.
    """
    return _run(scenario.normalized(), latency_model=None)


def _run(scenario: Scenario, latency_model: Optional[LatencyModel]) -> ExperimentResult:
    """Engine shared by :func:`run` and the :func:`run_experiment` shim.

    ``latency_model`` is the compatibility escape hatch for pre-built
    :class:`LatencyModel` instances (which have no declarative form and
    therefore bypass the scenario's latency spec — and any content-hash
    cache).
    """
    algo = get_algorithm(scenario.algorithm)
    params = scenario.params

    # Scheduler choice is a pure performance knob (bit-identical results
    # across schedulers), which is why it may also come from the
    # REPRO_SCHEDULER environment variable without touching cache keys.
    sim = Simulator(scenario.scheduler)
    trace = TraceRecorder(enabled=True) if scenario.collect_trace else None
    network = None
    fault_model = None
    if algo.needs_network:
        if latency_model is None:
            spec = scenario.latency if scenario.latency is not None else ConstantLatencySpec()
            latency_model = spec.build(params)
        if scenario.faults is not None:
            fault_model = scenario.faults.build(params)
        network = Network(sim, latency_model, faults=fault_model)
    allocators = algo.make_allocators(scenario.config, params, sim, network, trace)

    metrics = MetricsCollector(
        params.num_resources,
        warmup=params.warmup,
        chunk_rows=scenario.record_chunk_rows,
        spill=scenario.record_spill,
    )
    # The workload axis thaws here, inside whatever process runs the
    # experiment — streams are lazy iterators, never materialised lists,
    # so nothing workload-sized crosses the worker-pool boundary.
    workload_spec = scenario.workload if scenario.workload is not None else SyntheticSpec()
    workload = workload_spec.build(params)
    client_type = ClosedLoopClient if workload.closed_loop else OpenLoopClient
    # Crash windows are needed up front: a client whose node can never
    # crash takes the no-handle timer fast path (its cancellable timer
    # handles exist only for on_crash to suspend), so only the clients
    # of nodes actually named in a window pay for Event handles.
    crash_windows = fault_model.crash_windows() if fault_model is not None else ()
    crash_nodes = {node for node, _, _ in crash_windows}
    clients = [
        client_type(
            sim,
            process=p,
            allocator=allocators[p],
            requests=workload.stream_for(p),
            metrics=metrics,
            stop_issuing_at=params.duration,
            max_requests=params.requests_per_process,
            fast_timers=p not in crash_nodes,
        )
        for p in range(params.num_processes)
    ]

    # Crash lifecycle: only instantiated when the fault model actually
    # declares node outages, so the no-crash path schedules exactly the
    # same events as the pre-lifecycle substrate (bit-identity).  The
    # lifecycle events are scheduled before the clients start, giving
    # them the lowest sequence numbers at their timestamps — a crash and
    # a protocol event at the same instant always resolve crash-first.
    lifecycle: Optional[NodeLifecycle] = None
    coordinator: Optional[RecoveryCoordinator] = None
    if crash_windows:
        participants = {
            p: [obj for obj in (allocators[p], clients[p]) if hasattr(obj, "on_crash")]
            for p in range(params.num_processes)
        }
        lifecycle = NodeLifecycle(sim, crash_windows, participants)
        detector_model = scenario.detector.build() if scenario.detector is not None else None
        if detector_model is not None:
            coordinator = RecoveryCoordinator(sim, allocators, lifecycle, detector_model)

    # Telemetry is the nullable seam of repro.obs: the explicit scenario
    # axis wins, otherwise the REPRO_TELEMETRY process override is
    # consulted (mirroring REPRO_SCHEDULER's precedence).  Nothing below
    # imports — or executes a single frame of — repro.obs unless a spec
    # actually resolved, which is what profile_run.py --check pins.
    telemetry_runtime = None
    telemetry_spec = scenario.telemetry
    telemetry_source = "scenario"
    if telemetry_spec is None:
        raw = os.environ.get("REPRO_TELEMETRY")
        if raw and raw.strip().lower() not in ("0", "off", "false", "no", "none"):
            from repro.obs.spec import telemetry_from_env

            telemetry_spec = telemetry_from_env()
            telemetry_source = "env"
    if telemetry_spec is not None:
        from repro.obs.runtime import TelemetryRuntime

        telemetry_runtime = TelemetryRuntime(
            telemetry_spec,
            sim,
            network=network,
            allocators=allocators,
            collector=metrics,
            clients=clients,
            coordinator=coordinator,
            source=telemetry_source,
        )
        metrics.telemetry = telemetry_runtime
        telemetry_runtime.start()

    for client in clients:
        client.start()

    max_events = scenario.max_events
    if max_events is None:
        max_events = default_max_events(
            params, expected_requests=workload.expected_requests()
        )

    if fault_model is None:
        sim.run(max_events=max_events)
    else:
        # An active fault layer can stall the protocol with its resend
        # timers still re-arming, so the queue never drains: cap the run
        # at a deterministic horizon instead (see fault_run_until).  The
        # cap is a stall guard, not a target — a run that drains before
        # it must report its real drain time, comparable to a reliable
        # run's, so the clock is not advanced to the cap.
        sim.run(
            until=fault_run_until(params), max_events=max_events, advance_to_until=False
        )

    horizon = min(params.duration, sim.now) if sim.now > params.warmup else sim.now
    messages_total = network.stats.total if network is not None else 0
    messages_by_type: Dict[str, int] = network.stats.snapshot() if network is not None else {}
    run_metrics = metrics.build(
        algorithm=scenario.algorithm,
        horizon=horizon,
        messages_total=messages_total,
        messages_by_type=messages_by_type,
        size_buckets=list(scenario.size_buckets) if scenario.size_buckets is not None else None,
        # Only materialised when crashes actually aborted a CS, keeping
        # no-fault RunMetrics byte-identical to the pre-lifecycle layout.
        extra={"aborted": float(metrics.aborted)} if metrics.aborted else None,
    )

    if scenario.require_all_completed and not metrics.all_completed():
        # incomplete_requests scans only the live columns (sealed chunks
        # are complete by construction), so this path never materialises
        # the full record set even on chunked multi-million-request runs.
        incomplete = metrics.incomplete_requests()
        raise RuntimeError(
            f"liveness failure: {len(incomplete)} request(s) never completed under "
            f"{scenario.algorithm!r} (first: process {incomplete[0][0]}, "
            f"index {incomplete[0][1]})"
        )

    return ExperimentResult(
        algorithm=scenario.algorithm,
        params=params,
        metrics=run_metrics,
        trace=trace,
        simulated_time=sim.now,
        events_processed=sim.processed_events,
        record_columns=metrics.result_columns(),
        messages_dropped=network.stats.dropped if network is not None else 0,
        resend_count=sum(getattr(a, "resend_count", 0) for a in allocators),
        tokens_regenerated=coordinator.tokens_regenerated if coordinator is not None else 0,
        recovery_time=coordinator.recovery_time if coordinator is not None else 0.0,
        downtime=lifecycle.downtime_columns(sim.now) if lifecycle is not None else None,
        telemetry=telemetry_runtime.finalize() if telemetry_runtime is not None else None,
    )


def run_experiment(
    algorithm: str,
    params: WorkloadParams,
    latency: Optional[LatencyModel] = None,
    policy: Optional[str] = None,
    loan_threshold: Optional[int] = None,
    collect_trace: bool = False,
    size_buckets: Optional[Sequence[int]] = None,
    max_events: Optional[int] = None,
    require_all_completed: bool = True,
    resend_interval: Optional[float] = DEFAULT_RESEND_INTERVAL,
) -> ExperimentResult:
    """Run one algorithm against one workload configuration.

    Compatibility shim over :func:`run`: the keyword arguments below are
    folded into a :class:`Scenario` (see README.md for the field-by-field
    migration table).  New code should build scenarios directly.

    Parameters
    ----------
    algorithm:
        One of :data:`repro.experiments.registry.ALGORITHMS` (or any name
        registered through ``register_algorithm``).
    params:
        Workload parameterisation (N, M, phi, load, duration, seed, ...).
    latency:
        Optional latency override: either a declarative
        :class:`~repro.sim.latencyspec.LatencySpec` or a pre-built
        :class:`LatencyModel` instance (defaults to the constant
        ``params.gamma``); ignored by ``shared_memory``.
    policy:
        Scheduling-function name for the core algorithm (ablation A2).
    loan_threshold:
        Loan threshold override for ``with_loan`` (ablation A1).
    collect_trace:
        Record a :class:`TraceRecorder` (needed for Gantt rendering).
    size_buckets:
        Request-size classes used to group waiting times (Figure 7).
    max_events:
        Safety valve passed to the simulator (defaults to
        :func:`default_max_events`, a generous bound derived from the
        workload size).
    require_all_completed:
        When true (default), raise if some issued request never completed —
        i.e. a liveness failure of the protocol under test.
    resend_interval:
        Safety-net re-send interval of the core algorithm; ``None``
        disables it (faithful-to-pseudo-code mode).
    """
    algo = get_algorithm(algorithm)
    config = config_from_overrides(
        algo, policy=policy, loan_threshold=loan_threshold, resend_interval=resend_interval
    )
    latency_spec: Optional[LatencySpec] = None
    latency_model: Optional[LatencyModel] = None
    if isinstance(latency, LatencySpec):
        latency_spec = latency
    elif latency is not None:
        latency_model = latency
    scenario = Scenario(
        algorithm=algorithm,
        params=params,
        config=config,
        latency=latency_spec,
        collect_trace=collect_trace,
        size_buckets=tuple(size_buckets) if size_buckets is not None else None,
        max_events=max_events,
        require_all_completed=require_all_completed,
    ).normalized()
    return _run(scenario, latency_model)
