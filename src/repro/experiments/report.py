"""Textual rendering of reproduced figures.

The paper's figures are line/bar charts; the harness prints the same data
as plain-text tables (one row per x value, one column per algorithm) so a
terminal run shows "the same rows/series the paper reports".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.figures import FigureSeries
from repro.experiments.registry import ALGORITHM_LABELS


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _label(algorithm: str) -> str:
    return ALGORITHM_LABELS.get(algorithm, algorithm)


def format_figure5(series: FigureSeries) -> str:
    """Figure 5 table: use rate (%) per phi per algorithm."""
    algorithms = list(series.series)
    xs = sorted({x for pts in series.series.values() for x, _ in pts})
    headers = ["phi"] + [_label(a) for a in algorithms]
    rows = []
    for x in xs:
        row: List[object] = [int(x)]
        for a in algorithms:
            value = dict(series.series[a]).get(x)
            row.append(value if value is not None else "-")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=f"Figure 5 ({series.load.value} load): resource use rate (%) vs. max request size",
    )


def format_figure6(series: FigureSeries) -> str:
    """Figure 6 table: average waiting time (ms) per algorithm at phi=4."""
    headers = ["algorithm", "avg waiting time (ms)", "stddev (ms)"]
    rows = []
    for a, pts in series.series.items():
        mean = pts[0][1] if pts else 0.0
        std = series.errors.get(a, [(0.0, 0.0)])[0][1]
        rows.append([_label(a), mean, std])
    return format_table(
        headers,
        rows,
        title=f"Figure 6 ({series.load.value} load): average waiting time, phi=4",
    )


def format_figure7(series: FigureSeries) -> str:
    """Figure 7 table: waiting time (ms) per request-size class per algorithm."""
    algorithms = list(series.series)
    buckets = sorted({x for pts in series.series.values() for x, _ in pts})
    headers = ["request size"] + [_label(a) for a in algorithms]
    rows = []
    for b in buckets:
        row: List[object] = [int(b)]
        for a in algorithms:
            value = dict(series.series[a]).get(b)
            row.append(value if value is not None else "-")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 7 ({series.load.value} load): average waiting time (ms) "
            "per request-size class, phi=M"
        ),
    )


def format_comparison(
    label_by_algorithm: Dict[str, float],
    metric_name: str,
    reference: str,
) -> str:
    """Render pairwise ratios against a reference algorithm.

    Used by EXPERIMENTS.md to report e.g. "use rate of with_loan /
    Bouabdallah-Laforest" across configurations.
    """
    if reference not in label_by_algorithm:
        raise KeyError(f"reference algorithm {reference!r} missing from results")
    ref = label_by_algorithm[reference]
    rows = []
    for algorithm, value in label_by_algorithm.items():
        ratio = value / ref if ref else float("inf")
        rows.append([_label(algorithm), value, ratio])
    return format_table(
        ["algorithm", metric_name, f"ratio vs {_label(reference)}"],
        rows,
    )
