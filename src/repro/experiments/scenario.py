"""Declarative experiment specifications.

A :class:`Scenario` captures *everything* one experiment run depends on —
the algorithm name, its frozen config spec, the workload parameters, a
declarative :class:`~repro.sim.latencyspec.LatencySpec` and the run
options — as a frozen, picklable, content-hashable value.  The runner's
:func:`~repro.experiments.runner.run` entrypoint turns a scenario into an
:class:`~repro.experiments.runner.ExperimentResult`, and because the
result is a pure function of the scenario, the scenario *is* the cache
key: :meth:`Scenario.key` drives both the in-memory and the on-disk
:class:`~repro.parallel.cache.RunCache` and the ``workers=1`` vs
``workers=N`` determinism guarantee of :mod:`repro.parallel`.

Grids are expressed with :meth:`Scenario.sweep`, which expands named axes
(scenario fields *or* workload-parameter fields) into the cartesian
product of scenarios, in deterministic row-major order::

    base = Scenario(algorithm="with_loan", params=WorkloadParams())
    grid = base.sweep(algorithm=("with_loan", "bouabdallah"),
                      phi=(1, 4, 8), seed=(1, 2, 3))
    results = run_sweep(grid, workers=4)

Content hashing canonicalises the spec first — dataclasses flattened
field by field, dicts sorted by key, sequences frozen to tuples, enums
replaced by their values — so the hash depends only on what the run
computes, never on object identity, dict insertion order or the process
computing it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.experiments.registry import get_algorithm
from repro.sim.detectorspec import DetectorSpec
from repro.sim.faultspec import FaultSpec, NoFaults
from repro.sim.latencyspec import ConstantLatencySpec, LatencySpec
from repro.workload.params import WorkloadParams
from repro.workload.spec import SyntheticSpec, WorkloadSpec

__all__ = ["Scenario", "canonical", "content_hash"]

#: Workload-parameter field names accepted by :meth:`Scenario.replace` and
#: :meth:`Scenario.sweep` as sweep axes.
_PARAMS_FIELDS = frozenset(f.name for f in dataclasses.fields(WorkloadParams))


def canonical(value: Any) -> Any:
    """Canonical form of ``value`` used for content hashing.

    Dataclasses are flattened field by field, enums reduced to their
    values, and containers frozen to sorted/ordered tuples, so the result
    is independent of object identity and dict insertion order.  Numbers
    equal in value canonicalise equally: ``True``/``1``/``1.0`` all reduce
    to the integer ``1`` (``repr``-based hashing would otherwise give
    ``phi=4`` and ``phi=4.0`` different keys and miss the
    :class:`~repro.parallel.cache.RunCache` on identical runs).
    """
    if isinstance(value, Enum):
        return canonical(value.value)
    if hasattr(value, "__canonical__"):
        # Spec types whose identity is not their fields (e.g. a
        # TraceReplaySpec hashes its trace file's *contents*, not its
        # path) provide their own canonical form; the returned structure
        # is canonicalised recursively like any other value.
        return canonical(value.__canonical__())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Fields listed in the type's ``_CANONICAL_NEUTRAL`` map are
        # omitted while they hold their neutral value: this is how a new
        # scenario axis can be added without changing the key of every
        # scenario written before it existed (the run it names is the
        # exact run the old spelling named).
        neutral = getattr(type(value), "_CANONICAL_NEUTRAL", None) or {}
        return (
            type(value).__name__,
            tuple(
                (f.name, canonical(getattr(value, f.name)))
                for f in dataclasses.fields(value)
                if f.name not in neutral or getattr(value, f.name) != neutral[f.name]
            ),
        )
    if isinstance(value, dict):
        return tuple(sorted((k, canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canonical(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonical(v) for v in value), key=repr))
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def content_hash(value: Any) -> str:
    """SHA-256 of the canonical form of ``value``."""
    return hashlib.sha256(repr(canonical(value)).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Scenario:
    """One experiment run, expressed as data.

    Attributes
    ----------
    algorithm:
        Name of a registered algorithm (see
        :func:`repro.experiments.registry.register_algorithm`).
    params:
        Workload parameterisation (N, M, phi, load, duration, seed, ...).
    config:
        Frozen config spec of the algorithm (its registered
        ``config_type``); ``None`` uses the registered default.
    latency:
        Declarative latency model; ``None`` means constant ``params.gamma``
        (thawed into a live model inside the process running the
        experiment, so scenarios stay picklable and hashable).
    faults:
        Declarative fault-injection model
        (:class:`~repro.sim.faultspec.FaultSpec`); ``None`` means the
        paper's reliable Section 3.1 links (normalised to
        :class:`~repro.sim.faultspec.NoFaults`, thawed per-run exactly
        like the latency spec).
    detector:
        Declarative crash detector
        (:class:`~repro.sim.detectorspec.DetectorSpec`); ``None`` (the
        default) means crashes go undetected and lost tokens stay lost.
        Only meaningful when ``faults`` produces node outages: scenarios
        whose fault spec declares no crash windows normalise the
        detector away, so they share a cache key with the detector-less
        run they are.
    workload:
        Declarative workload shape
        (:class:`~repro.workload.spec.WorkloadSpec`); ``None`` means the
        paper's Section-5.1 closed loop (normalised to
        :class:`~repro.workload.spec.SyntheticSpec`, thawed per-run
        exactly like the latency spec).  Open-loop and trace-replay
        workloads select the open-loop client in the runner.
    collect_trace:
        Record a :class:`~repro.sim.trace.TraceRecorder` (Gantt rendering).
    size_buckets:
        Request-size classes used to group waiting times (Figure 7).
    max_events:
        Safety valve passed to the simulator (``None`` = derived bound,
        see :func:`repro.experiments.runner.default_max_events`).
    require_all_completed:
        Raise when some issued request never completed — i.e. a liveness
        failure of the protocol under test.
    record_chunk_rows:
        When set, the collector seals completed request records into
        packed chunks of about this many rows instead of keeping every
        record live (see :mod:`repro.metrics.collector`), bounding record
        memory for very long runs.  ``None`` (default) keeps the classic
        all-in-memory columns.
    record_spill:
        With ``record_chunk_rows``, write sealed chunks to a temporary
        spill directory instead of holding the packed bytes in memory.
    scheduler:
        Event-queue implementation for the simulation engine
        (:data:`repro.sim.schedulers.SCHEDULERS`: ``"heap"``,
        ``"calendar"``, ``"ladder"``).  ``None`` (default) defers to the
        ``REPRO_SCHEDULER`` environment variable, falling back to the
        heap.  A pure performance knob: results are bit-identical across
        schedulers (the engine's determinism contract), so the unset
        value is hash-neutral and the environment override never touches
        cache keys.  An explicit value *is* hashed — it pins the choice
        declaratively, and distinct keys for the same numbers only cost
        a duplicate cache entry.
    telemetry:
        Run-time observability axis
        (:class:`~repro.obs.spec.TelemetrySpec`).  ``None`` (default)
        defers to the ``REPRO_TELEMETRY`` environment variable, falling
        back to no telemetry at all — and is hash-neutral, because a
        run without telemetry executes zero instrumentation frames
        (pinned by ``scripts/profile_run.py --check``) and produces the
        exact result a pre-axis scenario named.  An explicit spec *is*
        hashed: its snapshot rides on ``ExperimentResult.telemetry``
        through the cache, so the key must know about it.  The env
        override never touches cache keys — env-derived snapshots are
        stripped before results enter a cache (see
        :mod:`repro.parallel.executor`).
    """

    algorithm: str
    params: WorkloadParams = field(default_factory=WorkloadParams)
    config: Optional[Any] = None
    latency: Optional[LatencySpec] = None
    faults: Optional[FaultSpec] = None
    detector: Optional[DetectorSpec] = None
    workload: Optional[WorkloadSpec] = None
    collect_trace: bool = False
    size_buckets: Optional[Tuple[int, ...]] = None
    max_events: Optional[int] = None
    require_all_completed: bool = True
    record_chunk_rows: Optional[int] = None
    record_spill: bool = False
    scheduler: Optional[str] = None
    telemetry: Optional[Any] = None

    #: Axes added after the first release hash neutrally at their neutral
    #: value (see :func:`canonical`): a pre-axis scenario and one
    #: spelling the neutral value explicitly name the same run, so they
    #: must share a cache key.
    _CANONICAL_NEUTRAL = {
        "workload": SyntheticSpec(),
        "record_chunk_rows": None,
        "record_spill": False,
        "scheduler": None,
        "telemetry": None,
    }

    def __post_init__(self) -> None:
        algo = get_algorithm(self.algorithm)  # KeyError on typos, at build time
        if self.config is not None:
            if algo.config_type is None:
                raise TypeError(
                    f"algorithm {self.algorithm!r} takes no config, got {self.config!r}"
                )
            if not isinstance(self.config, algo.config_type):
                raise TypeError(
                    f"algorithm {self.algorithm!r} expects a "
                    f"{algo.config_type.__name__} config, got {type(self.config).__name__}"
                )
        if self.latency is not None and not isinstance(self.latency, LatencySpec):
            raise TypeError(
                f"latency must be a LatencySpec (got {type(self.latency).__name__}); "
                f"live LatencyModel instances are not hashable/picklable specs — "
                f"use e.g. ConstantLatencySpec / UniformJitterLatencySpec instead"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec (got {type(self.faults).__name__}); "
                f"live FaultModel instances are not hashable/picklable specs — "
                f"use e.g. NoFaults / BernoulliLoss / NodeCrash instead"
            )
        if self.detector is not None and not isinstance(self.detector, DetectorSpec):
            raise TypeError(
                f"detector must be a DetectorSpec (got {type(self.detector).__name__}); "
                f"live CrashDetector instances are not hashable/picklable specs — "
                f"use e.g. HeartbeatDetector instead"
            )
        if self.workload is not None and not isinstance(self.workload, WorkloadSpec):
            raise TypeError(
                f"workload must be a WorkloadSpec (got {type(self.workload).__name__}); "
                f"live Workload instances are not hashable/picklable specs — "
                f"use e.g. SyntheticSpec / OpenLoopSpec / TraceReplaySpec instead"
            )
        if self.size_buckets is not None and not isinstance(self.size_buckets, tuple):
            object.__setattr__(self, "size_buckets", tuple(self.size_buckets))
        if self.record_chunk_rows is not None and self.record_chunk_rows < 1:
            raise ValueError("record_chunk_rows must be >= 1 (or None for unchunked)")
        if self.record_spill and self.record_chunk_rows is None:
            raise ValueError("record_spill requires record_chunk_rows")
        if self.scheduler is not None:
            from repro.sim.schedulers import available_schedulers

            if self.scheduler not in available_schedulers():
                raise ValueError(
                    f"unknown scheduler {self.scheduler!r}; "
                    f"available: {', '.join(available_schedulers())}"
                )
        if self.telemetry is not None:
            # Imported lazily for the same reason the runner defers it:
            # scenarios without telemetry must never touch repro.obs.
            from repro.obs.spec import TelemetrySpec

            if not isinstance(self.telemetry, TelemetrySpec):
                raise TypeError(
                    f"telemetry must be a TelemetrySpec "
                    f"(got {type(self.telemetry).__name__}); live "
                    f"TelemetryRuntime instances are not hashable/picklable "
                    f"specs — use repro.obs.TelemetrySpec instead"
                )

    # ------------------------------------------------------------------ #
    # derived forms
    # ------------------------------------------------------------------ #
    def normalized(self) -> "Scenario":
        """Fill registry defaults in, so equal runs hash equally.

        ``config=None`` is resolved to the algorithm's registered default
        config, ``workload=None`` to
        :class:`~repro.workload.spec.SyntheticSpec` (whose canonical form
        is neutral, so pre-axis scenarios keep their keys),
        ``latency=None`` to :class:`ConstantLatencySpec` and
        ``faults=None`` to :class:`~repro.sim.faultspec.NoFaults` (for
        network-less algorithms any latency, fault or detector spec is
        dropped instead).  A detector is kept only when the (normalised)
        fault spec actually produces node outages: with nothing to
        detect, the run is exactly the detector-less one and must share
        its key.  Two scenarios that produce the same run therefore
        normalise to the same value — and to the same :meth:`key`.
        """
        algo = get_algorithm(self.algorithm)
        changes: Dict[str, Any] = {}
        if self.config is None and algo.default_config is not None:
            changes["config"] = algo.default_config
        if self.workload is None:
            changes["workload"] = SyntheticSpec()
        else:
            workload = self.workload.normalized(self.params)
            if workload != self.workload:
                changes["workload"] = workload
        if algo.needs_network:
            if self.faults is None:
                changes["faults"] = NoFaults()
            else:
                # Fault specs have their own normal form: ineffective
                # specs (BernoulliLoss(p=0), an all-null composite) give
                # the exact reliable-path run NoFaults does, and a
                # single-child composite gives its child's run — all must
                # share one key.  This also fails fast on specs whose
                # build() rejects the workload (e.g. a crash naming a
                # node outside it).
                faults = self.faults.normalized(self.params)
                if faults != self.faults:
                    changes["faults"] = faults
            if self.latency is None:
                changes["latency"] = ConstantLatencySpec()
            if self.detector is not None:
                effective_faults = changes.get("faults", self.faults)
                model = effective_faults.build(self.params)
                if (
                    self.detector.build() is None
                    or model is None
                    or not model.crash_windows()
                ):
                    changes["detector"] = None
        else:
            if self.latency is not None:
                changes["latency"] = None
            if self.faults is not None:
                changes["faults"] = None
            if self.detector is not None:
                changes["detector"] = None
        return dataclasses.replace(self, **changes) if changes else self

    def key(self) -> str:
        """Stable content hash of the (normalised) scenario.

        This is the memoisation key of :class:`~repro.parallel.cache.RunCache`
        — equal keys guarantee bit-identical results, across processes and
        across interpreter invocations.
        """
        return content_hash(("Scenario", canonical(self.normalized())))

    # ------------------------------------------------------------------ #
    # grid expansion
    # ------------------------------------------------------------------ #
    def replace(self, **changes: Any) -> "Scenario":
        """Return a copy with scenario *or* workload-parameter fields replaced.

        Keys naming a :class:`WorkloadParams` field (``phi``, ``seed``,
        ``load``, ...) are applied to ``params``; everything else must be
        a :class:`Scenario` field.

        Changing ``algorithm`` to a *different* algorithm without also
        supplying ``config`` resets the config to ``None`` (the new
        algorithm's registered default): the old algorithm's config does
        not, in general, even have the right type — this is what lets a
        configured (or :meth:`normalized`) scenario sweep the algorithm
        axis.
        """
        params_changes = {k: v for k, v in changes.items() if k in _PARAMS_FIELDS}
        scenario_changes = {k: v for k, v in changes.items() if k not in _PARAMS_FIELDS}
        if (
            scenario_changes.get("algorithm", self.algorithm) != self.algorithm
            and "config" not in scenario_changes
        ):
            scenario_changes["config"] = None
        if params_changes:
            scenario_changes["params"] = dataclasses.replace(self.params, **params_changes)
        return dataclasses.replace(self, **scenario_changes)

    def sweep(self, **axes: Iterable[Any]) -> List["Scenario"]:
        """Expand named axes into the cartesian product of scenarios.

        Axes may name scenario fields (``algorithm``, ``config``,
        ``latency``, ...) or workload-parameter fields (``phi``, ``seed``,
        ``load``, ...).  Expansion order is row-major in the order the
        axes are given — ``sweep(algorithm=A, phi=P, seed=S)`` varies
        seeds fastest — so sweep output order is deterministic and
        matches the nested-loop order of the pre-Scenario drivers.

        Sweeping ``algorithm`` resets each changed scenario's ``config``
        to the new algorithm's default unless a ``config`` axis is also
        given (see :meth:`replace`).
        """
        names = list(axes)
        values = [list(axes[name]) for name in names]
        return [
            self.replace(**dict(zip(names, combo)))
            for combo in itertools.product(*values)
        ]

    def describe(self) -> str:
        """One-line human-readable summary."""
        norm = self.normalized()
        parts = [f"{norm.algorithm}: {norm.params.describe()}"]
        if norm.config is not None:
            describe = getattr(norm.config, "describe", None)
            parts.append(describe() if callable(describe) else repr(norm.config))
        if norm.latency is not None and norm.latency != ConstantLatencySpec():
            parts.append(norm.latency.describe())
        if norm.faults is not None and norm.faults != NoFaults():
            parts.append(norm.faults.describe())
        if norm.detector is not None:
            parts.append(norm.detector.describe())
        if norm.workload is not None and norm.workload != SyntheticSpec():
            parts.append(norm.workload.describe())
        if norm.size_buckets is not None:
            parts.append(f"buckets={list(norm.size_buckets)}")
        if norm.record_chunk_rows is not None:
            spill = ", spill" if norm.record_spill else ""
            parts.append(f"chunked={norm.record_chunk_rows}{spill}")
        if norm.scheduler is not None:
            parts.append(f"scheduler={norm.scheduler}")
        if norm.telemetry is not None:
            parts.append(norm.telemetry.describe())
        return " ".join(parts)
