"""Registry of the algorithms under evaluation.

The five names below match the five curves of Figure 5:

================  ====================================================
name              algorithm
================  ====================================================
``incremental``   M Naimi–Tréhel instances, resources locked in order
``bouabdallah``   Bouabdallah–Laforest control-token algorithm
``without_loan``  the paper's algorithm, loan mechanism disabled
``with_loan``     the paper's algorithm, loan mechanism enabled
``shared_memory`` centralised zero-cost scheduler (reference envelope)
================  ====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.allocator import MultiResourceAllocator
from repro.baselines.bouabdallah_laforest import BLAllocatorNode
from repro.baselines.central_scheduler import CentralScheduler, CentralSchedulerClientAllocator
from repro.baselines.incremental import IncrementalAllocatorNode
from repro.core.config import CoreConfig
from repro.core.node import CoreAllocatorNode
from repro.core.policies import get_policy
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder
from repro.workload.params import WorkloadParams

#: Canonical algorithm names, in the order the paper's legends use.
ALGORITHMS: Sequence[str] = (
    "incremental",
    "bouabdallah",
    "without_loan",
    "with_loan",
    "shared_memory",
)

#: Human-readable labels matching the paper's figure legends.
ALGORITHM_LABELS: Dict[str, str] = {
    "incremental": "Incremental",
    "bouabdallah": "Bouabdallah Laforest",
    "without_loan": "Without loan",
    "with_loan": "With loan",
    "shared_memory": "in shared memory",
}

#: Default safety-net re-send interval for the core algorithm (ms).  See the
#: implementation notes in :mod:`repro.core.node`.
DEFAULT_RESEND_INTERVAL = 500.0


def build_allocators(
    algorithm: str,
    params: WorkloadParams,
    sim: Simulator,
    network: Optional[Network],
    trace: Optional[TraceRecorder] = None,
    policy: Optional[str] = None,
    loan_threshold: Optional[int] = None,
    resend_interval: Optional[float] = DEFAULT_RESEND_INTERVAL,
) -> List[MultiResourceAllocator]:
    """Instantiate one allocator endpoint per process for ``algorithm``.

    ``network`` must be ``None`` for ``shared_memory`` (which has no
    communication) and a :class:`~repro.sim.network.Network` otherwise.
    """
    if algorithm not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {algorithm!r}; known: {list(ALGORITHMS)}")
    n, m = params.num_processes, params.num_resources

    if algorithm == "shared_memory":
        scheduler = CentralScheduler(sim, m)
        return [CentralSchedulerClientAllocator(scheduler, p) for p in range(n)]

    if network is None:
        raise ValueError(f"algorithm {algorithm!r} requires a network")

    if algorithm == "incremental":
        return [
            IncrementalAllocatorNode(
                sim, network, p, num_resources=m, num_processes=n, initial_holder=None, trace=trace
            )
            for p in range(n)
        ]
    if algorithm == "bouabdallah":
        return [
            BLAllocatorNode(sim, network, p, num_resources=m, control_holder=0, trace=trace)
            for p in range(n)
        ]

    # The paper's algorithm, with or without the loan mechanism.
    threshold = loan_threshold if loan_threshold is not None else params.loan_threshold
    if algorithm == "with_loan":
        config = CoreConfig(
            enable_loan=True,
            loan_threshold=threshold,
            policy=get_policy(policy) if policy else get_policy("mean_nonzero"),
        )
    else:
        config = CoreConfig(
            enable_loan=False,
            policy=get_policy(policy) if policy else get_policy("mean_nonzero"),
        )
    return [
        CoreAllocatorNode(
            sim,
            network,
            p,
            num_resources=m,
            config=config,
            trace=trace,
            resend_interval=resend_interval,
        )
        for p in range(n)
    ]


def build_network(
    params: WorkloadParams,
    sim: Simulator,
    latency: Optional[LatencyModel] = None,
) -> Network:
    """Build the network used by the distributed algorithms."""
    from repro.sim.latency import ConstantLatency

    return Network(sim, latency if latency is not None else ConstantLatency(gamma=params.gamma))
