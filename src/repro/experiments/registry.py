"""Pluggable registry of the algorithms under evaluation.

Every algorithm is registered with :func:`register_algorithm`, which binds
a *builder* (instantiating one allocator endpoint per process) to a name,
a figure-legend label and an optional frozen config dataclass — the
declarative counterpart of the algorithm's tunables, carried inside a
:class:`~repro.experiments.scenario.Scenario` and thawed per-run.  New
baselines and variants are therefore drop-in::

    @register_algorithm("my_variant", label="My variant", config=CoreConfigSpec,
                        default=CoreConfigSpec(policy="max"))
    def _build_my_variant(config, params, sim, network, trace):
        return [MyAllocatorNode(sim, network, p, ...) for p in range(params.num_processes)]

    run(Scenario(algorithm="my_variant"))

The five built-ins below match the five curves of Figure 5:

================  ====================================================
name              algorithm
================  ====================================================
``incremental``   M Naimi–Tréhel instances, resources locked in order
``bouabdallah``   Bouabdallah–Laforest control-token algorithm
``without_loan``  the paper's algorithm, loan mechanism disabled
``with_loan``     the paper's algorithm, loan mechanism enabled
``shared_memory`` centralised zero-cost scheduler (reference envelope)
================  ====================================================

:func:`build_allocators` and :func:`build_network` keep the pre-registry
call signatures as thin shims over the registry so existing call sites
(and the seed test suite) run unchanged.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.allocator import MultiResourceAllocator
from repro.baselines.bouabdallah_laforest import BLAllocatorNode
from repro.baselines.central_scheduler import CentralScheduler, CentralSchedulerClientAllocator
from repro.baselines.incremental import IncrementalAllocatorNode
from repro.core.config import DEFAULT_RESEND_INTERVAL, CoreConfigSpec
from repro.core.node import CoreAllocatorNode
from repro.sim.engine import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder
from repro.workload.params import WorkloadParams

__all__ = [
    "ALGORITHMS",
    "ALGORITHM_LABELS",
    "DEFAULT_RESEND_INTERVAL",
    "AlgorithmDef",
    "available_algorithms",
    "build_allocators",
    "build_network",
    "config_from_overrides",
    "get_algorithm",
    "register_algorithm",
]

#: Builder signature: ``(config, params, sim, network, trace) -> allocators``.
#: ``config`` is the (possibly ``None``) frozen config spec instance,
#: ``network`` is ``None`` for algorithms registered with
#: ``needs_network=False``.
AlgorithmBuilder = Callable[
    [Any, WorkloadParams, Simulator, Optional[Network], Optional[TraceRecorder]],
    List[MultiResourceAllocator],
]


@dataclass(frozen=True)
class AlgorithmDef:
    """One registered algorithm: metadata plus its allocator builder."""

    name: str
    label: str
    builder: AlgorithmBuilder
    config_type: Optional[Type[Any]] = None
    default_config: Optional[Any] = None
    needs_network: bool = True

    def make_allocators(
        self,
        config: Any,
        params: WorkloadParams,
        sim: Simulator,
        network: Optional[Network],
        trace: Optional[TraceRecorder] = None,
    ) -> List[MultiResourceAllocator]:
        """Instantiate one allocator endpoint per process."""
        if self.needs_network and network is None:
            raise ValueError(f"algorithm {self.name!r} requires a network")
        if config is None:
            config = self.default_config
        elif self.config_type is None:
            raise TypeError(f"algorithm {self.name!r} takes no config, got {config!r}")
        elif not isinstance(config, self.config_type):
            raise TypeError(
                f"algorithm {self.name!r} expects a {self.config_type.__name__} "
                f"config, got {type(config).__name__}"
            )
        return self.builder(config, params, sim, network if self.needs_network else None, trace)


_REGISTRY: Dict[str, AlgorithmDef] = {}


def register_algorithm(
    name: str,
    *,
    label: Optional[str] = None,
    config: Optional[Type[Any]] = None,
    default: Optional[Any] = None,
    needs_network: bool = True,
) -> Callable[[AlgorithmBuilder], AlgorithmBuilder]:
    """Class-less plugin decorator: bind ``builder`` to ``name`` in the registry.

    Parameters
    ----------
    name:
        Registry key, used by :class:`Scenario.algorithm` and reports.
    label:
        Figure-legend label (defaults to ``name``).
    config:
        Frozen dataclass type of the algorithm's declarative config;
        ``None`` for config-less algorithms.
    default:
        Default config instance used when a scenario leaves ``config``
        unset (defaults to ``config()`` when a config type is given).
    needs_network:
        ``False`` for algorithms with no communication (the builder then
        always receives ``network=None``).

    Decorators stack, so one builder can serve several registered
    variants that differ only in their default config.
    """

    def decorate(builder: AlgorithmBuilder) -> AlgorithmBuilder:
        if name in _REGISTRY:
            raise ValueError(f"algorithm {name!r} is already registered")
        default_config = default
        if default_config is None and config is not None:
            default_config = config()
        if config is not None and not isinstance(default_config, config):
            raise TypeError(f"default config for {name!r} is not a {config.__name__}")
        _REGISTRY[name] = AlgorithmDef(
            name=name,
            label=label if label is not None else name,
            builder=builder,
            config_type=config,
            default_config=default_config,
            needs_network=needs_network,
        )
        return builder

    return decorate


def get_algorithm(name: str) -> AlgorithmDef:
    """Look up a registered algorithm, failing fast on typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {list(_REGISTRY)}"
        ) from None


def available_algorithms() -> Tuple[str, ...]:
    """Names of every registered algorithm, in registration order."""
    return tuple(_REGISTRY)


def config_from_overrides(
    algorithm: AlgorithmDef,
    policy: Optional[str] = None,
    loan_threshold: Optional[int] = None,
    resend_interval: Optional[float] = DEFAULT_RESEND_INTERVAL,
) -> Optional[Any]:
    """Translate legacy ``run_experiment`` keyword overrides into a config spec.

    Only the core algorithm exposes these knobs; for any other algorithm
    the overrides are ignored and the registered default config returned,
    exactly as the pre-registry ``build_allocators`` branch chain did.
    """
    base = algorithm.default_config
    if not isinstance(base, CoreConfigSpec):
        return base
    return dataclasses.replace(
        base,
        policy=policy if policy is not None else base.policy,
        loan_threshold=loan_threshold if loan_threshold is not None else base.loan_threshold,
        resend_interval=resend_interval,
    )


# --------------------------------------------------------------------- #
# built-in algorithms
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class IncrementalConfigSpec:
    """Config of the incremental baseline.

    ``initial_holder`` is the site initially holding every resource token;
    ``None`` spreads the tokens round-robin over the sites.
    """

    initial_holder: Optional[int] = None


@dataclass(frozen=True)
class BLConfigSpec:
    """Config of the Bouabdallah–Laforest baseline."""

    control_holder: int = 0


@register_algorithm("incremental", label="Incremental", config=IncrementalConfigSpec)
def _build_incremental(config, params, sim, network, trace):
    return [
        IncrementalAllocatorNode(
            sim,
            network,
            p,
            num_resources=params.num_resources,
            num_processes=params.num_processes,
            initial_holder=config.initial_holder,
            trace=trace,
        )
        for p in range(params.num_processes)
    ]


@register_algorithm("bouabdallah", label="Bouabdallah Laforest", config=BLConfigSpec)
def _build_bouabdallah(config, params, sim, network, trace):
    return [
        BLAllocatorNode(
            sim,
            network,
            p,
            num_resources=params.num_resources,
            control_holder=config.control_holder,
            trace=trace,
        )
        for p in range(params.num_processes)
    ]


# Stacked decorators apply bottom-up, so ``without_loan`` registers first —
# keeping ALGORITHMS in the order the paper's legends use.
@register_algorithm(
    "with_loan",
    label="With loan",
    config=CoreConfigSpec,
    default=CoreConfigSpec(enable_loan=True),
)
@register_algorithm(
    "without_loan",
    label="Without loan",
    config=CoreConfigSpec,
    default=CoreConfigSpec(enable_loan=False),
)
def _build_core(config, params, sim, network, trace):
    built = config.build(params)
    return [
        CoreAllocatorNode(
            sim,
            network,
            p,
            num_resources=params.num_resources,
            config=built,
            trace=trace,
            resend_interval=config.resend_interval,
        )
        for p in range(params.num_processes)
    ]


@register_algorithm("shared_memory", label="in shared memory", needs_network=False)
def _build_shared_memory(config, params, sim, network, trace):
    scheduler = CentralScheduler(sim, params.num_resources)
    return [
        CentralSchedulerClientAllocator(scheduler, p) for p in range(params.num_processes)
    ]


#: Canonical built-in algorithm names, in the order the paper's legends use.
#: Algorithms registered later are reachable through
#: :func:`available_algorithms` / :func:`get_algorithm`; this tuple is the
#: frozen snapshot the figure drivers default to.
ALGORITHMS: Sequence[str] = available_algorithms()

#: Human-readable labels matching the paper's figure legends.
ALGORITHM_LABELS: Dict[str, str] = {d.name: d.label for d in _REGISTRY.values()}


# --------------------------------------------------------------------- #
# pre-registry compatibility shims
# --------------------------------------------------------------------- #
def build_allocators(
    algorithm: str,
    params: WorkloadParams,
    sim: Simulator,
    network: Optional[Network],
    trace: Optional[TraceRecorder] = None,
    policy: Optional[str] = None,
    loan_threshold: Optional[int] = None,
    resend_interval: Optional[float] = DEFAULT_RESEND_INTERVAL,
) -> List[MultiResourceAllocator]:
    """Instantiate one allocator endpoint per process for ``algorithm``.

    Compatibility shim over the registry: the keyword overrides are folded
    into the algorithm's config spec via :func:`config_from_overrides`.
    ``network`` must be ``None`` for ``shared_memory`` (which has no
    communication) and a :class:`~repro.sim.network.Network` otherwise.
    """
    algo = get_algorithm(algorithm)
    config = config_from_overrides(
        algo, policy=policy, loan_threshold=loan_threshold, resend_interval=resend_interval
    )
    return algo.make_allocators(config, params, sim, network, trace)


def build_network(
    params: WorkloadParams,
    sim: Simulator,
    latency: Optional[LatencyModel] = None,
) -> Network:
    """Build the network used by the distributed algorithms."""
    from repro.sim.latency import ConstantLatency

    return Network(sim, latency if latency is not None else ConstantLatency(gamma=params.gamma))
