"""repro — reproduction of Lejeune et al., "Reducing synchronization cost in
distributed multi-resource allocation problem" (INRIA RR-8689 / ICPP 2015).

The package provides:

* :mod:`repro.core` — the paper's counter-based, lock-free multi-resource
  allocation algorithm with the optional loan mechanism;
* :mod:`repro.baselines` — the incremental, Bouabdallah–Laforest and
  shared-memory baselines it is evaluated against;
* :mod:`repro.mutex` — the Naimi–Tréhel single-resource mutex substrate;
* :mod:`repro.sim` — the discrete-event simulation substrate (reliable
  FIFO network, latency models, tracing);
* :mod:`repro.workload`, :mod:`repro.metrics`, :mod:`repro.experiments` —
  the workload generator, metric collection and the harness regenerating
  every figure of the evaluation.

Quickstart
----------
>>> from repro.experiments import Scenario, run
>>> from repro.workload import WorkloadParams, LoadLevel
>>> scenario = Scenario(
...     algorithm="with_loan",
...     params=WorkloadParams(num_processes=8, num_resources=20, phi=4,
...                           duration=2_000.0, warmup=200.0, seed=7))
>>> result = run(scenario)
>>> 0.0 < result.use_rate <= 100.0
True

Scenarios are frozen, picklable and content-hashable, which makes grids
(`scenario.sweep(phi=..., seed=...)`) parallelisable over worker processes
and memoisable on disk — see README.md for the Scenario-API tour.
"""

from repro.allocator import AllocatorError, MultiResourceAllocator
from repro.workload.params import LoadLevel, WorkloadParams

__version__ = "1.0.0"

__all__ = [
    "AllocatorError",
    "MultiResourceAllocator",
    "WorkloadParams",
    "LoadLevel",
    "__version__",
]
