"""Picklable job specifications for sweep execution.

The native sweep unit is the declarative
:class:`~repro.experiments.scenario.Scenario`; the executor accepts
scenarios directly.  :class:`JobSpec` is the pre-Scenario keyword-style
spec, kept for compatibility and *rebased* on scenarios: every job spec
resolves into a scenario (:meth:`JobSpec.to_scenario`), is executed by
running that scenario, and takes its memoisation key from it — so a grid
point expressed either way hits the same
:class:`~repro.parallel.cache.RunCache` entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterable, List, Tuple

from repro.workload.params import WorkloadParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenario import Scenario

#: Override names that parameterise the algorithm config rather than the
#: run options when a job spec is resolved into a scenario.
_CONFIG_OVERRIDES = ("policy", "loan_threshold", "resend_interval")


def _freeze(value: Any, name: str) -> Any:
    """Return a deterministic, round-trippable stand-in for ``value``.

    Only scalars, enums and (nested) sequences are accepted: anything
    else — a latency-model instance, a dict, an open file — either has
    no stable canonical form (its ``repr`` would embed a memory address,
    breaking the content hash and the workers=1 vs workers=N guarantee)
    or cannot be thawed back faithfully by :meth:`JobSpec.kwargs`.
    Rejecting such values loudly keeps job results a pure function of
    their spec; use a :class:`Scenario` (whose latency/config fields are
    declarative spec dataclasses) for anything richer.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v, name) for v in value)
    if value is None or isinstance(value, (bool, int, float, str, Enum)):
        return value
    raise TypeError(
        f"override {name!r} has no canonical form: {value!r} "
        f"(only scalars, enums and sequences thereof are supported; "
        f"object-valued arguments such as latency models cannot be "
        f"content-hashed or shipped to worker processes deterministically)"
    )


@dataclass(frozen=True)
class JobSpec:
    """One keyword-style experiment call, expressed as data.

    ``overrides`` holds the ``run_experiment`` keyword arguments as a
    sorted tuple of ``(name, value)`` pairs with sequence values frozen to
    tuples, which keeps the spec immutable and its canonical form stable.
    Build specs with :meth:`make` rather than the raw constructor;
    identity for memoisation purposes is the content hash :meth:`key` of
    the *resolved scenario*, not ``hash()`` (the embedded params carry an
    ``extra`` dict).
    """

    algorithm: str
    params: WorkloadParams
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, algorithm: str, params: WorkloadParams, **overrides: Any) -> "JobSpec":
        """Build a spec from ``run_experiment``-style keyword arguments.

        Raises ``TypeError`` for override values without a stable
        canonical form (see :func:`_freeze`).
        """
        frozen = tuple(sorted((name, _freeze(value, name)) for name, value in overrides.items()))
        return cls(algorithm=algorithm, params=params, overrides=frozen)

    def kwargs(self) -> dict:
        """Keyword arguments to pass to ``run_experiment``.

        Tuples are thawed back to lists (``run_experiment`` and the
        metrics layer take ``List`` arguments, e.g. ``size_buckets``).
        """
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in self.overrides
        }

    def to_scenario(self) -> "Scenario":
        """Resolve the keyword-style spec into a declarative scenario.

        Config-shaped overrides (``policy``, ``loan_threshold``,
        ``resend_interval``) are folded into the algorithm's config spec,
        run options map onto scenario fields, and anything unrecognised
        raises ``TypeError`` — the same rejection ``run_experiment``
        itself would produce for an unknown keyword.
        """
        # Imported lazily: repro.parallel must stay importable without
        # pulling in the experiments package (which imports this module
        # through the figure drivers).
        from repro.experiments.registry import config_from_overrides, get_algorithm
        from repro.experiments.scenario import Scenario

        kwargs = self.kwargs()
        algo = get_algorithm(self.algorithm)
        config_kwargs = {k: kwargs.pop(k) for k in _CONFIG_OVERRIDES if k in kwargs}
        config = config_from_overrides(algo, **config_kwargs)
        size_buckets = kwargs.pop("size_buckets", None)
        scenario = Scenario(
            algorithm=self.algorithm,
            params=self.params,
            config=config,
            size_buckets=tuple(size_buckets) if size_buckets is not None else None,
            collect_trace=kwargs.pop("collect_trace", False),
            max_events=kwargs.pop("max_events", None),
            require_all_completed=kwargs.pop("require_all_completed", True),
        )
        if kwargs:
            raise TypeError(
                f"overrides {sorted(kwargs)} have no scenario equivalent; "
                f"build a Scenario directly instead"
            )
        return scenario.normalized()

    def key(self) -> str:
        """Stable content hash of the spec (memoisation key).

        Delegates to the resolved scenario's key, so keyword-style and
        declarative expressions of the same grid point share cache
        entries.
        """
        return self.to_scenario().key()

    def describe(self) -> str:
        """One-line human-readable summary."""
        extras = ", ".join(f"{k}={v!r}" for k, v in self.overrides)
        suffix = f" [{extras}]" if extras else ""
        return f"{self.algorithm}: {self.params.describe()}{suffix}"


def expand_jobs(
    algorithm: str,
    params: WorkloadParams,
    seeds: Iterable[int],
    **overrides: Any,
) -> List[JobSpec]:
    """One :class:`JobSpec` per seed, with the seed baked into the params.

    This is the canonical way seeds enter a keyword-style sweep:
    deterministically, before submission, one spec per
    ``(algorithm, params, seed)`` point.  (The Scenario-native equivalent
    is ``scenario.sweep(seed=seeds)``.)
    """
    return [JobSpec.make(algorithm, params.with_seed(seed), **overrides) for seed in seeds]
