"""Picklable job specifications for sweep execution.

A :class:`JobSpec` captures everything one ``run_experiment`` call needs —
algorithm name, workload parameters and keyword overrides — in a frozen,
picklable, content-hashable value.  See :mod:`repro.parallel` for how the
hash and the seeds are used.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, List, Tuple

from repro.workload.params import WorkloadParams


def _freeze(value: Any, name: str) -> Any:
    """Return a deterministic, round-trippable stand-in for ``value``.

    Only scalars, enums and (nested) sequences are accepted: anything
    else — a latency-model instance, a dict, an open file — either has
    no stable canonical form (its ``repr`` would embed a memory address,
    breaking the content hash and the workers=1 vs workers=N guarantee)
    or cannot be thawed back faithfully by :meth:`JobSpec.kwargs`.
    Rejecting such values loudly keeps job results a pure function of
    their spec; pre-resolve them into picklable parameters instead.
    """
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v, name) for v in value)
    if value is None or isinstance(value, (bool, int, float, str, Enum)):
        return value
    raise TypeError(
        f"override {name!r} has no canonical form: {value!r} "
        f"(only scalars, enums and sequences thereof are supported; "
        f"object-valued arguments such as latency models cannot be "
        f"content-hashed or shipped to worker processes deterministically)"
    )


def _canonical(value: Any) -> Any:
    """Canonical form of ``value`` used for content hashing.

    Dataclasses are flattened field by field, enums reduced to their
    values, and containers frozen to sorted/ordered tuples, so the result
    is independent of object identity and dict insertion order.
    """
    if isinstance(value, Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple((f.name, _canonical(getattr(value, f.name))) for f in dataclasses.fields(value)),
        )
    if isinstance(value, dict):
        return tuple(sorted((k, _canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_canonical(v) for v in value), key=repr))
    return value


@dataclass(frozen=True)
class JobSpec:
    """One ``run_experiment`` call, expressed as data.

    ``overrides`` holds the keyword arguments as a sorted tuple of
    ``(name, value)`` pairs with sequence values frozen to tuples, which
    keeps the spec immutable and its canonical form stable.  Build specs
    with :meth:`make` rather than the raw constructor; identity for
    memoisation purposes is the content hash :meth:`key`, not ``hash()``
    (the embedded params carry an ``extra`` dict).
    """

    algorithm: str
    params: WorkloadParams
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, algorithm: str, params: WorkloadParams, **overrides: Any) -> "JobSpec":
        """Build a spec from ``run_experiment``-style keyword arguments.

        Raises ``TypeError`` for override values without a stable
        canonical form (see :func:`_freeze`).
        """
        frozen = tuple(sorted((name, _freeze(value, name)) for name, value in overrides.items()))
        return cls(algorithm=algorithm, params=params, overrides=frozen)

    def kwargs(self) -> dict:
        """Keyword arguments to pass to ``run_experiment``.

        Tuples are thawed back to lists (``run_experiment`` and the
        metrics layer take ``List`` arguments, e.g. ``size_buckets``).
        """
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in self.overrides
        }

    def key(self) -> str:
        """Stable content hash of the spec (memoisation key)."""
        canon = ("JobSpec", self.algorithm, _canonical(self.params), _canonical(self.overrides))
        return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary."""
        extras = ", ".join(f"{k}={v!r}" for k, v in self.overrides)
        suffix = f" [{extras}]" if extras else ""
        return f"{self.algorithm}: {self.params.describe()}{suffix}"


def expand_jobs(
    algorithm: str,
    params: WorkloadParams,
    seeds: Iterable[int],
    **overrides: Any,
) -> List[JobSpec]:
    """One :class:`JobSpec` per seed, with the seed baked into the params.

    This is the canonical way seeds enter a sweep: deterministically,
    before submission, one spec per ``(algorithm, params, seed)`` point.
    """
    return [JobSpec.make(algorithm, params.with_seed(seed), **overrides) for seed in seeds]
