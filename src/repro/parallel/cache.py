"""Memoisation of completed experiment runs.

A :class:`RunCache` maps a spec content hash (:meth:`Scenario.key` /
:meth:`JobSpec.key`) to the :class:`~repro.experiments.runner.ExperimentResult`
it produced.  Because the key hashes everything the run depends on
(algorithm, config spec, full workload parameters including the seed,
latency spec and run options), a hit is guaranteed to be the exact result
the job would recompute — the figure drivers share one cache across load
levels and sweeps so overlapping grid points (e.g. the same
``(algorithm, phi, seed)`` appearing in Figure 5 and Figure 6) are only
simulated once.

Two levels are provided:

* in-memory (the default) — a plain dict, private to one process;
* on-disk (``RunCache(path=...)`` or :meth:`RunCache.persistent`) — each
  result is additionally pickled under
  ``<path>/<code-fingerprint>/<key>.v<FORMAT>.pkl``, so repeated
  ``scripts/reproduce_results.py`` invocations skip completed grid points
  *across* processes and interpreter restarts.  Writes are atomic (tmp
  file + ``os.replace``), so concurrent sweeps sharing a directory at
  worst redo a run, never read a torn file; unreadable or stale-format
  files are treated as misses.

The scenario key hashes only the *inputs* of a run, not the code that
interprets them, so the on-disk level additionally namespaces entries by
:func:`code_fingerprint` — a hash of the ``repro`` package sources.  Any
code change therefore starts a fresh namespace instead of silently
serving results computed by an older simulator (stale fingerprint
directories are inert and can be deleted freely).
"""

from __future__ import annotations

import functools
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult

#: Bump when the pickled payload layout changes incompatibly; files written
#: under another format version are simply ignored (treated as misses).
#: v2: ``ExperimentResult.records`` became the columnar
#: ``record_columns`` (struct-of-arrays ``RecordColumns`` payload) —
#: pre-bump entries hold the old record-list layout and must read as
#: clean misses, never as stale hits.
CACHE_FORMAT = 2

#: Default persistent cache location (see :meth:`RunCache.persistent`).
DEFAULT_CACHE_DIR = "~/.cache/repro"

#: Environment variable overriding :data:`DEFAULT_CACHE_DIR`.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the ``repro`` package sources, namespacing the disk cache.

    Cached results are only valid for the code that computed them; hashing
    every ``*.py`` file of the installed package (sorted by relative path)
    invalidates the persistent level on *any* code change, without relying
    on version numbers being bumped.  Falls back to a constant when the
    sources are not reachable as files (zipapp, frozen build) — degrading
    to the weaker no-fingerprint behaviour rather than failing.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    try:
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(source.read_bytes())
    except OSError:  # pragma: no cover - unusual deployment
        return "unfingerprinted"
    return digest.hexdigest()[:16]


class RunCache:
    """Result store keyed by spec content hash, optionally disk-backed.

    Parameters
    ----------
    path:
        Root directory for the persistent level; ``None`` (default) keeps
        the cache in memory only.  Entries live in a
        :func:`code_fingerprint` subdirectory (exposed as ``self.path``),
        created on first use; if it cannot be created or written, the
        cache degrades gracefully to memory-only operation rather than
        failing the sweep.
    """

    __slots__ = ("_store", "hits", "misses", "path")

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        self._store: Dict[str, "ExperimentResult"] = {}
        self.hits = 0
        self.misses = 0
        self.path: Optional[Path] = None
        if path is not None:
            directory = Path(path).expanduser() / code_fingerprint()
            try:
                directory.mkdir(parents=True, exist_ok=True)
            except OSError:
                directory = None  # unwritable location: stay memory-only
            self.path = directory

    @classmethod
    def persistent(cls, path: Optional[Union[str, os.PathLike]] = None) -> "RunCache":
        """Disk-backed cache at ``path`` (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``)."""
        if path is None:
            path = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        return cls(path=path)

    # ------------------------------------------------------------------ #
    # disk level
    # ------------------------------------------------------------------ #
    def _file(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.v{CACHE_FORMAT}.pkl"

    def _load(self, key: str) -> Optional["ExperimentResult"]:
        try:
            with open(self._file(key), "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:  # corrupt / truncated / incompatible: a miss
            return None

    def _dump(self, key: str, result: "ExperimentResult") -> None:
        target = self._file(key)
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.path), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, target)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # disk full / permissions: keep the in-memory entry only

    # ------------------------------------------------------------------ #
    # cache protocol
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional["ExperimentResult"]:
        """Return the cached result for ``key``, tracking hit/miss counts."""
        result = self._store.get(key)
        if result is None and self.path is not None:
            result = self._load(key)
            if result is not None:
                self._store[key] = result
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: "ExperimentResult") -> None:
        """Store ``result`` under ``key`` (last write wins)."""
        self._store[key] = result
        if self.path is not None:
            self._dump(key, result)

    def __len__(self) -> int:
        """Number of results held in memory (disk entries load lazily)."""
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        """Whether :meth:`get` would hit (without touching the counters).

        Membership must agree with lookup: a disk entry is only counted
        present if it actually *loads* — a corrupt or torn file that
        ``get`` would treat as a miss must not answer ``True`` here.  The
        loaded result is kept, so a subsequent ``get`` is free.
        """
        if key in self._store:
            return True
        if self.path is None:
            return False
        result = self._load(key)
        if result is None:
            return False
        self._store[key] = result
        return True

    def clear(self) -> None:
        """Drop every cached result (memory *and* disk) and reset counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        if self.path is not None:
            for entry in self.path.glob(f"*.v{CACHE_FORMAT}.pkl"):
                try:
                    entry.unlink()
                except OSError:
                    pass
