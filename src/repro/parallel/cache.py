"""Memoisation of completed experiment runs.

A :class:`RunCache` maps a :meth:`JobSpec.key` content hash to the
:class:`~repro.experiments.runner.ExperimentResult` it produced.  Because
the key hashes everything the run depends on (algorithm, full workload
parameters including the seed, and every keyword override), a hit is
guaranteed to be the exact result the job would recompute — the figure
drivers share one cache across load levels and sweeps so overlapping grid
points (e.g. the same ``(algorithm, phi, seed)`` appearing in Figure 5 and
Figure 6) are only simulated once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult


class RunCache:
    """In-memory result store keyed by job-spec content hash."""

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: Dict[str, "ExperimentResult"] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional["ExperimentResult"]:
        """Return the cached result for ``key``, tracking hit/miss counts."""
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: str, result: "ExperimentResult") -> None:
        """Store ``result`` under ``key`` (last write wins)."""
        self._store[key] = result

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def clear(self) -> None:
        """Drop every cached result and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
