"""Parallel sweep execution for the experiment grid.

Every figure and ablation of the reproduction is a sweep of *independent*
:func:`repro.experiments.runner.run_experiment` calls: each run builds its
own simulator, network and RNG from the seed carried in its
:class:`~repro.workload.params.WorkloadParams`, and shares no state with
any other run.  That makes the sweep embarrassingly parallel, and this
package is the one place that exploits it.

Job hashing
-----------
A sweep is expressed as a list of picklable
:class:`~repro.experiments.scenario.Scenario` values (or legacy
:class:`~repro.parallel.jobs.JobSpec` instances, which resolve into
scenarios).  Each spec has a stable content hash (:meth:`Scenario.key`):
the spec is first *canonicalised* (dataclasses flattened field by field,
dicts sorted by key, sequences frozen to tuples, enums replaced by their
values) and the SHA-256 of the canonical form is the key.  The hash
therefore depends only on what the run computes — never on object
identity, dict insertion order or the process that computes it — so it is
safe to use as a memoisation key across workers, across sweeps and across
interpreter invocations (:class:`~repro.parallel.cache.RunCache`, whose
optional on-disk level persists results under ``~/.cache/repro``).

Seed handling
-------------
Randomness enters a run exclusively through ``params.seed``; the executor
never draws seeds itself.  Seeds are baked into each job spec *before*
submission (``params.with_seed(s)``, see :func:`~repro.parallel.jobs.expand_jobs`),
so the result of a job is a pure function of its spec and cannot depend on
worker scheduling, completion order or the number of workers.

Why ``workers=1`` is the reference path
---------------------------------------
With ``workers=1`` the executor calls ``run_experiment`` directly in the
current process, in submission order — exactly the serial loop the figure
drivers used before this package existed, bit for bit.  ``workers>1``
fans the same specs out over a ``ProcessPoolExecutor`` and reorders the
results back into submission order; because each job is deterministic in
its spec, the two paths produce identical :class:`RunMetrics`, and the
test suite asserts it.  When in doubt (debugging, tracing, profiling),
drop back to ``workers=1``.
"""

from repro.parallel.cache import RunCache
from repro.parallel.executor import SweepExecutor, execute_job, run_sweep
from repro.parallel.jobs import JobSpec, expand_jobs

__all__ = [
    "JobSpec",
    "RunCache",
    "SweepExecutor",
    "execute_job",
    "expand_jobs",
    "run_sweep",
]
