"""Sweep executor: serial reference path and process-pool fan-out.

See :mod:`repro.parallel` for the design rationale.  The executor's one
contract is *submission-order determinism*: ``run(jobs)`` returns results
in the order the jobs were submitted, and each result is a pure function
of its spec — so ``workers=1`` and ``workers=N`` are interchangeable.

Jobs are declarative :class:`~repro.experiments.scenario.Scenario` values
(or legacy :class:`~repro.parallel.jobs.JobSpec` instances, which resolve
into scenarios); either way the spec's content hash :meth:`key` is the
memoisation key.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Union

from repro.parallel.cache import RunCache
from repro.parallel.jobs import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ExperimentResult
    from repro.experiments.scenario import Scenario

    SweepJob = Union["Scenario", JobSpec]


def execute_job(spec: "SweepJob") -> "ExperimentResult":
    """Run one spec to completion (also the worker-process entry point)."""
    # Imported lazily: the experiments package imports the figure drivers,
    # which import this module — a module-level import would be circular.
    from repro.experiments.runner import run
    from repro.experiments.scenario import Scenario

    scenario = spec if isinstance(spec, Scenario) else spec.to_scenario()
    return run(scenario)


def _execute_job_shipped(spec: "SweepJob") -> "ExperimentResult":
    """Worker-pool entry point: run the job, strip process-local state.

    A :class:`~repro.sim.trace.TraceRecorder` is heavy (one event object
    per protocol step) and only meaningful in the process that produced
    it, so it never crosses the pool boundary: ``trace`` is only
    available on in-process (``workers=1``) runs.  The request records
    themselves already travel in compact columnar form
    (:class:`~repro.metrics.columns.RecordColumns` packs itself on
    pickling).
    """
    result = execute_job(spec)
    result.trace = None
    return result


class SweepExecutor:
    """Fan a list of specs (scenarios / job specs) over ``workers`` processes.

    Parameters
    ----------
    workers:
        ``1`` (default) runs every job in the current process, in
        submission order — the bit-for-bit reference path.  ``N > 1``
        uses a ``ProcessPoolExecutor`` with at most ``N`` workers.
    cache:
        Optional :class:`~repro.parallel.cache.RunCache`; completed runs
        are memoised by job-spec hash, and duplicate specs within one
        submission are simulated only once.
    """

    def __init__(self, workers: int = 1, cache: Optional[RunCache] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.cache = cache

    def run(self, jobs: Iterable["SweepJob"]) -> List["ExperimentResult"]:
        """Execute ``jobs`` and return their results in submission order."""
        specs = list(jobs)
        results: List[Optional["ExperimentResult"]] = [None] * len(specs)

        # With a cache, resolve hits and collapse duplicate specs
        # (``unique`` keeps the first index of each distinct job).
        # Without one, every job runs — the exact pre-executor behaviour.
        pending: List[int] = []
        unique: dict[str, int] = {}
        keys: List[Optional[str]] = [None] * len(specs)
        for i, spec in enumerate(specs):
            if self.cache is None:
                pending.append(i)
                continue
            key = spec.key()
            keys[i] = key
            hit = self.cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
            if key in unique:
                continue
            unique[key] = i
            pending.append(i)

        if pending:
            if self.workers == 1:
                for i in pending:
                    results[i] = execute_job(specs[i])
            else:
                workers = min(self.workers, len(pending))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    for i, result in zip(
                        pending, pool.map(_execute_job_shipped, [specs[i] for i in pending])
                    ):
                        results[i] = result
            if self.cache is not None:
                for i in pending:
                    # A cache outlives the process that filled it (the
                    # persistent level by design), so the process-local
                    # TraceRecorder never enters it: serial and parallel
                    # sweeps sharing a cache must serve identical entries.
                    results[i].trace = None
                    # Telemetry switched on by $REPRO_TELEMETRY (not by
                    # the scenario) must not enter the cache either: the
                    # scenario's key knows nothing of the env var, so an
                    # env-decorated entry would leak a snapshot into
                    # env-less lookups of the same key.  Scenario-axis
                    # snapshots stay — their key includes the spec.
                    snapshot = getattr(results[i], "telemetry", None)
                    if snapshot is not None and getattr(snapshot, "source", "scenario") == "env":
                        results[i].telemetry = None
                    self.cache.put(keys[i], results[i])

        # Fill duplicate-spec slots from the run that covered them.
        if self.cache is not None:
            for i in range(len(specs)):
                if results[i] is None:
                    results[i] = results[unique[keys[i]]]
        return results  # type: ignore[return-value]


def run_sweep(
    jobs: Sequence["SweepJob"],
    workers: int = 1,
    cache: Optional[RunCache] = None,
) -> List["ExperimentResult"]:
    """Convenience wrapper: ``SweepExecutor(workers, cache).run(jobs)``."""
    return SweepExecutor(workers=workers, cache=cache).run(jobs)
