"""Struct-of-arrays storage for request lifecycle records.

Every layer of the harness used to shuttle per-request lifecycles around
as ``List[RequestRecord]`` — tens of thousands of small dataclass objects
whose pickling dominated IPC for long runs (the first open performance
item of ROADMAP.md).  :class:`RecordColumns` replaces the list with one
column per field:

* ``process`` / ``index`` — ``array('q')`` request identity columns,
* ``issue`` / ``grant`` / ``release`` — time columns (``array('d')`` on
  the live collection path, ``array('f')`` in results; ``NaN`` marks a
  lifecycle stage never reached),
* ``resource_ids`` / ``offsets`` — the resource sets in CSR form: row
  ``i`` requested ``resource_ids[offsets[i]:offsets[i+1]]`` (ids kept in
  the order the request iterable supplied them — deterministic for a
  seeded workload, and order-preserving for float accumulations).

The container is **cheap to transport**: pickling goes through
:meth:`__reduce__`, which packs the integer columns into the smallest
machine type that fits, byte-shuffles the time columns (grouping the
high-order bytes that barely vary) and compresses the lot with lzma —
about an order of magnitude smaller than pickling the equivalent record
list (``benchmarks/test_bench_results.py`` tracks the exact ratio).  It
is **content-hashable** via :meth:`content_key`, and **backwards
compatible**: ``__getitem__`` / :meth:`iter_records` materialise
:class:`RequestRecord` views on demand, so code that indexed or iterated
``result.records`` keeps working unchanged.

Precision contract: result columns store times as ``float32``.  At the
simulated-millisecond scale of the paper's workloads that is sub-
microsecond resolution — three orders of magnitude below the 0.6 ms
network latency the model simulates — and it is applied *after* the
collector computes all aggregate metrics over full doubles, so figure
series are unaffected.  Callers needing exact doubles on the record
level should read ``MetricsCollector.columns`` in-process.
"""

from __future__ import annotations

import hashlib
import lzma
import math
from array import array
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

__all__ = ["ChunkedColumns", "DowntimeColumns", "RecordColumns", "RequestRecord"]

#: Version tag of the packed (pickled) layout; unpacking rejects unknown
#: versions loudly instead of misreading bytes.
PACK_VERSION = 1

#: LZMA filter chain of the packed form: preset 6 is the speed/size sweet
#: spot for the few-kilobyte payloads a run produces (measurably smaller
#: than zlib on shuffled float planes, still well under a millisecond
#: here), and ``FORMAT_RAW`` drops the xz container overhead — the pack
#: version field plays that role.
_LZMA_FILTERS = [{"id": lzma.FILTER_LZMA2, "preset": 6}]

#: Sentinel typecode marking an elided index column (see ``_packed``).
_ELIDED = "-"

_NAN = float("nan")

#: Unsigned machine types tried (smallest first) when packing an integer
#: column for transport.
_UNSIGNED_TYPECODES = ("B", "H", "I", "Q")


@dataclass
class RequestRecord:
    """Lifecycle of a single critical-section request.

    Results hand these out as *views* materialised from
    :class:`RecordColumns`; mutating a view does not write back.
    """

    process: int
    index: int
    resources: FrozenSet[int]
    issue_time: float
    grant_time: Optional[float] = None
    release_time: Optional[float] = None

    @property
    def size(self) -> int:
        """Number of requested resources."""
        return len(self.resources)

    @property
    def waiting_time(self) -> Optional[float]:
        """Time spent waiting for the CS, or ``None`` if never granted."""
        if self.grant_time is None:
            return None
        return self.grant_time - self.issue_time

    @property
    def completed(self) -> bool:
        """Whether the request went through its full lifecycle."""
        return self.release_time is not None


def _fit_typecode(column: array) -> str:
    """Smallest array typecode able to hold every value of ``column``."""
    if not len(column):
        return "B"
    lo, hi = min(column), max(column)
    if lo >= 0:
        for typecode in _UNSIGNED_TYPECODES:
            if hi <= 2 ** (8 * array(typecode).itemsize) - 1:
                return typecode
    return "q"  # negative or enormous values: signed 64-bit always fits


def _shuffle(data: bytes, itemsize: int) -> bytes:
    """Blosc-style byte transpose: group byte 0 of every item, then byte 1, ...

    Time columns share their high-order (sign/exponent) bytes across
    items; grouping them turns near-constant byte runs into long matches
    for zlib.  :func:`_unshuffle` is the exact inverse.
    """
    if itemsize <= 1 or len(data) <= itemsize:
        return data
    n = len(data) // itemsize
    out = bytearray(len(data))
    for byte in range(itemsize):
        out[byte * n : (byte + 1) * n] = data[byte::itemsize]
    return bytes(out)


def _unshuffle(data: bytes, itemsize: int) -> bytes:
    if itemsize <= 1 or len(data) <= itemsize:
        return data
    n = len(data) // itemsize
    out = bytearray(len(data))
    for byte in range(itemsize):
        out[byte::itemsize] = data[byte * n : (byte + 1) * n]
    return bytes(out)


class RecordColumns:
    """Struct-of-arrays container of request lifecycle records.

    Parameters
    ----------
    time_typecode:
        ``array`` typecode of the three time columns: ``'d'`` (exact
        doubles — what :class:`~repro.metrics.collector.MetricsCollector`
        uses on the live path) or ``'f'`` (the compact result/transport
        form; see the module docstring for the precision contract).
    """

    __slots__ = ("process", "index", "issue", "grant", "release", "resource_ids", "offsets")

    def __init__(self, time_typecode: str = "f") -> None:
        if time_typecode not in ("f", "d"):
            raise ValueError(f"time_typecode must be 'f' or 'd', got {time_typecode!r}")
        self.process = array("q")
        self.index = array("q")
        self.issue = array(time_typecode)
        self.grant = array(time_typecode)
        self.release = array(time_typecode)
        self.resource_ids = array("q")
        self.offsets = array("q", [0])

    # ------------------------------------------------------------------ #
    # construction / mutation
    # ------------------------------------------------------------------ #
    @property
    def time_typecode(self) -> str:
        """Typecode of the time columns (``'f'`` or ``'d'``)."""
        return self.issue.typecode

    def append(self, process: int, index: int, resources: Iterable[int], issue_time: float) -> int:
        """Append one freshly issued request; returns its row number.

        ``grant``/``release`` start as ``NaN`` (never reached); resource
        ids are stored in the iteration order of ``resources`` — for the
        collector that is the workload's frozenset order, which keeps
        downstream float accumulations (busy-time sums) in the exact
        order the record-list implementation used.
        """
        row = len(self.process)
        self.process.append(process)
        self.index.append(index)
        self.issue.append(issue_time)
        self.grant.append(_NAN)
        self.release.append(_NAN)
        for r in resources:
            self.resource_ids.append(r)
        self.offsets.append(len(self.resource_ids))
        return row

    def set_grant(self, row: int, time: float) -> None:
        """Record the grant time of row ``row``."""
        self.grant[row] = time

    def set_release(self, row: int, time: float) -> None:
        """Record the release time of row ``row``."""
        self.release[row] = time

    @classmethod
    def from_records(
        cls, records: Iterable["RequestRecord"], time_typecode: str = "f"
    ) -> "RecordColumns":
        """Build columns from an iterable of :class:`RequestRecord`."""
        cols = cls(time_typecode=time_typecode)
        for rec in records:
            row = cols.append(rec.process, rec.index, rec.resources, rec.issue_time)
            if rec.grant_time is not None:
                cols.set_grant(row, rec.grant_time)
            if rec.release_time is not None:
                cols.set_release(row, rec.release_time)
        return cols

    # ------------------------------------------------------------------ #
    # row access (backward-compatible record views)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.process)

    def size_of(self, row: int) -> int:
        """Number of resources requested by row ``row``."""
        return self.offsets[row + 1] - self.offsets[row]

    def resources_of(self, row: int) -> FrozenSet[int]:
        """Resource set of row ``row`` as a frozenset."""
        return frozenset(self.resource_ids[self.offsets[row] : self.offsets[row + 1]])

    def grant_time(self, row: int) -> Optional[float]:
        """Grant time of row ``row``, or ``None`` if never granted."""
        value = self.grant[row]
        return None if math.isnan(value) else value

    def release_time(self, row: int) -> Optional[float]:
        """Release time of row ``row``, or ``None`` if never released."""
        value = self.release[row]
        return None if math.isnan(value) else value

    def record(self, row: int) -> "RequestRecord":
        """Materialise one row as a :class:`RequestRecord` view."""
        return RequestRecord(
            process=self.process[row],
            index=self.index[row],
            resources=self.resources_of(row),
            issue_time=self.issue[row],
            grant_time=self.grant_time(row),
            release_time=self.release_time(row),
        )

    def __getitem__(
        self, item: Union[int, slice]
    ) -> Union["RequestRecord", List["RequestRecord"]]:
        if isinstance(item, slice):
            return [self.record(row) for row in range(*item.indices(len(self)))]
        row = item if item >= 0 else len(self) + item
        if not 0 <= row < len(self):
            raise IndexError(f"row {item} out of range for {len(self)} records")
        return self.record(row)

    def __iter__(self) -> Iterator["RequestRecord"]:
        return self.iter_records()

    def iter_records(self) -> Iterator["RequestRecord"]:
        """Yield every row as a :class:`RequestRecord` view."""
        for row in range(len(self)):
            yield self.record(row)

    def to_records(self) -> List["RequestRecord"]:
        """Materialise the whole container as a list of records."""
        return [self.record(row) for row in range(len(self))]

    # ------------------------------------------------------------------ #
    # transformation
    # ------------------------------------------------------------------ #
    def compact(self, time_typecode: str = "f") -> "RecordColumns":
        """Copy sorted by ``(process, index)`` with times in ``time_typecode``.

        This is the canonical result form: the runner compacts the
        collector's live double-precision columns exactly once, so the
        serial path, the worker path and every cache level all hold the
        same bytes.
        """
        order = sorted(range(len(self)), key=lambda i: (self.process[i], self.index[i]))
        out = RecordColumns(time_typecode=time_typecode)
        for i in order:
            out.process.append(self.process[i])
            out.index.append(self.index[i])
            out.issue.append(self.issue[i])
            out.grant.append(self.grant[i])
            out.release.append(self.release[i])
            for k in range(self.offsets[i], self.offsets[i + 1]):
                out.resource_ids.append(self.resource_ids[k])
            out.offsets.append(len(out.resource_ids))
        return out

    # ------------------------------------------------------------------ #
    # equality / content hashing
    # ------------------------------------------------------------------ #
    def _canonical_bytes(self) -> bytes:
        """Typecode-independent byte rendering used by eq/hash.

        Integer columns always live in ``'q'`` arrays in memory, so their
        raw bytes are canonical; time columns carry their typecode (an
        ``'f'`` and a ``'d'`` column are different content even when the
        values coincide — they round-trip differently).
        """
        head = f"{PACK_VERSION}:{self.time_typecode}:{len(self)}:{len(self.resource_ids)}:"
        return b"".join(
            (
                head.encode("ascii"),
                self.process.tobytes(),
                self.index.tobytes(),
                self.issue.tobytes(),
                self.grant.tobytes(),
                self.release.tobytes(),
                self.resource_ids.tobytes(),
                self.offsets.tobytes(),
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordColumns):
            return NotImplemented
        return self._canonical_bytes() == other._canonical_bytes()

    __hash__ = None  # mutable while collecting; hash content via content_key()

    def content_key(self) -> str:
        """Hex digest of the full content (order, ids, times, typecode)."""
        return hashlib.sha256(self._canonical_bytes()).hexdigest()

    def __repr__(self) -> str:
        return (
            f"RecordColumns(n={len(self)}, time_typecode={self.time_typecode!r}, "
            f"resource_ids={len(self.resource_ids)})"
        )

    # ------------------------------------------------------------------ #
    # compact pickling
    # ------------------------------------------------------------------ #
    def __reduce__(self) -> Tuple:
        return (_rebuild_columns, self._packed())

    def _packed(self) -> Tuple:
        """Pack into (version, counts, typecodes, lzma blob).

        Times are byte-shuffled (see :func:`_shuffle`); integer columns
        are narrowed to the smallest machine type that fits their range,
        and the CSR ``offsets`` travel as per-row *sizes* (byte-sized for
        realistic requests, and far more compressible than a monotone
        offset ramp — offsets are rebuilt cumulatively on unpack).  NaN
        time sentinels survive byte-exactly: the shuffle/compress
        pipeline is lossless on the stored representation.
        """
        parts: List[bytes] = []
        for column in (self.issue, self.grant, self.release):
            parts.append(_shuffle(column.tobytes(), column.itemsize))
        sizes = array(
            "q", (self.offsets[i + 1] - self.offsets[i] for i in range(len(self)))
        )
        columns = [self.process, self.index, sizes, self.resource_ids]
        if self._index_is_canonical():
            columns[1] = None  # closed-loop indexes: rebuilt from `process`
        int_typecodes = []
        for column in columns:
            if column is None:
                int_typecodes.append(_ELIDED)
                continue
            typecode = _fit_typecode(column)
            narrowed = column if typecode == column.typecode else array(typecode, column)
            int_typecodes.append(typecode)
            parts.append(narrowed.tobytes())
        blob = lzma.compress(b"".join(parts), format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS)
        return (
            PACK_VERSION,
            len(self),
            len(self.resource_ids),
            self.time_typecode,
            "".join(int_typecodes),
            blob,
        )

    def _index_is_canonical(self) -> bool:
        """Whether ``index`` is the closed-loop form: 0, 1, 2, ... per process.

        True for every run the workload generator drives (each process
        numbers its requests consecutively from zero), in which case the
        column carries no information beyond ``process`` and is elided
        from the packed payload.
        """
        counters: dict = {}
        for process, index in zip(self.process, self.index):
            if index != counters.get(process, 0):
                return False
            counters[process] = index + 1
        return True


def _rebuild_columns(
    version: int,
    n: int,
    num_ids: int,
    time_typecode: str,
    int_typecodes: str,
    blob: bytes,
) -> RecordColumns:
    """Inverse of :meth:`RecordColumns._packed` (the pickle constructor)."""
    if version != PACK_VERSION:
        raise ValueError(f"unsupported RecordColumns pack version {version}")
    raw = lzma.decompress(blob, format=lzma.FORMAT_RAW, filters=_LZMA_FILTERS)
    cols = RecordColumns(time_typecode=time_typecode)
    pos = 0

    def take(nbytes: int) -> bytes:
        nonlocal pos
        chunk = raw[pos : pos + nbytes]
        pos += nbytes
        return chunk

    def take_ints(typecode: str, length: int) -> array:
        packed = array(typecode)
        packed.frombytes(take(length * packed.itemsize))
        return packed if typecode == "q" else array("q", packed)

    time_itemsize = array(time_typecode).itemsize
    for name in ("issue", "grant", "release"):
        column = array(time_typecode)
        column.frombytes(_unshuffle(take(n * time_itemsize), time_itemsize))
        setattr(cols, name, column)
    cols.process = take_ints(int_typecodes[0], n)
    if int_typecodes[1] == _ELIDED:
        counters: dict = {}
        index = array("q")
        for process in cols.process:
            index.append(counters.get(process, 0))
            counters[process] = index[-1] + 1
        cols.index = index
    else:
        cols.index = take_ints(int_typecodes[1], n)
    sizes = take_ints(int_typecodes[2], n)
    cols.resource_ids = take_ints(int_typecodes[3], num_ids)
    offsets = array("q", [0])
    total = 0
    for size in sizes:
        total += size
        offsets.append(total)
    cols.offsets = offsets
    if pos != len(raw) or total != num_ids:
        raise ValueError("corrupt RecordColumns payload")
    return cols


def _load_packed(entry: Union[Tuple, str]) -> Tuple:
    """Resolve a chunk entry (packed tuple, or path to a spilled one)."""
    if isinstance(entry, str):
        import pickle

        with open(entry, "rb") as fh:
            return pickle.load(fh)
    return entry


class ChunkedColumns:
    """Chunked record store: a sequence of packed :class:`RecordColumns`.

    Produced by :class:`~repro.metrics.collector.MetricsCollector` when a
    scenario sets ``record_chunk_rows``: completed prefixes of the live
    columns are sealed into lzma-packed chunks (the exact
    :meth:`RecordColumns._packed` transport form — a few bytes per row)
    either held in memory or spilled to a temporary directory, so a
    10^6+-request run's record memory is bounded by the chunk size plus
    whatever is still in flight.

    The read surface is the same as :class:`RecordColumns` — ``len``,
    iteration, integer/slice indexing, :meth:`content_key` — but rows are
    kept in **issue order** (chunks seal in completion-prefix order;
    nothing ever holds all rows to sort them), unlike the compact
    ``(process, index)``-sorted unchunked result.  Random access unpacks
    the covering chunk, so iterate rather than index in hot loops.

    ``tempdir`` (when spilling) is a ``tempfile.TemporaryDirectory``
    owned by this container: the spill files live exactly as long as the
    result object, and pickling re-inlines the packed chunks so results
    cross process boundaries without a shared filesystem.
    """

    __slots__ = ("_entries", "_lengths", "_starts", "_tempdir", "_cache")

    def __init__(
        self,
        entries: List[Union[Tuple, str]],
        lengths: List[int],
        tempdir: Optional[object] = None,
    ) -> None:
        if len(entries) != len(lengths):
            raise ValueError("entries and lengths must be parallel")
        self._entries = list(entries)
        self._lengths = list(lengths)
        starts = [0]
        for n in self._lengths:
            starts.append(starts[-1] + n)
        self._starts = starts
        self._tempdir = tempdir
        self._cache: Tuple[int, Optional[RecordColumns]] = (-1, None)

    # ------------------------------------------------------------------ #
    # chunk access
    # ------------------------------------------------------------------ #
    @property
    def chunk_count(self) -> int:
        """Number of sealed chunks (including the final live-tail chunk)."""
        return len(self._entries)

    def chunk_lengths(self) -> Tuple[int, ...]:
        """Row count of each chunk, in order."""
        return tuple(self._lengths)

    def chunk(self, i: int) -> RecordColumns:
        """Unpack chunk ``i`` into a :class:`RecordColumns` (cached once)."""
        if not 0 <= i < len(self._entries):
            raise IndexError(f"chunk {i} out of range for {len(self._entries)} chunks")
        cached_i, cached = self._cache
        if cached_i == i and cached is not None:
            return cached
        cols = _rebuild_columns(*_load_packed(self._entries[i]))
        self._cache = (i, cols)
        return cols

    # ------------------------------------------------------------------ #
    # record-compatible read surface
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._starts[-1]

    def __getitem__(
        self, item: Union[int, slice]
    ) -> Union["RequestRecord", List["RequestRecord"]]:
        if isinstance(item, slice):
            return [self[i] for i in range(*item.indices(len(self)))]
        row = item if item >= 0 else len(self) + item
        if not 0 <= row < len(self):
            raise IndexError(f"row {item} out of range for {len(self)} records")
        import bisect

        i = bisect.bisect_right(self._starts, row) - 1
        return self.chunk(i)[row - self._starts[i]]

    def __iter__(self) -> Iterator["RequestRecord"]:
        return self.iter_records()

    def iter_records(self) -> Iterator["RequestRecord"]:
        """Yield every row as a :class:`RequestRecord` view, chunk by chunk."""
        for i in range(len(self._entries)):
            yield from self.chunk(i).iter_records()

    def to_records(self) -> List["RequestRecord"]:
        """Materialise the whole container as a list of records."""
        return list(self.iter_records())

    def to_columns(self, time_typecode: Optional[str] = None) -> RecordColumns:
        """Concatenate every chunk into one flat :class:`RecordColumns`.

        Materialises all rows (issue order preserved) — a convenience for
        tests and small post-processing, not for the streaming path.
        """
        first = self.chunk(0) if self._entries else RecordColumns()
        out = RecordColumns(time_typecode=time_typecode or first.time_typecode)
        for i in range(len(self._entries)):
            chunk = self.chunk(i)
            for row in range(len(chunk)):
                out.process.append(chunk.process[row])
                out.index.append(chunk.index[row])
                out.issue.append(chunk.issue[row])
                out.grant.append(chunk.grant[row])
                out.release.append(chunk.release[row])
                for k in range(chunk.offsets[row], chunk.offsets[row + 1]):
                    out.resource_ids.append(chunk.resource_ids[k])
                out.offsets.append(len(out.resource_ids))
        return out

    # ------------------------------------------------------------------ #
    # equality / content hashing / pickling
    # ------------------------------------------------------------------ #
    def content_key(self) -> str:
        """Hex digest over the chunks' canonical bytes.

        Chunk boundaries are part of the content (two layouts of the same
        rows hash differently); compare :meth:`to_columns` results to
        check row-level equality across layouts.
        """
        h = hashlib.sha256()
        h.update(f"chunked:{len(self._entries)}:".encode("ascii"))
        for i in range(len(self._entries)):
            h.update(self.chunk(i)._canonical_bytes())
        return h.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkedColumns):
            return NotImplemented
        if self._lengths != other._lengths:
            return False
        return all(self.chunk(i) == other.chunk(i) for i in range(len(self._entries)))

    __hash__ = None  # content-hash via content_key(), like RecordColumns

    def __reduce__(self) -> Tuple:
        # Spilled chunks are re-inlined: the receiving process has no
        # access to this process's temporary spill directory.
        packed = tuple(_load_packed(entry) for entry in self._entries)
        return (_rebuild_chunked, (PACK_VERSION, tuple(self._lengths), packed))

    def __repr__(self) -> str:
        spilled = sum(1 for e in self._entries if isinstance(e, str))
        return (
            f"ChunkedColumns(n={len(self)}, chunks={len(self._entries)}, "
            f"spilled={spilled})"
        )


def _rebuild_chunked(version: int, lengths: Tuple[int, ...], packed: Tuple) -> ChunkedColumns:
    """Pickle constructor for :class:`ChunkedColumns` (all chunks in memory)."""
    if version != PACK_VERSION:
        raise ValueError(f"unsupported ChunkedColumns pack version {version}")
    return ChunkedColumns(list(packed), list(lengths))


class DowntimeColumns:
    """Struct-of-arrays per-node downtime accounting of one run.

    One row per node that actually went down during the run:

    * ``nodes`` — ``array('q')`` node ids, strictly increasing,
    * ``downtime`` — ``array('d')`` total simulated time the node spent
      crashed (open windows are closed at the run's end time),
    * ``crashes`` — ``array('q')`` number of distinct outages the node
      suffered (overlapping fault windows count once).

    A run with no fired crash windows carries empty columns; runs without
    any crash windows at all carry ``ExperimentResult.downtime = None``,
    which keeps the no-fault result payload byte-identical to the
    pre-lifecycle layout.  The container is tiny (a handful of rows), so
    unlike :class:`RecordColumns` it pickles its arrays directly.
    """

    __slots__ = ("nodes", "downtime", "crashes")

    def __init__(self) -> None:
        self.nodes = array("q")
        self.downtime = array("d")
        self.crashes = array("q")

    @classmethod
    def build(
        cls,
        nodes: Iterable[int],
        downtime: Iterable[float],
        crashes: Iterable[int],
    ) -> "DowntimeColumns":
        """Assemble columns from parallel per-node sequences."""
        cols = cls()
        cols.nodes = array("q", nodes)
        cols.downtime = array("d", downtime)
        cols.crashes = array("q", crashes)
        if not len(cols.nodes) == len(cols.downtime) == len(cols.crashes):
            raise ValueError("downtime columns must have equal lengths")
        return cols

    def __len__(self) -> int:
        return len(self.nodes)

    def as_dict(self) -> dict:
        """``node id -> total downtime`` as a plain dict."""
        return dict(zip(self.nodes, self.downtime))

    @property
    def total(self) -> float:
        """Total downtime summed over all nodes."""
        return sum(self.downtime)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DowntimeColumns):
            return NotImplemented
        return (
            self.nodes == other.nodes
            and self.downtime == other.downtime
            and self.crashes == other.crashes
        )

    def __hash__(self) -> int:
        """Value hash consistent with ``__eq__`` (hash a finished run only)."""
        return hash((bytes(self.nodes), bytes(self.downtime), bytes(self.crashes)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = ", ".join(
            f"{n}: {d:g}ms/{c}x" for n, d, c in zip(self.nodes, self.downtime, self.crashes)
        )
        return f"DowntimeColumns({rows})"
