"""Small, dependency-free summary statistics helpers.

NumPy is available in the environment, but the metric vectors handled here
are short (thousands of floats at most) and keeping this module pure-Python
lets the core library stay free of hard numeric dependencies.

:func:`summarize` is column-oriented: handed an ``array('d')`` (as the
metrics collector now does) it streams over it directly — one pass for
count/sum/min/max, one for the deviation sum — without materialising
intermediate Python float lists; the only ordering cost is the single sort
backing the median.  The float arithmetic (left-to-right summation,
population variance around the exact mean) is unchanged from the original
list-based implementation, so results are bit-identical.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    vals = list(values)
    if len(vals) < 2:
        return 0.0
    mu = mean(vals)
    return math.sqrt(sum((v - mu) ** 2 for v in vals) / len(vals))


def _percentile_of_sorted(vals: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample."""
    if not vals:
        return 0.0
    if len(vals) == 1:
        return vals[0]
    pos = (len(vals) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return vals[lo]
    frac = pos - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile ``q`` in [0, 100]; 0.0 when empty."""
    if not 0 <= q <= 100:
        raise ValueError("q must lie in [0, 100]")
    return _percentile_of_sorted(sorted(values), q)


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample: count, mean, standard deviation, extrema, median."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    median: float

    def describe(self, unit: str = "") -> str:
        """Compact human-readable rendering."""
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.2f}{suffix} sd={self.stddev:.2f} "
            f"min={self.minimum:.2f} med={self.median:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Iterable[float]) -> SummaryStats:
    """Build a :class:`SummaryStats` from a sample (all zeros when empty).

    Accepts any iterable; an ``array`` (or other sequence) column is
    consumed in place, anything else is packed into an ``array('d')``
    buffer first — never into a Python float list.
    """
    buf = values if isinstance(values, (array, list, tuple)) else array("d", values)
    n = len(buf)
    if n == 0:
        return SummaryStats(count=0, mean=0.0, stddev=0.0, minimum=0.0, maximum=0.0, median=0.0)
    total = 0.0
    minimum = maximum = buf[0]
    for v in buf:
        total += v
        if v < minimum:
            minimum = v
        elif v > maximum:
            maximum = v
    mu = total / n
    if n < 2:
        sd = 0.0
    else:
        deviation = 0.0
        for v in buf:
            deviation += (v - mu) ** 2
        sd = math.sqrt(deviation / n)
    return SummaryStats(
        count=n,
        mean=mu,
        stddev=sd,
        minimum=minimum,
        maximum=maximum,
        median=_percentile_of_sorted(sorted(buf), 50.0),
    )


__all__: List[str] = [
    "SummaryStats",
    "mean",
    "stddev",
    "percentile",
    "summarize",
]
