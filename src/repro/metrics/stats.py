"""Small, dependency-free summary statistics helpers.

NumPy is available in the environment, but the metric vectors handled here
are short (thousands of floats at most) and keeping this module pure-Python
lets the core library stay free of hard numeric dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    vals = list(values)
    if len(vals) < 2:
        return 0.0
    mu = mean(vals)
    return math.sqrt(sum((v - mu) ** 2 for v in vals) / len(vals))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile ``q`` in [0, 100]; 0.0 when empty."""
    if not 0 <= q <= 100:
        raise ValueError("q must lie in [0, 100]")
    vals = sorted(values)
    if not vals:
        return 0.0
    if len(vals) == 1:
        return vals[0]
    pos = (len(vals) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return vals[lo]
    frac = pos - lo
    return vals[lo] * (1.0 - frac) + vals[hi] * frac


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a sample: count, mean, standard deviation, extrema, median."""

    count: int
    mean: float
    stddev: float
    minimum: float
    maximum: float
    median: float

    def describe(self, unit: str = "") -> str:
        """Compact human-readable rendering."""
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.2f}{suffix} sd={self.stddev:.2f} "
            f"min={self.minimum:.2f} med={self.median:.2f} max={self.maximum:.2f}"
        )


def summarize(values: Iterable[float]) -> SummaryStats:
    """Build a :class:`SummaryStats` from a sample (all zeros when empty)."""
    vals: List[float] = list(values)
    if not vals:
        return SummaryStats(count=0, mean=0.0, stddev=0.0, minimum=0.0, maximum=0.0, median=0.0)
    return SummaryStats(
        count=len(vals),
        mean=mean(vals),
        stddev=stddev(vals),
        minimum=min(vals),
        maximum=max(vals),
        median=percentile(vals, 50.0),
    )
