"""Metrics collection and reporting.

Implements the two metrics of the paper's evaluation (Section 5):

* **resource-use rate** — percentage of time resources are in use over the
  measured window (Figure 4 illustrates the definition, Figure 5 reports
  it),
* **average waiting time** — time between issuing a request and obtaining
  the right to use all requested resources (Figures 6 and 7),

plus message-complexity accounting and ASCII Gantt rendering used by the
examples to reproduce the content of Figures 1 and 4.
"""

from repro.metrics.collector import MetricsCollector, RequestRecord, RunMetrics, SafetyViolation
from repro.metrics.columns import RecordColumns
from repro.metrics.gantt import GanttChart, render_gantt
from repro.metrics.stats import SummaryStats, mean, percentile, stddev, summarize

__all__ = [
    "MetricsCollector",
    "RecordColumns",
    "RequestRecord",
    "RunMetrics",
    "SafetyViolation",
    "GanttChart",
    "render_gantt",
    "SummaryStats",
    "mean",
    "stddev",
    "percentile",
    "summarize",
]
