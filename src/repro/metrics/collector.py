"""Run-time metric collection with built-in safety checking.

The collector is the single observer of every experiment run.  It records
request lifecycles (issue -> grant -> release), verifies online that the
*safety* property holds (no resource is ever used by two processes at the
same simulated time) and computes the paper's metrics over the measurement
window ``[warmup, horizon]``:

* resource-use rate (Figure 5),
* average waiting time, overall and per request-size class (Figures 6, 7).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.metrics.stats import SummaryStats, summarize


class SafetyViolation(AssertionError):
    """Raised when two processes hold the same resource simultaneously."""


@dataclass
class RequestRecord:
    """Lifecycle of a single critical-section request."""

    process: int
    index: int
    resources: FrozenSet[int]
    issue_time: float
    grant_time: Optional[float] = None
    release_time: Optional[float] = None

    @property
    def size(self) -> int:
        """Number of requested resources."""
        return len(self.resources)

    @property
    def waiting_time(self) -> Optional[float]:
        """Time spent waiting for the CS, or ``None`` if never granted."""
        if self.grant_time is None:
            return None
        return self.grant_time - self.issue_time

    @property
    def completed(self) -> bool:
        """Whether the request went through its full lifecycle."""
        return self.release_time is not None


@dataclass(frozen=True)
class RunMetrics:
    """Aggregated results of one experiment run."""

    algorithm: str
    use_rate: float
    waiting: SummaryStats
    waiting_by_size: Dict[int, SummaryStats]
    issued: int
    granted: int
    completed: int
    messages_total: int
    messages_by_type: Dict[str, int]
    messages_per_cs: float
    duration: float
    warmup: float
    num_resources: int
    extra: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary used by the experiment reports."""
        return (
            f"{self.algorithm}: use_rate={self.use_rate:.1f}% "
            f"avg_wait={self.waiting.mean:.1f}ms (sd={self.waiting.stddev:.1f}) "
            f"completed={self.completed}/{self.issued} msgs/cs={self.messages_per_cs:.1f}"
        )


class MetricsCollector:
    """Observer recording every request lifecycle of a run.

    Parameters
    ----------
    num_resources:
        Total number of resources ``M`` (needed for the use-rate denominator).
    warmup:
        Requests *issued* before this time are excluded from waiting-time
        statistics, and resource busy time before this instant is excluded
        from the use-rate numerator.
    check_safety:
        When true (default), concurrent use of a resource by two processes
        raises :class:`SafetyViolation` immediately.
    """

    def __init__(self, num_resources: int, warmup: float = 0.0, check_safety: bool = True) -> None:
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        self.num_resources = num_resources
        self.warmup = float(warmup)
        self.check_safety = check_safety
        self._records: Dict[Tuple[int, int], RequestRecord] = {}
        self._holder: Dict[int, Tuple[int, int]] = {}
        self._busy_since: Dict[int, float] = {}
        self._busy_time: Dict[int, float] = defaultdict(float)
        self._concurrency_samples: List[Tuple[float, int]] = []
        self._in_cs: set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # lifecycle callbacks
    # ------------------------------------------------------------------ #
    def on_issue(self, time: float, process: int, index: int, resources: FrozenSet[int]) -> None:
        """A process issued a new request at simulated ``time``."""
        key = (process, index)
        if key in self._records:
            raise ValueError(f"duplicate request {key}")
        if not resources:
            raise ValueError("request must name at least one resource")
        self._records[key] = RequestRecord(
            process=process, index=index, resources=frozenset(resources), issue_time=time
        )

    def on_grant(self, time: float, process: int, index: int) -> None:
        """A process obtained all its resources and enters the CS."""
        key = (process, index)
        record = self._records.get(key)
        if record is None:
            raise ValueError(f"grant for unknown request {key}")
        if record.grant_time is not None:
            raise ValueError(f"request {key} granted twice")
        record.grant_time = time
        if self.check_safety:
            for r in record.resources:
                holder = self._holder.get(r)
                if holder is not None:
                    raise SafetyViolation(
                        f"resource {r} granted to process {process} at t={time} "
                        f"while held by process {holder[0]} (request {holder})"
                    )
        for r in record.resources:
            self._holder[r] = key
            self._busy_since[r] = time
        self._in_cs.add(key)
        self._concurrency_samples.append((time, len(self._in_cs)))

    def on_release(self, time: float, process: int, index: int) -> None:
        """A process finished its CS and released all resources."""
        key = (process, index)
        record = self._records.get(key)
        if record is None:
            raise ValueError(f"release for unknown request {key}")
        if record.grant_time is None:
            raise ValueError(f"request {key} released before being granted")
        if record.release_time is not None:
            raise ValueError(f"request {key} released twice")
        record.release_time = time
        for r in record.resources:
            if self._holder.get(r) == key:
                start = self._busy_since.pop(r, record.grant_time)
                begin = max(start, self.warmup)
                if time > begin:
                    self._busy_time[r] += time - begin
                del self._holder[r]
        self._in_cs.discard(key)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> List[RequestRecord]:
        """All request records, in (process, index) order."""
        return [self._records[k] for k in sorted(self._records)]

    def record_for(self, process: int, index: int) -> RequestRecord:
        """Return one specific request record."""
        return self._records[(process, index)]

    def currently_held(self) -> Dict[int, Tuple[int, int]]:
        """Snapshot of resource -> (process, index) currently holding it."""
        return dict(self._holder)

    def all_completed(self) -> bool:
        """Whether every issued request went through grant and release."""
        return all(r.completed for r in self._records.values())

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def _close_open_intervals(self, horizon: float) -> Dict[int, float]:
        busy = dict(self._busy_time)
        for r, start in self._busy_since.items():
            begin = max(start, self.warmup)
            if horizon > begin:
                busy[r] = busy.get(r, 0.0) + horizon - begin
        return busy

    def use_rate(self, horizon: float) -> float:
        """Resource-use rate (percent) over ``[warmup, horizon]``."""
        window = horizon - self.warmup
        if window <= 0:
            return 0.0
        busy = self._close_open_intervals(horizon)
        total_busy = sum(min(b, window) for b in busy.values())
        return 100.0 * total_busy / (window * self.num_resources)

    def waiting_times(self, min_issue: Optional[float] = None) -> List[float]:
        """Waiting times of granted requests issued after ``min_issue``."""
        threshold = self.warmup if min_issue is None else min_issue
        out = []
        for rec in self._records.values():
            if rec.waiting_time is None:
                continue
            if rec.issue_time < threshold:
                continue
            out.append(rec.waiting_time)
        return out

    def waiting_times_by_size(
        self, buckets: Optional[List[int]] = None
    ) -> Dict[int, List[float]]:
        """Waiting times grouped by request size.

        When ``buckets`` is given (e.g. ``[1, 17, 33, 49, 65, 80]`` as in
        Figure 7), each request is assigned to the closest bucket value;
        otherwise exact sizes are used as keys.
        """
        grouped: Dict[int, List[float]] = defaultdict(list)
        for rec in self._records.values():
            wt = rec.waiting_time
            if wt is None or rec.issue_time < self.warmup:
                continue
            if buckets:
                key = min(buckets, key=lambda b: abs(b - rec.size))
            else:
                key = rec.size
            grouped[key].append(wt)
        return dict(grouped)

    def build(
        self,
        algorithm: str,
        horizon: float,
        messages_total: int = 0,
        messages_by_type: Optional[Dict[str, int]] = None,
        size_buckets: Optional[List[int]] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> RunMetrics:
        """Assemble the final :class:`RunMetrics` for the run."""
        issued = len(self._records)
        granted = sum(1 for r in self._records.values() if r.grant_time is not None)
        completed = sum(1 for r in self._records.values() if r.completed)
        waits = self.waiting_times()
        by_size = {
            size: summarize(vals)
            for size, vals in sorted(self.waiting_times_by_size(size_buckets).items())
        }
        messages_per_cs = messages_total / completed if completed else 0.0
        return RunMetrics(
            algorithm=algorithm,
            use_rate=self.use_rate(horizon),
            waiting=summarize(waits),
            waiting_by_size=by_size,
            issued=issued,
            granted=granted,
            completed=completed,
            messages_total=messages_total,
            messages_by_type=dict(messages_by_type or {}),
            messages_per_cs=messages_per_cs,
            duration=horizon,
            warmup=self.warmup,
            num_resources=self.num_resources,
            extra=dict(extra or {}),
        )
