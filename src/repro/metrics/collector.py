"""Run-time metric collection with built-in safety checking.

The collector is the single observer of every experiment run.  It records
request lifecycles (issue -> grant -> release) directly into a
struct-of-arrays :class:`~repro.metrics.columns.RecordColumns` (double
precision on this live path), verifies online that the *safety* property
holds (no resource is ever used by two processes at the same simulated
time) and computes the paper's metrics over the measurement window
``[warmup, horizon]``:

* resource-use rate (Figure 5),
* average waiting time, overall and per request-size class (Figures 6, 7).

Aggregation (:meth:`MetricsCollector.build`) makes a single pass over the
columns — counts, overall waiting times and per-size-class groups all come
out of one loop, feeding :func:`~repro.metrics.stats.summarize` packed
``array('d')`` buffers instead of Python float lists.

**Chunked mode** (``chunk_rows`` set, driven by
``Scenario.record_chunk_rows``): whenever the completed *prefix* of the
live columns reaches the chunk size, it is sealed — its waiting-time /
size samples are folded into compact streaming buffers and its rows are
packed into an lzma chunk (optionally spilled to a temporary directory),
so record memory stays O(chunk + in-flight) however long the run.
Sealing strictly preserves issue order and the float accumulation order
of every aggregate, so a chunked run's :class:`RunMetrics` is
bit-identical to the unchunked run's; only the result's record container
differs (a :class:`~repro.metrics.columns.ChunkedColumns` in issue order
instead of a ``(process, index)``-sorted ``RecordColumns``).
"""

from __future__ import annotations

import math
import os
import pickle
import tempfile
from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.metrics.columns import ChunkedColumns, RecordColumns, RequestRecord
from repro.metrics.stats import SummaryStats, summarize

__all__ = [
    "MetricsCollector",
    "RequestRecord",
    "RunMetrics",
    "SafetyViolation",
]


class SafetyViolation(AssertionError):
    """Raised when two processes hold the same resource simultaneously."""


def _bucket_for(size: int, buckets: Optional[List[int]]) -> int:
    """Size class of a request: nearest of ``buckets``, or the exact size.

    The single definition of Figure 7's bucket-assignment rule, shared by
    the public grouping helper and the one-pass aggregation in ``build``.
    """
    if buckets:
        return min(buckets, key=lambda b: abs(b - size))
    return size


@dataclass(frozen=True)
class RunMetrics:
    """Aggregated results of one experiment run."""

    algorithm: str
    use_rate: float
    waiting: SummaryStats
    waiting_by_size: Dict[int, SummaryStats]
    issued: int
    granted: int
    completed: int
    messages_total: int
    messages_by_type: Dict[str, int]
    messages_per_cs: float
    duration: float
    warmup: float
    num_resources: int
    extra: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary used by the experiment reports."""
        return (
            f"{self.algorithm}: use_rate={self.use_rate:.1f}% "
            f"avg_wait={self.waiting.mean:.1f}ms (sd={self.waiting.stddev:.1f}) "
            f"completed={self.completed}/{self.issued} msgs/cs={self.messages_per_cs:.1f}"
        )


class MetricsCollector:
    """Observer recording every request lifecycle of a run.

    Parameters
    ----------
    num_resources:
        Total number of resources ``M`` (needed for the use-rate denominator).
    warmup:
        Requests *issued* before this time are excluded from waiting-time
        statistics, and resource busy time before this instant is excluded
        from the use-rate numerator.
    check_safety:
        When true (default), concurrent use of a resource by two processes
        raises :class:`SafetyViolation` immediately.
    chunk_rows:
        When set, seal completed prefixes of about this many rows into
        packed chunks (see the module docstring).  ``None`` (default)
        keeps every record live — the classic exact-bytes path.
    spill:
        With ``chunk_rows``, write sealed chunks to a private temporary
        directory instead of holding the packed bytes in memory; the
        spill files live as long as the result's record container.
    """

    def __init__(
        self,
        num_resources: int,
        warmup: float = 0.0,
        check_safety: bool = True,
        chunk_rows: Optional[int] = None,
        spill: bool = False,
    ) -> None:
        if num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1 (or None for unchunked)")
        if spill and chunk_rows is None:
            raise ValueError("spill requires chunk_rows")
        self.num_resources = num_resources
        self.warmup = float(warmup)
        self.check_safety = check_safety
        #: Live struct-of-arrays record store, in issue order, full doubles.
        #: In chunked mode this holds only the rows not yet sealed; row
        #: numbers in ``_rows`` are local to it.
        self.columns = RecordColumns(time_typecode="d")
        self._rows: Dict[Tuple[int, int], int] = {}
        self._holder: Dict[int, Tuple[int, int]] = {}
        self._busy_since: Dict[int, float] = {}
        self._busy_time: Dict[int, float] = {}
        self._concurrency_samples: List[Tuple[float, int]] = []
        self._in_cs: set[Tuple[int, int]] = set()
        #: Requests whose critical section was cut short by a node crash.
        self.aborted = 0
        #: Telemetry push seam (:class:`repro.obs.runtime.TelemetryRuntime`):
        #: ``None`` on default runs, where the hook in :meth:`on_grant` is
        #: a single attribute load + ``is None`` branch — no repro.obs
        #: frame ever executes (the zero-overhead contract).
        self.telemetry = None
        # --- chunked mode state -------------------------------------- #
        self._chunk_rows = chunk_rows
        self._spill = spill
        self._spill_tmp: Optional[tempfile.TemporaryDirectory] = None
        #: Sealed chunk entries (packed tuples, or spill-file paths).
        self._sealed_chunks: List[object] = []
        self._sealed_lengths: List[int] = []
        #: Rows sealed so far (every sealed row completed its lifecycle).
        self._sealed_rows = 0
        # Streaming per-sealed-row aggregates, in issue order, full
        # doubles — exactly the samples ``build`` would have read off the
        # live columns, so chunked metrics are bit-identical.
        self._sealed_waits = array("d")
        self._sealed_issues = array("d")
        self._sealed_sizes = array("q")
        # Length of the completed prefix of the live columns, advanced
        # incrementally on release (amortised O(1) per request).
        self._prefix = 0
        #: High-water mark of live (unsealed) rows — the quantity the
        #: chunked memory contract bounds; tests assert against it.
        self.max_live_rows = 0

    # ------------------------------------------------------------------ #
    # lifecycle callbacks
    # ------------------------------------------------------------------ #
    def on_issue(self, time: float, process: int, index: int, resources: FrozenSet[int]) -> None:
        """A process issued a new request at simulated ``time``."""
        key = (process, index)
        if key in self._rows:
            raise ValueError(f"duplicate request {key}")
        if not resources:
            raise ValueError("request must name at least one resource")
        self._rows[key] = self.columns.append(process, index, resources, time)
        if len(self.columns) > self.max_live_rows:
            self.max_live_rows = len(self.columns)

    def on_grant(self, time: float, process: int, index: int) -> None:
        """A process obtained all its resources and enters the CS."""
        key = (process, index)
        row = self._rows.get(key)
        if row is None:
            raise ValueError(f"grant for unknown request {key}")
        cols = self.columns
        if not math.isnan(cols.grant[row]):
            raise ValueError(f"request {key} granted twice")
        cols.grant[row] = time
        ids = cols.resource_ids
        lo, hi = cols.offsets[row], cols.offsets[row + 1]
        holder_map = self._holder
        if self.check_safety:
            for k in range(lo, hi):
                holder = holder_map.get(ids[k])
                if holder is not None:
                    raise SafetyViolation(
                        f"resource {ids[k]} granted to process {process} at t={time} "
                        f"while held by process {holder[0]} (request {holder})"
                    )
        busy_since = self._busy_since
        for k in range(lo, hi):
            holder_map[ids[k]] = key
            busy_since[ids[k]] = time
        self._in_cs.add(key)
        self._concurrency_samples.append((time, len(self._in_cs)))
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.observe_grant(time, process, time - cols.issue[row])

    def on_release(self, time: float, process: int, index: int) -> None:
        """A process finished its CS and released all resources."""
        key = (process, index)
        row = self._rows.get(key)
        if row is None:
            raise ValueError(f"release for unknown request {key}")
        cols = self.columns
        grant_time = cols.grant[row]
        if math.isnan(grant_time):
            raise ValueError(f"request {key} released before being granted")
        if not math.isnan(cols.release[row]):
            raise ValueError(f"request {key} released twice")
        cols.release[row] = time
        self._free_resources(key, row, time, grant_time)
        if self._chunk_rows is not None:
            release = cols.release
            n = len(cols)
            while self._prefix < n and not math.isnan(release[self._prefix]):
                self._prefix += 1
            if self._prefix >= self._chunk_rows:
                self._seal_prefix()

    def _free_resources(
        self, key: Tuple[int, int], row: int, time: float, grant_time: float
    ) -> None:
        """Release ``key``'s held resources at ``time`` (release or abort).

        Closes each resource's busy interval (clamped to the warmup) and
        clears the holder map, so subsequent grants of the same resources
        pass the online safety check.  Shared by :meth:`on_release` and
        :meth:`on_abort` so busy-time accounting can never diverge
        between the clean and the crashed path.
        """
        cols = self.columns
        ids = cols.resource_ids
        busy_time = self._busy_time
        holder_map = self._holder
        busy_since = self._busy_since
        warmup = self.warmup
        for k in range(cols.offsets[row], cols.offsets[row + 1]):
            r = ids[k]
            if holder_map.get(r) == key:
                start = busy_since.pop(r, grant_time)
                begin = start if start > warmup else warmup
                if time > begin:
                    busy_time[r] = busy_time.get(r, 0.0) + (time - begin)
                del holder_map[r]
        self._in_cs.discard(key)

    def on_abort(self, time: float, process: int, index: int) -> None:
        """A crash killed the process while it was inside its CS.

        The resources are forcibly freed — their busy intervals close at
        the crash instant, and the safety checker stops regarding them as
        held, so a regenerated token granting one of them to another
        process is not a (false) safety violation.  The request itself
        stays *incomplete*: its ``release`` column remains ``NaN`` and it
        is never counted as completed, which is what makes aborts visible
        in ``completion_rate``.  Aborting a request that was never
        granted is a no-op (nothing was held).
        """
        key = (process, index)
        row = self._rows.get(key)
        if row is None:
            raise ValueError(f"abort for unknown request {key}")
        cols = self.columns
        grant_time = cols.grant[row]
        if math.isnan(grant_time):
            return  # never granted: nothing held, nothing to free
        self.aborted += 1
        if not math.isnan(cols.release[row]):
            raise ValueError(f"request {key} aborted after release")
        self._free_resources(key, row, time, grant_time)

    # ------------------------------------------------------------------ #
    # chunk sealing
    # ------------------------------------------------------------------ #
    def _pack_rows(self, end: int) -> Tuple:
        """Pack live rows ``[0, end)`` into the float32 transport form."""
        cols = self.columns
        chunk = RecordColumns(time_typecode="f")
        for row in range(end):
            chunk.process.append(cols.process[row])
            chunk.index.append(cols.index[row])
            chunk.issue.append(cols.issue[row])
            chunk.grant.append(cols.grant[row])
            chunk.release.append(cols.release[row])
            for k in range(cols.offsets[row], cols.offsets[row + 1]):
                chunk.resource_ids.append(cols.resource_ids[k])
            chunk.offsets.append(len(chunk.resource_ids))
        return chunk._packed()

    def _store_chunk(self, packed: Tuple, rows: int) -> None:
        """Append a packed chunk (in memory, or as a spill file)."""
        if self._spill:
            if self._spill_tmp is None:
                self._spill_tmp = tempfile.TemporaryDirectory(prefix="repro-record-spill-")
            path = os.path.join(
                self._spill_tmp.name, f"{len(self._sealed_chunks):06d}.chunk"
            )
            with open(path, "wb") as fh:
                pickle.dump(packed, fh)
            self._sealed_chunks.append(path)
        else:
            self._sealed_chunks.append(packed)
        self._sealed_lengths.append(rows)

    def _seal_prefix(self) -> None:
        """Seal the completed prefix of the live columns into a chunk.

        Only *contiguous completed* rows seal (a request still in flight
        — or abandoned ungranted by a crash — holds the prefix), so a
        sealed row can never be touched again and the aggregates
        accumulate in exactly the issue order ``build`` would have used.
        """
        k = self._prefix
        cols = self.columns
        for row in range(k):
            issue = cols.issue[row]
            self._sealed_waits.append(cols.grant[row] - issue)
            self._sealed_issues.append(issue)
            self._sealed_sizes.append(cols.offsets[row + 1] - cols.offsets[row])
        self._store_chunk(self._pack_rows(k), k)
        live = RecordColumns(time_typecode="d")
        for row in range(k, len(cols)):
            live.process.append(cols.process[row])
            live.index.append(cols.index[row])
            live.issue.append(cols.issue[row])
            live.grant.append(cols.grant[row])
            live.release.append(cols.release[row])
            for j in range(cols.offsets[row], cols.offsets[row + 1]):
                live.resource_ids.append(cols.resource_ids[j])
            live.offsets.append(len(live.resource_ids))
        self.columns = live
        self._rows = {key: row - k for key, row in self._rows.items() if row >= k}
        self._sealed_rows += k
        self._prefix = 0

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def records(self) -> List[RequestRecord]:
        """All *live* request records (views), in (process, index) order.

        In chunked mode sealed rows are no longer addressable here — use
        the result's record container for the full run.
        """
        return [self.columns[self._rows[k]] for k in sorted(self._rows)]

    def incomplete_requests(self) -> List[Tuple[int, int]]:
        """``(process, index)`` of issued-but-never-completed requests, sorted.

        Sealed rows are complete by construction, so the live columns see
        every incomplete request even in chunked mode.
        """
        cols = self.columns
        return sorted(
            (cols.process[row], cols.index[row])
            for row in range(len(cols))
            if math.isnan(cols.release[row])
        )

    def record_for(self, process: int, index: int) -> RequestRecord:
        """Return one specific request record (a view; not written back)."""
        return self.columns[self._rows[(process, index)]]

    def currently_held(self) -> Dict[int, Tuple[int, int]]:
        """Snapshot of resource -> (process, index) currently holding it."""
        return dict(self._holder)

    def all_completed(self) -> bool:
        """Whether every issued request went through grant and release."""
        return not any(math.isnan(value) for value in self.columns.release)

    def result_columns(self) -> Union[RecordColumns, ChunkedColumns]:
        """Compact copy of the records for an :class:`ExperimentResult`.

        Unchunked: sorted by ``(process, index)`` with ``float32`` times —
        the canonical transport/cache form (see
        :mod:`repro.metrics.columns` for the precision contract).
        Chunked: a :class:`ChunkedColumns` of the sealed chunks plus the
        remaining live tail, in **issue order** (nothing ever holds all
        rows at once to sort them).  Aggregate metrics are always
        computed from the double-precision aggregates, never from these
        compact copies.
        """
        if self._chunk_rows is None:
            return self.columns.compact(time_typecode="f")
        entries = list(self._sealed_chunks)
        lengths = list(self._sealed_lengths)
        if len(self.columns) or not entries:
            entries.append(self._pack_rows(len(self.columns)))
            lengths.append(len(self.columns))
        tempdir = self._spill_tmp
        self._spill_tmp = None  # ownership moves to the result container
        return ChunkedColumns(entries, lengths, tempdir=tempdir)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def _close_open_intervals(self, horizon: float) -> Dict[int, float]:
        busy = dict(self._busy_time)
        for r, start in self._busy_since.items():
            begin = max(start, self.warmup)
            if horizon > begin:
                busy[r] = busy.get(r, 0.0) + horizon - begin
        return busy

    def use_rate(self, horizon: float) -> float:
        """Resource-use rate (percent) over ``[warmup, horizon]``."""
        window = horizon - self.warmup
        if window <= 0:
            return 0.0
        busy = self._close_open_intervals(horizon)
        total_busy = sum(min(b, window) for b in busy.values())
        return 100.0 * total_busy / (window * self.num_resources)

    def waiting_times(self, min_issue: Optional[float] = None) -> List[float]:
        """Waiting times of granted requests issued after ``min_issue``."""
        threshold = self.warmup if min_issue is None else min_issue
        cols = self.columns
        sealed = [
            wait
            for wait, issue in zip(self._sealed_waits, self._sealed_issues)
            if issue >= threshold
        ]
        return sealed + [
            grant - issue
            for issue, grant in zip(cols.issue, cols.grant)
            if not math.isnan(grant) and issue >= threshold
        ]

    def waiting_times_by_size(
        self, buckets: Optional[List[int]] = None
    ) -> Dict[int, List[float]]:
        """Waiting times grouped by request size.

        When ``buckets`` is given (e.g. ``[1, 17, 33, 49, 65, 80]`` as in
        Figure 7), each request is assigned to the closest bucket value;
        otherwise exact sizes are used as keys.
        """
        cols = self.columns
        grouped: Dict[int, List[float]] = {}
        for wait, issue, size in zip(
            self._sealed_waits, self._sealed_issues, self._sealed_sizes
        ):
            if issue >= self.warmup:
                grouped.setdefault(_bucket_for(size, buckets), []).append(wait)
        for row in range(len(cols)):
            grant = cols.grant[row]
            if math.isnan(grant) or cols.issue[row] < self.warmup:
                continue
            size = cols.offsets[row + 1] - cols.offsets[row]
            grouped.setdefault(_bucket_for(size, buckets), []).append(grant - cols.issue[row])
        return grouped

    def build(
        self,
        algorithm: str,
        horizon: float,
        messages_total: int = 0,
        messages_by_type: Optional[Dict[str, int]] = None,
        size_buckets: Optional[List[int]] = None,
        extra: Optional[Dict[str, float]] = None,
    ) -> RunMetrics:
        """Assemble the final :class:`RunMetrics` for the run.

        One pass over the columns yields the grant/completion counts, the
        overall waiting-time sample and the per-size-class groups; each
        sample is accumulated straight into an ``array('d')`` buffer that
        :func:`summarize` consumes without further copies.
        """
        cols = self.columns
        warmup = self.warmup
        issued = self._sealed_rows + len(cols)
        # Sealed rows all completed their lifecycle; their measured
        # samples stream in first, in issue order — the exact order the
        # single-pass loop below would have produced unchunked.
        granted = completed = self._sealed_rows
        waits = array("d")
        by_size_samples: Dict[int, array] = {}
        for wait, issue, size in zip(
            self._sealed_waits, self._sealed_issues, self._sealed_sizes
        ):
            if issue < warmup:
                continue
            waits.append(wait)
            key = _bucket_for(size, size_buckets)
            bucket = by_size_samples.get(key)
            if bucket is None:
                bucket = by_size_samples[key] = array("d")
            bucket.append(wait)
        for row in range(len(cols)):
            grant = cols.grant[row]
            if not math.isnan(cols.release[row]):
                completed += 1
            if math.isnan(grant):
                continue
            granted += 1
            issue = cols.issue[row]
            if issue < warmup:
                continue
            wait = grant - issue
            waits.append(wait)
            size = cols.offsets[row + 1] - cols.offsets[row]
            key = _bucket_for(size, size_buckets)
            bucket = by_size_samples.get(key)
            if bucket is None:
                bucket = by_size_samples[key] = array("d")
            bucket.append(wait)
        by_size = {size: summarize(vals) for size, vals in sorted(by_size_samples.items())}
        messages_per_cs = messages_total / completed if completed else 0.0
        return RunMetrics(
            algorithm=algorithm,
            use_rate=self.use_rate(horizon),
            waiting=summarize(waits),
            waiting_by_size=by_size,
            issued=issued,
            granted=granted,
            completed=completed,
            messages_total=messages_total,
            messages_by_type=dict(messages_by_type or {}),
            messages_per_cs=messages_per_cs,
            duration=horizon,
            warmup=warmup,
            num_resources=self.num_resources,
            extra=dict(extra or {}),
        )
