"""ASCII Gantt charts of resource usage.

Figures 1 and 4 of the paper illustrate the resource-use-rate metric with
Gantt diagrams (time on the x-axis, one row per resource, coloured blocks
when the resource is in use).  :func:`render_gantt` reproduces that view in
the terminal from completed request records — either an iterable of
:class:`RequestRecord` objects or a columnar
:class:`~repro.metrics.columns.RecordColumns` (what
``ExperimentResult.records`` now is), which is consumed directly without
materialising per-record views — and is used by
``examples/gantt_illustration.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.metrics.columns import RecordColumns, RequestRecord

_FILL_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


@dataclass(frozen=True)
class GanttChart:
    """Pre-rendered Gantt data: one row of (start, end, label) per resource."""

    resources: Tuple[int, ...]
    intervals: Dict[int, Tuple[Tuple[float, float, int], ...]]
    horizon: float

    def busy_fraction(self, resource: int) -> float:
        """Fraction of the horizon during which ``resource`` was in use."""
        if self.horizon <= 0:
            return 0.0
        busy = sum(end - start for start, end, _ in self.intervals.get(resource, ()))
        return min(busy / self.horizon, 1.0)

    def overall_use_rate(self) -> float:
        """Average busy fraction over all resources, in percent."""
        if not self.resources:
            return 0.0
        return 100.0 * sum(self.busy_fraction(r) for r in self.resources) / len(self.resources)


def build_chart(
    records: Union[RecordColumns, Iterable[RequestRecord]],
    num_resources: int,
    horizon: float | None = None,
) -> GanttChart:
    """Build a :class:`GanttChart` from completed request records."""
    per_resource: Dict[int, List[Tuple[float, float, int]]] = {r: [] for r in range(num_resources)}
    max_end = 0.0
    if isinstance(records, RecordColumns):
        # Columnar fast path: read the arrays directly, no record views.
        cols = records
        for row in range(len(cols)):
            grant, release = cols.grant[row], cols.release[row]
            if math.isnan(grant) or math.isnan(release):
                continue
            max_end = max(max_end, release)
            for k in range(cols.offsets[row], cols.offsets[row + 1]):
                per_resource.setdefault(cols.resource_ids[k], []).append(
                    (grant, release, cols.process[row])
                )
    else:
        for rec in records:
            if rec.grant_time is None or rec.release_time is None:
                continue
            max_end = max(max_end, rec.release_time)
            for r in rec.resources:
                per_resource.setdefault(r, []).append(
                    (rec.grant_time, rec.release_time, rec.process)
                )
    for intervals in per_resource.values():
        intervals.sort()
    h = horizon if horizon is not None else max_end
    return GanttChart(
        resources=tuple(sorted(per_resource)),
        intervals={r: tuple(v) for r, v in per_resource.items()},
        horizon=h,
    )


def render_gantt(
    records: Union[RecordColumns, Iterable[RequestRecord]],
    num_resources: int,
    width: int = 72,
    horizon: float | None = None,
    resource_names: Sequence[str] | None = None,
) -> str:
    """Render an ASCII Gantt chart.

    Each row is one resource; time flows left to right over ``width``
    columns; a cell shows the letter associated with the process using the
    resource during that slice, or ``.`` when idle.
    """
    chart = build_chart(records, num_resources, horizon)
    if chart.horizon <= 0:
        return "(empty gantt: no completed critical sections)"
    lines: List[str] = []
    label_width = max(
        (len(resource_names[r]) if resource_names else len(f"r{r}")) for r in chart.resources
    )
    for r in chart.resources:
        name = resource_names[r] if resource_names else f"r{r}"
        cells = ["."] * width
        for start, end, process in chart.intervals.get(r, ()):
            first = int(width * start / chart.horizon)
            last = int(width * end / chart.horizon)
            first = max(0, min(first, width - 1))
            last = max(first + 1, min(last, width))
            fill = _FILL_CHARS[process % len(_FILL_CHARS)]
            for c in range(first, last):
                cells[c] = fill
        lines.append(f"{name:<{label_width}} |{''.join(cells)}|")
    lines.append(
        f"{'':<{label_width}}  use rate = {chart.overall_use_rate():.1f}% "
        f"over {chart.horizon:.1f} ms"
    )
    return "\n".join(lines)
