#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section.

Runs the full experiment grid (Figures 5, 6 and 7, both load levels) at a
configurable scale and prints the same rows/series the paper reports, plus
the headline ratios quoted in the abstract.  The output of a full run is
recorded in EXPERIMENTS.md.

Usage::

    python scripts/reproduce_results.py              # paper scale (N=32, M=80)
    python scripts/reproduce_results.py --quick      # scaled-down smoke run
    python scripts/reproduce_results.py --duration 20000 --seeds 1 2 3
    python scripts/reproduce_results.py --workers 8  # parallel sweep

``--workers N`` fans the independent runs of each figure grid out over N
processes; results are bit-identical to the serial default (``--workers 1``)
because every run is a pure function of its declarative scenario.  A shared
run cache keyed by scenario content hash deduplicates grid points that
several figures have in common, and — unless ``--no-disk-cache`` is given —
persists completed runs under ``~/.cache/repro`` (override with
``--cache-dir`` or ``$REPRO_CACHE_DIR``) so repeated invocations skip
already-simulated grid points entirely.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.figures import (
    figure5_use_rate,
    figure6_waiting_time,
    figure7_waiting_by_size,
)
from repro.experiments.report import format_figure5, format_figure6, format_figure7
from repro.parallel import RunCache, SweepExecutor
from repro.workload.params import LoadLevel, WorkloadParams


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="scaled-down run (8 processes, 20 resources)")
    parser.add_argument("--processes", type=int, default=32)
    parser.add_argument("--resources", type=int, default=80)
    parser.add_argument("--duration", type=float, default=6_000.0,
                        help="simulated milliseconds per run")
    parser.add_argument("--warmup", type=float, default=600.0)
    parser.add_argument("--seeds", type=int, nargs="+", default=[1])
    parser.add_argument("--phis", type=int, nargs="+",
                        default=[1, 4, 8, 16, 40, 80])
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sweep (0 = all cores; "
                             "1 = serial reference path)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory of the persistent run cache "
                             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="keep the run cache in memory only")
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.quick:
        args.processes, args.resources = 8, 20
        args.duration, args.warmup = 1_200.0, 150.0
        args.phis = [1, 2, 4, 8, 16, 20]

    base = WorkloadParams(
        num_processes=args.processes,
        num_resources=args.resources,
        duration=args.duration,
        warmup=args.warmup,
        phi=4,
    )
    phis = [p for p in args.phis if p <= args.resources]
    seeds = tuple(args.seeds)
    workers = args.workers if args.workers > 0 else (os.cpu_count() or 1)
    if args.no_disk_cache:
        cache = RunCache()
    else:
        cache = RunCache.persistent(args.cache_dir)
    executor = SweepExecutor(workers=workers, cache=cache)
    started = time.time()

    print(f"# Reproduction run: {base.describe()}")
    print(f"# phi sweep: {phis}, seeds: {list(seeds)}, workers: {workers}")
    print(f"# run cache: {cache.path if cache.path is not None else 'in-memory'}")
    print()

    for load in (LoadLevel.MEDIUM, LoadLevel.HIGH):
        t0 = time.time()
        fig5 = figure5_use_rate(load=load, base_params=base, phis=phis, seeds=seeds,
                                executor=executor)
        print(format_figure5(fig5))
        print(f"# figure5 {load.value}: {time.time() - t0:.1f}s wall")
        print()

    for load in (LoadLevel.MEDIUM, LoadLevel.HIGH):
        t0 = time.time()
        fig6 = figure6_waiting_time(load=load, base_params=base, seeds=seeds,
                                    executor=executor)
        print(format_figure6(fig6))
        print(f"# figure6 {load.value}: {time.time() - t0:.1f}s wall")
        print()

    for load in (LoadLevel.MEDIUM, LoadLevel.HIGH):
        t0 = time.time()
        fig7 = figure7_waiting_by_size(load=load, base_params=base, seeds=seeds,
                                       executor=executor)
        print(format_figure7(fig7))
        print(f"# figure7 {load.value}: {time.time() - t0:.1f}s wall")
        print()

    cache = executor.cache
    print(f"# total wall time: {time.time() - started:.1f}s "
          f"(cache: {cache.hits} hits / {cache.misses} misses)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
