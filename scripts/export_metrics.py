#!/usr/bin/env python3
"""Run one scenario with telemetry and dump the Prometheus exposition.

The bridge from a simulated run to standard observability tooling: the
run's end-of-run :class:`~repro.obs.metrics.TelemetrySnapshot` renders
as Prometheus text exposition, suitable for ``promtool check metrics``,
a pushgateway, or simple diffing between runs::

    python scripts/export_metrics.py                        # canonical scenario
    python scripts/export_metrics.py --algorithm incremental --phi 8
    python scripts/export_metrics.py --interval 10 -o run.prom
    python scripts/export_metrics.py --health               # health reports too

Telemetry here is always explicit (``Scenario(telemetry=...)``), never
the ``REPRO_TELEMETRY`` override: the scenario printed at the top is the
complete description of the run.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))


def build_scenario(args):
    """Fold the CLI selection into a telemetry-enabled Scenario."""
    from repro.experiments.scenario import Scenario
    from repro.obs import TelemetrySpec
    from repro.workload.params import WorkloadParams

    params = WorkloadParams(
        num_processes=args.processes,
        num_resources=args.resources,
        phi=args.phi,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
    )
    spec = TelemetrySpec(
        sample_interval=args.interval,
        node_gauges=not args.no_node_gauges,
    )
    return Scenario(algorithm=args.algorithm, params=params, telemetry=spec)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="with_loan",
                        help="registered algorithm name (default: with_loan)")
    parser.add_argument("--processes", type=int, default=10, help="N (default 10)")
    parser.add_argument("--resources", type=int, default=24, help="M (default 24)")
    parser.add_argument("--phi", type=int, default=4, help="max request size (default 4)")
    parser.add_argument("--duration", type=float, default=1_500.0,
                        help="simulated duration in ms (default 1500)")
    parser.add_argument("--warmup", type=float, default=200.0,
                        help="warmup cut-off in ms (default 200)")
    parser.add_argument("--seed", type=int, default=1, help="workload seed (default 1)")
    parser.add_argument("--interval", type=float, default=50.0,
                        help="telemetry sample interval in simulated ms (default 50)")
    parser.add_argument("--no-node-gauges", action="store_true",
                        help="skip per-node series (large clusters)")
    parser.add_argument("--health", action="store_true",
                        help="append health reports as comments")
    parser.add_argument("-o", "--output", default=None,
                        help="write exposition to this file (default: stdout)")
    args = parser.parse_args()

    from repro.experiments.runner import run

    scenario = build_scenario(args)
    print(f"# scenario: {scenario.describe()}", file=sys.stderr)
    result = run(scenario)
    snapshot = result.telemetry
    assert snapshot is not None  # the scenario above always asks for telemetry

    text = snapshot.render_text()
    if args.health:
        lines = [
            f"# HEALTH {r.name} {r.status} at={r.checked_at:g} {r.detail}"
            for r in snapshot.health
        ]
        text += "".join(line + "\n" for line in lines)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)


if __name__ == "__main__":
    main()
