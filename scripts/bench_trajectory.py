#!/usr/bin/env python3
"""Per-PR benchmark trajectory: record once, trend forever.

ROADMAP item 5 asks for speedups and regressions to be visible *across*
PRs without re-running history.  This script runs a small fixed panel of
benchmark probes, persists the numbers to
``benchmarks/trajectory/BENCH_<pr>.json``, and regenerates the
``docs/benchmarks.md`` trend table from every JSON in that directory:

* ``python scripts/bench_trajectory.py --pr 8 --write`` — run the panel,
  write ``BENCH_8.json`` and regenerate the table;
* ``python scripts/bench_trajectory.py`` — run the panel and print it
  (no files touched);
* ``python scripts/bench_trajectory.py --check`` — verify (without
  running any benchmark) that ``docs/benchmarks.md`` is exactly what the
  trajectory directory generates; used by ``scripts/check.sh`` / CI so
  the table can never drift from its data.

The panel mixes deterministic protocol metrics (messages per CS, mean
waiting time — identical on every machine) with wall-clock throughputs
(events/s, requests/s — machine-dependent, still useful as a trend on a
stable CI runner).
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import re
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

TRAJECTORY_DIR = os.path.join(REPO, "benchmarks", "trajectory")
DOC_PATH = os.path.join(REPO, "docs", "benchmarks.md")
TRACE = os.path.join(REPO, "examples", "data", "sample.swf")


def run_panel() -> dict:
    """Run the benchmark panel once and return its measurements."""
    import pickle

    from repro.experiments.runner import run, run_experiment
    from repro.experiments.scenario import Scenario
    from repro.sim.engine import Simulator
    from repro.workload.arrivals import PoissonArrivals
    from repro.workload.params import WorkloadParams
    from repro.workload.spec import OpenLoopSpec, TraceReplaySpec

    metrics: dict = {}

    # -- kernel: raw event dispatch ---------------------------------- #
    n_events = 200_000
    nop = lambda: None
    for scheduler, key in (
        ("heap", "kernel_events_per_s"),
        ("calendar", "kernel_calendar_events_per_s"),
    ):
        sim = Simulator(scheduler)
        for i in range(n_events):
            sim.schedule(float(i % 97) * 0.01, nop)
        t0 = time.perf_counter()
        sim.run()
        metrics[key] = round(n_events / (time.perf_counter() - t0))

    # -- closed loop: the paper's algorithm at benchmark scale -------- #
    bench = WorkloadParams(
        num_processes=10, num_resources=24, phi=4,
        duration=1_500.0, warmup=200.0, seed=1,
    )
    t0 = time.perf_counter()
    result = run_experiment("with_loan", bench)
    elapsed = time.perf_counter() - t0
    metrics["closed_loop_events_per_s"] = round(result.events_processed / elapsed)
    metrics["closed_loop_msgs_per_cs"] = round(result.metrics.messages_per_cs, 2)
    metrics["closed_loop_mean_wait_ms"] = round(result.metrics.waiting.mean, 2)

    # -- open loop, chunked records ----------------------------------- #
    scenario = Scenario(
        algorithm="with_loan",
        params=WorkloadParams(
            num_processes=8, num_resources=20, phi=4,
            duration=3_000.0, warmup=300.0, seed=1,
        ),
        workload=OpenLoopSpec(arrival=PoissonArrivals(rate=0.03)),
        record_chunk_rows=128,
    )
    t0 = time.perf_counter()
    result = run(scenario)
    elapsed = time.perf_counter() - t0
    metrics["open_loop_requests_per_s"] = round(result.metrics.issued / elapsed)
    metrics["open_loop_mean_wait_ms"] = round(result.metrics.waiting.mean, 2)

    # -- trace replay -------------------------------------------------- #
    scenario = Scenario(
        algorithm="with_loan",
        params=WorkloadParams(
            num_processes=8, num_resources=20, phi=4,
            duration=4_000.0, warmup=400.0, seed=1,
        ),
        workload=TraceReplaySpec(path=TRACE),
    )
    t0 = time.perf_counter()
    result = run(scenario)
    elapsed = time.perf_counter() - t0
    metrics["trace_jobs_per_s"] = round(result.metrics.issued / elapsed)

    # -- result transport ---------------------------------------------- #
    quick = WorkloadParams(
        num_processes=8, num_resources=20, phi=4,
        duration=1_200.0, warmup=150.0, seed=1,
    )
    result = run(Scenario(algorithm="with_loan", params=quick))
    blob = pickle.dumps(result.record_columns, protocol=pickle.HIGHEST_PROTOCOL)
    metrics["records_payload_bytes"] = len(blob)

    return metrics


#: docs/benchmarks.md columns: (JSON metric key, table header).
COLUMNS = (
    ("kernel_events_per_s", "kernel ev/s"),
    ("kernel_calendar_events_per_s", "kernel cal ev/s"),
    ("closed_loop_events_per_s", "closed ev/s"),
    ("closed_loop_msgs_per_cs", "msgs/cs"),
    ("closed_loop_mean_wait_ms", "wait (ms)"),
    ("open_loop_requests_per_s", "open-loop req/s"),
    ("trace_jobs_per_s", "trace jobs/s"),
    ("records_payload_bytes", "payload (B)"),
)


def load_trajectory() -> list:
    """All recorded BENCH_<pr>.json entries, sorted by PR number."""
    entries = []
    if not os.path.isdir(TRAJECTORY_DIR):
        return entries
    for name in os.listdir(TRAJECTORY_DIR):
        match = re.fullmatch(r"BENCH_(\d+)\.json", name)
        if not match:
            continue
        with open(os.path.join(TRAJECTORY_DIR, name)) as fh:
            data = json.load(fh)
        data.setdefault("pr", int(match.group(1)))
        entries.append(data)
    return sorted(entries, key=lambda e: e["pr"])


def render_doc(entries: list) -> str:
    """The full ``docs/benchmarks.md`` text for the given trajectory."""
    lines = [
        "# Benchmark trajectory",
        "",
        "One row per PR, recorded by [`scripts/bench_trajectory.py`](../scripts/bench_trajectory.py)",
        "(`--pr <n> --write`) and checked for staleness in CI (`--check`).",
        "Wall-clock columns (`ev/s`, `req/s`, `jobs/s`) depend on the recording",
        "machine and are a trend, not a contract; `msgs/cs`, `wait` and the",
        "records payload size are deterministic protocol/transport metrics —",
        "a change there is a behaviour change, not noise.",
        "",
        "Probes: raw kernel dispatch (200k no-op events); the paper's loan",
        "algorithm in the closed loop at benchmark scale (N=10, M=24); an",
        "open-loop Poisson run with chunked record collection; a replay of the",
        "bursty SWF sample trace; and the pickled size of the quick-run record",
        "columns (the per-run IPC payload).",
        "",
    ]
    if not entries:
        lines.append("*(no trajectory recorded yet)*")
        lines.append("")
        return "\n".join(lines)
    header = ["PR", "recorded"] + [title for _, title in COLUMNS]
    rows = []
    for entry in entries:
        metrics = entry.get("metrics", {})
        rows.append(
            [str(entry["pr"]), str(entry.get("recorded", "?"))]
            + [str(metrics.get(key, "—")) for key, _ in COLUMNS]
        )
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    fmt = lambda cells: "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    lines.append(fmt(header))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt(row) for row in rows)
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pr", type=int, help="PR number to record the panel under")
    parser.add_argument(
        "--write", action="store_true",
        help="write benchmarks/trajectory/BENCH_<pr>.json and regenerate docs/benchmarks.md",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify docs/benchmarks.md matches the trajectory directory (no benchmarks run)",
    )
    args = parser.parse_args()

    if args.check:
        expected = render_doc(load_trajectory())
        try:
            with open(DOC_PATH) as fh:
                actual = fh.read()
        except FileNotFoundError:
            actual = None
        if actual != expected:
            print(
                "docs/benchmarks.md is stale; regenerate with "
                "`python scripts/bench_trajectory.py --pr <n> --write` "
                "(or re-render without new data via --write after restoring "
                "benchmarks/trajectory/)",
                file=sys.stderr,
            )
            sys.exit(1)
        print("docs/benchmarks.md is up to date with benchmarks/trajectory/")
        return

    if args.write and args.pr is None:
        parser.error("--write requires --pr")

    metrics = run_panel()
    for key, value in metrics.items():
        print(f"{key:28s} {value}")

    if not args.write:
        return

    os.makedirs(TRAJECTORY_DIR, exist_ok=True)
    entry = {
        "pr": args.pr,
        "recorded": datetime.date.today().isoformat(),
        "metrics": metrics,
    }
    path = os.path.join(TRAJECTORY_DIR, f"BENCH_{args.pr}.json")
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(DOC_PATH, "w") as fh:
        fh.write(render_doc(load_trajectory()))
    print(f"\nwrote {os.path.relpath(path, REPO)} and regenerated docs/benchmarks.md")


if __name__ == "__main__":
    main()
