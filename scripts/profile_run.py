#!/usr/bin/env python3
"""Profile the canonical closed-loop scenario with cProfile.

Two uses:

* ``python scripts/profile_run.py`` — run the canonical no-fault
  benchmark scenario under cProfile and print the top-20 functions by
  cumulative time.  This is the profile the PR 9 hot-path work was
  guided by; keeping the tool in-tree makes the next optimisation pass
  start from evidence instead of guesses.
* ``python scripts/profile_run.py --check`` — assert the zero-overhead
  contract structurally: a no-fault run must execute **no frames at
  all** from the fault layer (``sim/faults.py``), the crash lifecycle
  (``sim/lifecycle.py``), the recovery coordinator
  (``core/recovery.py``) or the telemetry package (the whole
  ``repro/obs/`` directory — the canonical scenario asks for no
  telemetry, so the observability seam must be provably inert).  The
  wall-clock guards for the same contracts live in
  ``benchmarks/test_bench_engine.py`` and
  ``benchmarks/test_bench_obs.py``; this check pins the mechanism (the
  code is truly never entered), so it cannot rot into "slow but under
  the noise floor".  Wired into ``scripts/check.sh``.

Options: ``--scheduler {heap,calendar}`` profiles a specific scheduler
(default: the engine's default resolution, i.e. heap unless
``REPRO_SCHEDULER`` overrides it); ``--sort`` picks the pstats sort key.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

#: Modules that must contribute zero frames to a no-fault run.  Entries
#: ending with a path separator name whole directories (matched anywhere
#: in the frame's path); the rest are file suffixes.
FORBIDDEN_ON_NO_FAULT_PATH = (
    os.path.join("sim", "faults.py"),
    os.path.join("sim", "lifecycle.py"),
    os.path.join("core", "recovery.py"),
    os.path.join("repro", "obs") + os.sep,
)

#: Construction-time frames that are allowed even from forbidden modules:
#: importing a module or defining its classes is not "consulting the
#: fault layer per message".  Nothing in the canonical scenario imports
#: these lazily today, so the allowlist is empty — it exists to make the
#: policy explicit.
ALLOWED_FRAMES: frozenset = frozenset()


def profile_canonical(scheduler):
    """Run the canonical closed-loop scenario under cProfile."""
    from repro.experiments.runner import run_experiment
    from repro.workload.params import WorkloadParams

    params = WorkloadParams(
        num_processes=10, num_resources=24, phi=4,
        duration=1_500.0, warmup=200.0, seed=1,
    )
    if scheduler is not None:
        os.environ["REPRO_SCHEDULER"] = scheduler
    run_experiment("with_loan", params)  # warm imports and caches
    profile = cProfile.Profile()
    profile.enable()
    result = run_experiment("with_loan", params)
    profile.disable()
    return profile, result


def check_no_fault_frames(profile) -> list:
    """Return forbidden (file, line, func) frames executed by the run."""
    stats = pstats.Stats(profile)
    offenders = []
    for (filename, lineno, funcname) in stats.stats:
        if (filename, funcname) in ALLOWED_FRAMES:
            continue
        for suffix in FORBIDDEN_ON_NO_FAULT_PATH:
            if suffix.endswith(os.sep):
                if suffix in filename:
                    offenders.append((filename, lineno, funcname))
            elif filename.endswith(suffix):
                offenders.append((filename, lineno, funcname))
    return offenders


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scheduler", choices=("heap", "calendar"), default=None,
        help="scheduler to profile (default: engine default / REPRO_SCHEDULER)",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        help="pstats sort key for the report (default: cumulative)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="assert the no-fault run executes no fault/lifecycle/recovery frames",
    )
    args = parser.parse_args()

    profile, result = profile_canonical(args.scheduler)

    if args.check:
        offenders = check_no_fault_frames(profile)
        if offenders:
            print("no-fault run executed frames from the crash subsystem:", file=sys.stderr)
            for filename, lineno, funcname in sorted(offenders):
                rel = os.path.relpath(filename, REPO)
                print(f"  {rel}:{lineno} {funcname}", file=sys.stderr)
            sys.exit(1)
        print(
            "no-fault fast path clean: 0 frames from "
            + ", ".join(FORBIDDEN_ON_NO_FAULT_PATH)
        )
        return

    print(
        f"canonical closed loop: {result.events_processed} events, "
        f"{result.metrics.completed} completed requests\n"
    )
    stats = pstats.Stats(profile)
    stats.sort_stats(args.sort).print_stats(20)


if __name__ == "__main__":
    main()
