#!/usr/bin/env bash
# Local mirror of the CI workflow (.github/workflows/ci.yml):
# tier-1 test suite plus a benchmark collection smoke-check.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== benchmark collection smoke-check =="
python -m pytest benchmarks -q --collect-only >/dev/null
echo "benchmarks collect OK"

# The payload-size benchmark is cheap (one quick run) and guards the
# columnar transport contract: records payload >= 5x smaller than the
# legacy record-list pickle.  Run it for real, not just collected.
echo "== result-payload benchmark (quick run) =="
python -m pytest benchmarks/test_bench_results.py -q >/dev/null
echo "result payload OK"

# The examples smoke tests (tests/integration/test_examples.py, which
# also run fault_ablation --quick in a subprocess) are part of the tier-1
# suite above; this explicit run is a cheap direct guard so a regression
# in the fault-ablation study is reported by name, not buried in a
# pytest failure list.
echo "== fault-ablation example (--quick) =="
python examples/fault_ablation.py --quick >/dev/null
echo "fault ablation (--quick) OK"
