#!/usr/bin/env bash
# Local mirror of the CI workflow (.github/workflows/ci.yml):
# tier-1 test suite plus a benchmark collection smoke-check.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Docs gates first: they are instant and catch the cheapest regressions
# (a dead relative link in docs//README, a public experiments/faultspec
# symbol without a docstring — scripts/check_docstrings.py is the
# container-local stand-in for `ruff check --select D1`).
echo "== docs link check =="
python scripts/check_links.py

echo "== docstring gate (experiments/, obs/, sim/faultspec.py) =="
python scripts/check_docstrings.py

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== benchmark collection smoke-check =="
python -m pytest benchmarks -q --collect-only >/dev/null
echo "benchmarks collect OK"

# The payload-size benchmark is cheap (one quick run) and guards the
# columnar transport contract: records payload >= 5x smaller than the
# legacy record-list pickle.  Run it for real, not just collected.
echo "== result-payload benchmark (quick run) =="
python -m pytest benchmarks/test_bench_results.py -q >/dev/null
echo "result payload OK"

# The examples smoke tests (tests/integration/test_examples.py, which
# also run fault_ablation --quick in a subprocess) are part of the tier-1
# suite above; this explicit run is a cheap direct guard so a regression
# in the fault-ablation study is reported by name, not buried in a
# pytest failure list.
echo "== fault-ablation example (--quick) =="
python examples/fault_ablation.py --quick >/dev/null
echo "fault ablation (--quick) OK"

# The crash-recovery ablation self-checks its acceptance bar (>=99%
# completion for the loan algorithm under detected single-node crashes,
# zero regenerations on an undetected blip) and exits nonzero on a
# recovery regression.
echo "== crash-recovery example (--quick) =="
python examples/crash_recovery.py --quick >/dev/null
echo "crash recovery (--quick) OK"

# The workload ablation self-checks the burstiness story (bursty/trace
# waits a multiple of rate-matched Poisson; loan advantage larger under
# the contended closed loop than under smooth stable open-loop load)
# and exits nonzero if it regresses.
echo "== trace-ablation example (--quick) =="
python examples/trace_ablation.py --quick >/dev/null
echo "trace ablation (--quick) OK"

# Structural zero-overhead check: a no-fault run must execute no frames
# from the fault layer, the crash lifecycle or the recovery coordinator
# (the wall-clock version of the same contract lives in
# benchmarks/test_bench_engine.py).  Profiled under both schedulers so
# neither dispatch loop can quietly re-enter the crash subsystem.
echo "== no-fault fast-path profile check =="
python scripts/profile_run.py --check
python scripts/profile_run.py --scheduler calendar --check

# The observability package is pinned to a >=90% line-coverage floor by
# its dedicated suite (tests/obs).  check_coverage.py uses pytest-cov
# when installed and falls back to a stdlib settrace tracer otherwise,
# so the gate runs in the bare container too.
echo "== repro/obs coverage floor (>=90%) =="
python scripts/check_coverage.py

# The benchmark trajectory table (docs/benchmarks.md) is generated from
# benchmarks/trajectory/BENCH_*.json; --check re-renders and diffs
# without running any benchmark, so the table can never drift.
echo "== benchmark trajectory table =="
python scripts/bench_trajectory.py --check

