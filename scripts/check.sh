#!/usr/bin/env bash
# Local mirror of the CI workflow (.github/workflows/ci.yml):
# tier-1 test suite plus a benchmark collection smoke-check.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo "== benchmark collection smoke-check =="
python -m pytest benchmarks -q --collect-only >/dev/null
echo "benchmarks collect OK"
