#!/usr/bin/env python3
"""Dead-link check for the docs subsystem.

Scans ``README.md`` and every markdown file under ``docs/`` for relative
markdown links (``[text](target)``) and fails when a target does not
exist on disk.  External links (``http(s)://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; a relative target's anchor
suffix is ignored (only the file's existence is checked).

Run directly or through ``scripts/check.sh`` / CI::

    python scripts/check_links.py

Exit status is the number of dead links (0 = gate passes).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files whose relative links must resolve.
SOURCES = ["README.md", "docs"]

#: ``[text](target)`` — good enough for the plain markdown used here
#: (no reference-style links, no angle-bracket targets).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files():
    for entry in SOURCES:
        path = REPO / entry
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.exists():
            yield path


def check_file(path: Path) -> list:
    dead = []
    rel = path.relative_to(REPO)
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                dead.append(f"{rel}:{lineno}: dead link -> {target}")
    return dead


def main() -> int:
    dead = []
    for path in iter_markdown_files():
        dead.extend(check_file(path))
    for line in dead:
        print(line)
    if dead:
        print(f"\n{len(dead)} dead relative link(s)", file=sys.stderr)
    else:
        print("link check OK")
    return min(len(dead), 99)


if __name__ == "__main__":
    raise SystemExit(main())
