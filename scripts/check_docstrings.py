#!/usr/bin/env python3
"""Docstring gate for the documented-API modules.

Stand-in for ``ruff check --select D1`` / ``pydocstyle`` (not available
in the dev container): every public module, class, function and method
in the gated files below must carry a docstring.  Public means the name
does not start with ``_``; ``__init__`` is exempt (the class docstring
documents construction — D107 relaxed), as are ``on_<Message>`` handler
overrides whose contract lives on ``Node.deliver``.

Run directly or through ``scripts/check.sh`` / CI::

    python scripts/check_docstrings.py

Exit status is the number of missing docstrings (0 = gate passes).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Files/directories whose public symbols must be documented.
GATED = [
    "src/repro/experiments",
    "src/repro/obs",
    "src/repro/sim/faultspec.py",
]

#: Dunder methods whose semantics are standard enough to skip (D105).
DUNDER_EXEMPT = True


def iter_gated_files():
    for entry in GATED:
        path = REPO / entry
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def is_public(name: str) -> bool:
    if name.startswith("__") and name.endswith("__"):
        return not DUNDER_EXEMPT and name != "__init__"
    if name.startswith("on_") and name[3:4].isupper():
        # ``on_<MessageClass>`` dispatch overrides: the contract lives on
        # ``Node.deliver``, not on each handler.
        return False
    return not name.startswith("_")


def check_file(path: Path) -> list:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    missing = []
    rel = path.relative_to(REPO)

    if ast.get_docstring(tree) is None:
        missing.append(f"{rel}:1: missing module docstring")

    def walk(node, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                qual = f"{prefix}{name}"
                if is_public(name) and ast.get_docstring(child) is None:
                    kind = "class" if isinstance(child, ast.ClassDef) else "function"
                    missing.append(f"{rel}:{child.lineno}: missing {kind} docstring: {qual}")
                if isinstance(child, ast.ClassDef):
                    walk(child, f"{qual}.")

    walk(tree, "")
    return missing


def main() -> int:
    missing = []
    for path in iter_gated_files():
        missing.extend(check_file(path))
    for line in missing:
        print(line)
    if missing:
        print(f"\n{len(missing)} public symbol(s) without docstrings", file=sys.stderr)
    else:
        print("docstring gate OK")
    return min(len(missing), 99)


if __name__ == "__main__":
    raise SystemExit(main())
