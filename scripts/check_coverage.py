#!/usr/bin/env python3
"""Line-coverage floor for ``repro/obs/``, with no external dependencies.

The observability layer is pinned by ``tests/obs/``; this script asserts
the suite actually exercises it: line coverage of every module under
``src/repro/obs/`` must stay at or above the floor (90%).

``pytest --cov`` would do this — when ``pytest-cov`` is installed.  This
container bakes its own toolchain, so the script prefers the real
coverage plugin when importable and otherwise falls back to a stdlib
``sys.settrace`` tracer:

* executable lines come from compiling each module and walking its code
  objects' ``co_lines()`` tables (minus ``# pragma: no cover`` lines);
* executed lines are collected by a trace function that pays the local
  tracing cost *only* for frames whose file lives under ``repro/obs``;
* the obs test suite runs in-process via ``pytest.main`` under the
  tracer.

Usage::

    python scripts/check_coverage.py            # gate at 90%
    python scripts/check_coverage.py --floor 80 # custom floor
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Set, Tuple

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

OBS_DIR = os.path.join(REPO, "src", "repro", "obs")
DEFAULT_FLOOR = 90.0


def executable_lines(path: str) -> Set[int]:
    """Line numbers the interpreter can actually execute in ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    excluded = {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if "pragma: no cover" in line
    }
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    # The module's docstring/def lines register as executable but only
    # run at import; they still count — imports happen under the tracer.
    return lines - excluded


def run_suite_traced(test_args) -> Dict[str, Set[int]]:
    """Run pytest in-process, tracing lines executed under OBS_DIR."""
    import pytest

    executed: Dict[str, Set[int]] = {}
    prefix = OBS_DIR + os.sep

    def local_tracer(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_tracer

    def global_tracer(frame, event, arg):
        if event == "call":
            filename = frame.f_code.co_filename
            if filename.startswith(prefix):
                executed.setdefault(filename, set())
                return local_tracer
        return None

    # Drop cached obs modules so their import-time lines run under the
    # tracer too (the gate process may have imported them already).
    for name in [m for m in sys.modules if m == "repro.obs" or m.startswith("repro.obs.")]:
        del sys.modules[name]

    sys.settrace(global_tracer)
    try:
        exit_code = pytest.main(test_args)
    finally:
        sys.settrace(None)
    if exit_code != 0:
        print(f"obs test suite failed (pytest exit {exit_code})", file=sys.stderr)
        sys.exit(int(exit_code))
    return executed


def report(executed: Dict[str, Set[int]], floor: float) -> int:
    """Print the per-module table; return 1 when the total misses the floor."""
    rows: list[Tuple[str, int, int]] = []
    for entry in sorted(os.listdir(OBS_DIR)):
        if not entry.endswith(".py"):
            continue
        path = os.path.join(OBS_DIR, entry)
        want = executable_lines(path)
        got = executed.get(path, set()) & want
        rows.append((entry, len(got), len(want)))

    width = max(len(name) for name, _, _ in rows)
    total_got = total_want = 0
    for name, got, want in rows:
        pct = 100.0 * got / want if want else 100.0
        print(f"  {name:<{width}}  {got:>4}/{want:<4}  {pct:6.1f}%")
        total_got += got
        total_want += want
    total_pct = 100.0 * total_got / total_want if total_want else 100.0
    print(f"  {'TOTAL':<{width}}  {total_got:>4}/{total_want:<4}  {total_pct:6.1f}%")

    if total_pct < floor:
        print(
            f"repro/obs coverage {total_pct:.1f}% is below the {floor:.0f}% floor",
            file=sys.stderr,
        )
        return 1
    print(f"repro/obs coverage {total_pct:.1f}% >= {floor:.0f}% floor")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help=f"minimum total line coverage in percent (default {DEFAULT_FLOOR})")
    parser.add_argument("tests", nargs="*", default=["tests/obs"],
                        help="pytest targets to run (default: tests/obs)")
    args = parser.parse_args()

    try:
        import pytest_cov  # noqa: F401
        has_cov = True
    except ImportError:
        has_cov = False

    os.chdir(REPO)
    if has_cov:
        # Real plugin available: let it do the measurement and the gate.
        import subprocess

        cmd = [
            sys.executable, "-m", "pytest", "-q", *args.tests,
            "--cov=repro.obs", "--cov-report=term-missing",
            f"--cov-fail-under={args.floor}",
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
        sys.exit(subprocess.call(cmd, env=env))

    executed = run_suite_traced(["-q", "-p", "no:cacheprovider", *args.tests])
    sys.exit(report(executed, args.floor))


if __name__ == "__main__":
    main()
