"""Differential zero-overhead pins: disabled telemetry is provably inert.

Three layers of the contract:

* a default run never even *imports* ``repro.obs`` (checked in a clean
  subprocess — the seam is a ``None`` attribute and an env-var string
  compare, not a lazy import that happens anyway);
* the canonical no-telemetry run is bit-identical with the obs package
  importable vs. **stubbed out entirely** (a meta-path blocker makes
  ``import repro.obs`` raise), so a deployment could delete the package
  without changing a single default result;
* within one process, running with telemetry enabled leaves record
  columns and message accounting identical to the disabled run (the
  probe reads counters, it never perturbs the protocol).

The structural frame-count pin lives in ``scripts/profile_run.py
--check``; the wall-clock guard in ``benchmarks/test_bench_obs.py``.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.workload.params import WorkloadParams

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO, "src")

#: One small closed-loop scenario, shared by every differential below.
SCENARIO_SRC = (
    "Scenario(algorithm='with_loan', params=WorkloadParams("
    "num_processes=6, num_resources=12, phi=3, duration=400.0, "
    "warmup=50.0, seed=7))"
)

#: Subprocess body: run the scenario, print a digest of everything the
#: run produced that the cache/figures consume.  ``{blocker}`` is
#: replaced by the import-blocker preamble (or nothing).
RUN_AND_DIGEST = """
import hashlib, pickle, sys
{blocker}
from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.workload.params import WorkloadParams

result = run({scenario})
assert result.telemetry is None
payload = pickle.dumps((
    result.record_columns,
    result.metrics,
    result.simulated_time,
    result.events_processed,
    result.resend_count,
))
print(hashlib.sha256(payload).hexdigest())
print('obs-imported' if any(m == 'repro.obs' or m.startswith('repro.obs.')
                            for m in sys.modules) else 'obs-clean')
"""

BLOCKER = """
class _BlockObs:
    def find_module(self, fullname, path=None):
        if fullname == 'repro.obs' or fullname.startswith('repro.obs.'):
            return self
        return None
    def find_spec(self, fullname, path=None, target=None):
        if fullname == 'repro.obs' or fullname.startswith('repro.obs.'):
            raise ImportError('repro.obs is stubbed out in this process')
        return None
sys.meta_path.insert(0, _BlockObs())
"""


def run_subprocess(blocker: str) -> tuple:
    """Run the canonical scenario in a fresh interpreter, return (digest, imports)."""
    code = RUN_AND_DIGEST.format(blocker=blocker, scenario=SCENARIO_SRC)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_TELEMETRY", None)  # a default run, whatever the outer shell set
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    digest, imports = out.stdout.split()
    return digest, imports


class TestObsStubbedOut:
    def test_default_run_bit_identical_with_obs_blocked(self):
        digest_normal, imports_normal = run_subprocess(blocker="")
        digest_blocked, imports_blocked = run_subprocess(blocker=BLOCKER)
        assert digest_normal == digest_blocked
        assert imports_blocked == "obs-clean"

    def test_default_run_never_imports_obs(self):
        _, imports = run_subprocess(blocker="")
        assert imports == "obs-clean"


class TestInProcessInertness:
    @pytest.fixture()
    def scenario(self) -> Scenario:
        return Scenario(
            algorithm="with_loan",
            params=WorkloadParams(
                num_processes=6,
                num_resources=12,
                phi=3,
                duration=400.0,
                warmup=50.0,
                seed=7,
            ),
        )

    def test_disabled_run_has_no_snapshot(self, scenario, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        result = run(scenario)
        assert result.telemetry is None

    def test_enabled_run_matches_disabled_run(self, scenario, monkeypatch):
        from repro.obs import TelemetrySpec

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        off = run(scenario)
        on = run(scenario.replace(telemetry=TelemetrySpec(sample_interval=25.0)))
        assert on.telemetry is not None
        assert pickle.dumps(off.record_columns) == pickle.dumps(on.record_columns)
        assert off.metrics == on.metrics
        assert off.resend_count == on.resend_count

    def test_env_enabled_run_matches_disabled_run(self, scenario, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        on = run(scenario)
        monkeypatch.delenv("REPRO_TELEMETRY")
        off = run(scenario)
        assert on.telemetry is not None and on.telemetry.source == "env"
        assert off.telemetry is None
        assert pickle.dumps(off.record_columns) == pickle.dumps(on.record_columns)
        assert off.metrics == on.metrics
