"""Health-check state transitions: heartbeat, stall watchdog, aggregation."""

from __future__ import annotations

import pytest

from repro.obs.health import (
    HealthCheck,
    HealthMonitor,
    HealthStatus,
    HeartbeatCheck,
    StallCheck,
)


class TestHealthStatus:
    def test_severity_ordering(self):
        assert (
            HealthStatus.severity(HealthStatus.HEALTHY)
            < HealthStatus.severity(HealthStatus.UNKNOWN)
            < HealthStatus.severity(HealthStatus.DEGRADED)
            < HealthStatus.severity(HealthStatus.UNHEALTHY)
        )

    def test_worst(self):
        assert HealthStatus.worst([]) == HealthStatus.HEALTHY
        assert (
            HealthStatus.worst([HealthStatus.HEALTHY, HealthStatus.DEGRADED])
            == HealthStatus.DEGRADED
        )
        assert (
            HealthStatus.worst(
                [HealthStatus.UNHEALTHY, HealthStatus.HEALTHY, HealthStatus.UNKNOWN]
            )
            == HealthStatus.UNHEALTHY
        )

    def test_severity_rejects_unknown_string(self):
        with pytest.raises(ValueError):
            HealthStatus.severity("fine")


class TestHealthCheck:
    def test_report_carries_probe_result(self):
        check = HealthCheck("x", lambda: (HealthStatus.HEALTHY, "all good"))
        report = check.run(12.5)
        assert report.name == "x"
        assert report.status == HealthStatus.HEALTHY
        assert report.detail == "all good"
        assert report.checked_at == 12.5

    def test_raising_probe_reports_unknown(self):
        def probe():
            raise RuntimeError("boom")

        report = HealthCheck("x", probe).run(1.0)
        assert report.status == HealthStatus.UNKNOWN
        assert "RuntimeError" in report.detail and "boom" in report.detail

    def test_invalid_status_reports_unknown(self):
        report = HealthCheck("x", lambda: ("fine", "")).run()
        assert report.status == HealthStatus.UNKNOWN
        assert "invalid status" in report.detail


class TestHeartbeatCheck:
    def test_unknown_before_first_beat(self):
        assert HeartbeatCheck().run().status == HealthStatus.UNKNOWN

    def test_healthy_while_clock_advances(self):
        hb = HeartbeatCheck()
        for t in (1.0, 2.0, 3.0):
            hb.beat(t)
        assert hb.run(3.0).status == HealthStatus.HEALTHY

    def test_single_stuck_sample_tolerated(self):
        hb = HeartbeatCheck()
        hb.beat(1.0)
        hb.beat(1.0)  # one repeated sample could be a boundary artefact
        assert hb.run(1.0).status == HealthStatus.HEALTHY

    def test_two_stuck_samples_unhealthy(self):
        hb = HeartbeatCheck()
        hb.beat(1.0)
        hb.beat(1.0)
        hb.beat(1.0)
        report = hb.run(1.0)
        assert report.status == HealthStatus.UNHEALTHY
        assert "stuck" in report.detail

    def test_recovers_when_clock_moves_again(self):
        hb = HeartbeatCheck()
        for t in (1.0, 1.0, 1.0, 2.0):
            hb.beat(t)
        assert hb.run(2.0).status == HealthStatus.HEALTHY


class TestStallCheck:
    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            StallCheck(0.0)

    def test_unknown_before_first_sample(self):
        assert StallCheck(100.0).run().status == HealthStatus.UNKNOWN

    def test_healthy_within_budget(self):
        st = StallCheck(100.0)
        st.update(0.0, 0)
        st.update(50.0, 3)
        assert st.run(50.0).status == HealthStatus.HEALTHY

    def test_degraded_past_budget(self):
        st = StallCheck(100.0)
        st.update(0.0, 5)
        st.update(150.0, 5)  # clock advanced 150 ms, no new grants
        report = st.run(150.0)
        assert report.status == HealthStatus.DEGRADED
        assert "no grant completed" in report.detail

    def test_unhealthy_past_twice_budget(self):
        st = StallCheck(100.0)
        st.update(0.0, 5)
        st.update(250.0, 5)
        assert st.run(250.0).status == HealthStatus.UNHEALTHY

    def test_progress_resets_the_clock(self):
        st = StallCheck(100.0)
        st.update(0.0, 0)
        st.update(150.0, 0)
        assert st.run(150.0).status == HealthStatus.DEGRADED
        st.update(160.0, 1)  # a grant completed: healthy again
        assert st.run(160.0).status == HealthStatus.HEALTHY

    def test_first_sample_anchors_progress(self):
        # The first sample (even with zero grants) starts the budget; a
        # report straight after it must not claim a stall.
        st = StallCheck(100.0)
        st.update(500.0, 0)
        assert st.run(500.0).status == HealthStatus.HEALTHY


class TestHealthMonitor:
    def test_run_all_in_registration_order(self):
        monitor = HealthMonitor()
        monitor.register(HealthCheck("b", lambda: (HealthStatus.HEALTHY, "")))
        monitor.register(HealthCheck("a", lambda: (HealthStatus.DEGRADED, "")))
        reports = monitor.run_all(9.0)
        assert [r.name for r in reports] == ["b", "a"]
        assert all(r.checked_at == 9.0 for r in reports)

    def test_overall_is_worst_status(self):
        monitor = HealthMonitor()
        monitor.register(HealthCheck("ok", lambda: (HealthStatus.HEALTHY, "")))
        assert monitor.overall() == HealthStatus.HEALTHY
        monitor.register(HealthCheck("bad", lambda: (HealthStatus.UNHEALTHY, "")))
        assert monitor.overall() == HealthStatus.UNHEALTHY

    def test_register_replaces_same_name(self):
        monitor = HealthMonitor()
        monitor.register(HealthCheck("x", lambda: (HealthStatus.UNHEALTHY, "")))
        monitor.register(HealthCheck("x", lambda: (HealthStatus.HEALTHY, "")))
        (report,) = monitor.run_all()
        assert report.status == HealthStatus.HEALTHY

    def test_empty_monitor_is_healthy(self):
        assert HealthMonitor().overall() == HealthStatus.HEALTHY
