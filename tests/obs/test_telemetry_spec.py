"""TelemetrySpec validation, description and env parsing."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.metrics import DEFAULT_WAIT_BUCKETS_MS
from repro.obs.spec import TELEMETRY_ENV, TelemetrySpec, telemetry_from_env


class TestTelemetrySpec:
    def test_defaults(self):
        spec = TelemetrySpec()
        assert spec.sample_interval == 50.0
        assert spec.node_gauges is True
        assert spec.wait_buckets == DEFAULT_WAIT_BUCKETS_MS
        assert spec.stall_after == 500.0

    def test_frozen_and_picklable(self):
        spec = TelemetrySpec(sample_interval=10.0)
        with pytest.raises(AttributeError):
            spec.sample_interval = 20.0
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="sample_interval"):
            TelemetrySpec(sample_interval=0.0)
        with pytest.raises(ValueError, match="sample_interval"):
            TelemetrySpec(sample_interval=-5.0)

    def test_stall_after_must_be_positive(self):
        with pytest.raises(ValueError, match="stall_after"):
            TelemetrySpec(stall_after=0.0)

    def test_buckets_normalised_to_tuple(self):
        spec = TelemetrySpec(wait_buckets=[1.0, 2.0])
        assert spec.wait_buckets == (1.0, 2.0)

    def test_buckets_validated(self):
        with pytest.raises(ValueError, match="not be empty"):
            TelemetrySpec(wait_buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            TelemetrySpec(wait_buckets=(2.0, 1.0))

    def test_describe(self):
        assert TelemetrySpec().describe() == "telemetry@50ms"
        full = TelemetrySpec(
            sample_interval=10.0,
            node_gauges=False,
            wait_buckets=(1.0, 2.0),
            stall_after=100.0,
        ).describe()
        assert full == "telemetry@10ms,no-node-gauges,2buckets,stall>100ms"

    def test_scenario_rejects_non_spec_values(self):
        from repro.experiments.scenario import Scenario
        from repro.workload.params import WorkloadParams

        with pytest.raises(TypeError, match="TelemetrySpec"):
            Scenario(
                algorithm="with_loan",
                params=WorkloadParams(),
                telemetry="on",
            )

    def test_scenario_describe_includes_spec(self):
        from repro.experiments.scenario import Scenario
        from repro.workload.params import WorkloadParams

        text = Scenario(
            algorithm="with_loan",
            params=WorkloadParams(),
            telemetry=TelemetrySpec(sample_interval=10.0),
        ).describe()
        assert "telemetry@10ms" in text


class TestTelemetryFromEnv:
    def test_unset_means_off(self):
        assert telemetry_from_env({}) is None

    @pytest.mark.parametrize("value", ["", "0", "off", "OFF", "false", "no", "none"])
    def test_off_switches(self, value):
        assert telemetry_from_env({TELEMETRY_ENV: value}) is None

    @pytest.mark.parametrize("value", ["1", "on", "true", "YES", "default"])
    def test_on_switches_give_default_spec(self, value):
        assert telemetry_from_env({TELEMETRY_ENV: value}) == TelemetrySpec()

    def test_number_sets_sample_interval(self):
        spec = telemetry_from_env({TELEMETRY_ENV: "12.5"})
        assert spec == TelemetrySpec(sample_interval=12.5)

    def test_whitespace_tolerated(self):
        assert telemetry_from_env({TELEMETRY_ENV: " on "}) == TelemetrySpec()

    def test_garbage_rejected_loudly(self):
        with pytest.raises(ValueError, match="invalid REPRO_TELEMETRY"):
            telemetry_from_env({TELEMETRY_ENV: "sometimes"})

    def test_invalid_interval_rejected(self):
        # Numbers still go through TelemetrySpec validation.
        with pytest.raises(ValueError, match="sample_interval"):
            telemetry_from_env({TELEMETRY_ENV: "-10"})

    def test_reads_process_environment_by_default(self, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, "25")
        assert telemetry_from_env() == TelemetrySpec(sample_interval=25.0)
        monkeypatch.delenv(TELEMETRY_ENV)
        assert telemetry_from_env() is None
