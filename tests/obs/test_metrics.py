"""Registry semantics: counter monotonicity, gauges, histogram buckets, labels."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_WAIT_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetrySnapshot,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("repro_x_total").value == 0.0

    def test_inc_defaults_to_one(self):
        c = Counter("repro_x_total")
        c.inc()
        c.inc()
        assert c.value == 2.0

    def test_inc_amount(self):
        c = Counter("repro_x_total")
        c.inc(5)
        c.inc(0.5)
        assert c.value == 5.5

    def test_zero_increment_allowed(self):
        c = Counter("repro_x_total")
        c.inc(0)
        assert c.value == 0.0

    def test_negative_increment_rejected(self):
        c = Counter("repro_x_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        assert c.value == 0.0  # failed inc leaves the counter untouched

    def test_monotonic_under_mixed_increments(self):
        c = Counter("repro_x_total")
        seen = [c.value]
        for amount in (1, 0, 2.5, 0.0, 7):
            c.inc(amount)
            seen.append(c.value)
        assert seen == sorted(seen)

    def test_labelled_parent_rejects_direct_inc(self):
        c = Counter("repro_x_total", labelnames=("type",))
        with pytest.raises(ValueError, match="labelled"):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("repro_backlog")
        g.set(10)
        g.inc()
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 13.0
        g.dec(20)
        assert g.value == -7.0  # gauges may go negative

    def test_labelled_parent_rejects_direct_set(self):
        g = Gauge("repro_backlog", labelnames=("node",))
        with pytest.raises(ValueError, match="labelled"):
            g.set(1)


class TestHistogram:
    def test_default_buckets(self):
        h = Histogram("repro_wait_ms")
        assert h.buckets == DEFAULT_WAIT_BUCKETS_MS

    def test_le_is_inclusive(self):
        # A value equal to a bound lands in that bound's bucket.
        h = Histogram("repro_wait_ms", buckets=(1.0, 5.0, 10.0))
        h.observe(1.0)
        h.observe(5.0)
        h.observe(10.0)
        assert h.cumulative_counts() == (1, 2, 3, 3)

    def test_above_top_bound_lands_in_inf(self):
        h = Histogram("repro_wait_ms", buckets=(1.0, 5.0))
        h.observe(5.0001)
        h.observe(1e9)
        assert h.cumulative_counts() == (0, 0, 2)

    def test_below_first_bound(self):
        h = Histogram("repro_wait_ms", buckets=(1.0, 5.0))
        h.observe(0.0)
        h.observe(-3.0)  # negative observations are legal (le=1 covers them)
        assert h.cumulative_counts() == (2, 2, 2)

    def test_sum_and_count(self):
        h = Histogram("repro_wait_ms", buckets=(1.0,))
        for v in (0.5, 2.0, 3.5):
            h.observe(v)
        assert h.count_value == 3
        assert h.sum_value == pytest.approx(6.0)

    def test_nan_rejected(self):
        h = Histogram("repro_wait_ms", buckets=(1.0,))
        with pytest.raises(ValueError, match="NaN"):
            h.observe(math.nan)

    def test_inf_observation_lands_in_inf_bucket(self):
        h = Histogram("repro_wait_ms", buckets=(1.0,))
        h.observe(math.inf)
        assert h.cumulative_counts() == (0, 1)

    def test_buckets_must_increase_strictly(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_wait_ms", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_wait_ms", buckets=(5.0, 1.0))

    def test_buckets_must_be_finite_and_nonempty(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("repro_wait_ms", buckets=())
        with pytest.raises(ValueError, match="finite"):
            Histogram("repro_wait_ms", buckets=(1.0, math.inf))

    def test_labelled_parent_rejects_direct_observe(self):
        h = Histogram("repro_wait_ms", labelnames=("node",), buckets=(1.0,))
        with pytest.raises(ValueError, match="labelled"):
            h.observe(0.5)


class TestLabels:
    def test_labels_get_or_create_same_child(self):
        c = Counter("repro_msgs_total", labelnames=("type",))
        a = c.labels(type="ReqRes")
        b = c.labels(type="ReqRes")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_distinct_label_values_are_independent(self):
        c = Counter("repro_msgs_total", labelnames=("type",))
        c.labels(type="ReqRes").inc(3)
        c.labels(type="Token").inc(1)
        assert c.labels(type="ReqRes").value == 3.0
        assert c.labels(type="Token").value == 1.0

    def test_label_values_are_stringified(self):
        g = Gauge("repro_depth", labelnames=("node",))
        g.labels(node=7).set(2)
        assert g.labels(node="7").value == 2.0

    def test_wrong_label_set_rejected(self):
        c = Counter("repro_msgs_total", labelnames=("type",))
        with pytest.raises(ValueError, match="expects labels"):
            c.labels(kind="ReqRes")
        with pytest.raises(ValueError, match="expects labels"):
            c.labels(type="ReqRes", extra="x")

    def test_unlabelled_family_rejects_labels_call(self):
        with pytest.raises(ValueError, match="has no labels"):
            Counter("repro_x_total").labels(type="a")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("0bad")
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad-name")

    def test_invalid_label_names_rejected(self):
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("repro_x_total", labelnames=("le-gal",))
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("repro_x_total", labelnames=("__reserved",))
        with pytest.raises(ValueError, match="duplicate label names"):
            Counter("repro_x_total", labelnames=("a", "a"))

    def test_histogram_children_share_buckets(self):
        h = Histogram("repro_wait_ms", labelnames=("node",), buckets=(1.0, 2.0))
        child = h.labels(node=0)
        assert child.buckets == (1.0, 2.0)
        child.observe(1.5)
        assert child.cumulative_counts() == (0, 1, 1)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help")
        b = reg.counter("repro_x_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("repro_x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.histogram("repro_x_total")

    def test_collect_freezes_current_state(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "things")
        c.inc(2)
        samples = reg.collect()
        c.inc(5)  # must not leak into the earlier collection
        (sample,) = samples
        assert sample.name == "repro_x_total"
        assert sample.kind == "counter"
        assert sample.series == (((), 2.0),)

    def test_collect_sorts_series_by_label_values(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_msgs_total", labelnames=("type",))
        c.labels(type="Token").inc()
        c.labels(type="ReqRes").inc()
        (sample,) = reg.collect()
        assert [pairs for pairs, _ in sample.series] == [
            (("type", "ReqRes"),),
            (("type", "Token"),),
        ]

    def test_snapshot_value_accessors(self):
        reg = MetricsRegistry()
        reg.counter("repro_msgs_total", labelnames=("type",)).labels(type="T").inc(4)
        reg.histogram("repro_wait_ms", buckets=(1.0,)).observe(0.5)
        snap = TelemetrySnapshot(samples=reg.collect())
        assert snap.value("repro_msgs_total", type="T") == 4.0
        assert snap.value("repro_wait_ms") == ((1, 1), 0.5, 1)
        with pytest.raises(KeyError):
            snap.sample("repro_missing")
        with pytest.raises(KeyError):
            snap.value("repro_msgs_total", type="missing")

    def test_snapshot_pickle_roundtrip(self):
        reg = MetricsRegistry()
        reg.gauge("repro_backlog").set(3)
        snap = TelemetrySnapshot(samples=reg.collect(), source="env")
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        assert pickle.dumps(clone) == pickle.dumps(snap)
