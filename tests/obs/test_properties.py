"""Property-based pins: histogram invariants and telemetry-axis hash neutrality.

The histogram properties hold for *arbitrary* finite float sequences —
sum/count consistency, cumulative-bucket monotonicity, every observation
accounted for exactly once.  The hash-neutrality properties pin the
contract that made the telemetry axis safe to add: scenarios that don't
ask for telemetry key exactly as they did before the axis existed
(golden keys captured at the pre-axis HEAD), across random scenario
grids.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenario import Scenario, canonical
from repro.obs import TelemetrySpec
from repro.obs.metrics import Histogram
from repro.workload.params import WorkloadParams

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)

bucket_bounds = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
    unique=True,
).map(lambda bs: tuple(sorted(bs)))


class TestHistogramInvariants:
    @given(bounds=bucket_bounds, values=st.lists(finite_floats, max_size=200))
    @settings(max_examples=200)
    def test_sum_count_and_cumulative_monotonicity(self, bounds, values):
        h = Histogram("repro_wait_ms", buckets=bounds)
        for v in values:
            h.observe(v)

        assert h.count_value == len(values)
        assert h.sum_value == sum(float(v) for v in values)

        cumulative = h.cumulative_counts()
        assert len(cumulative) == len(bounds) + 1
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == len(values)  # +Inf catches everything

    @given(bounds=bucket_bounds, values=st.lists(finite_floats, max_size=100))
    @settings(max_examples=200)
    def test_buckets_match_inclusive_le_semantics(self, bounds, values):
        h = Histogram("repro_wait_ms", buckets=bounds)
        for v in values:
            h.observe(v)
        cumulative = h.cumulative_counts()
        for bound, running in zip(bounds, cumulative):
            assert running == sum(1 for v in values if float(v) <= bound)

    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_observation_order_is_irrelevant(self, values):
        a = Histogram("repro_wait_ms", buckets=(0.0, 10.0))
        b = Histogram("repro_wait_ms", buckets=(0.0, 10.0))
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.cumulative_counts() == b.cumulative_counts()
        assert a.count_value == b.count_value


#: Scenario.key() values captured at the pre-telemetry-axis HEAD (PR 9).
#: The axis must be invisible to every one of them.
PRE_AXIS_KEYS = {
    "bare": "2e12eb65f0a87460312b0a699b8573d95e07a720b7af5878913a34bd518e2691",
    "medium": "25b672399140954538e9cf8331d86a8ea204ad5c33839415331324c7396e9f4d",
    "bl": "0f59735e37394bfe7660a7cbb4702db0f99877a2b61adebe4f5ce91624cd2772",
    "incr": "200f3ec81231125c033a58c51ff08a75b15aaed2a50b1dee71a8fffe03acbb9a",
    "shm": "8dba60171461b030c4ffeb4e5d410aa072b8add2789611a9354559f133404b4c",
    "lat": "97595479d941f9056c7080150c258bd0752543af8f08fec4df6c55fec68cbffc",
    "high": "fa677aab4cb2b9d18bd7fe515472ce8758fd4fc2269302bec1d67cd6a259489d",
}


def _pre_axis_scenarios():
    from repro.sim.latencyspec import UniformJitterLatencySpec
    from repro.workload.params import LoadLevel

    p = WorkloadParams(
        num_processes=4, num_resources=8, phi=3, duration=400.0, warmup=50.0
    )
    return {
        "bare": Scenario(algorithm="with_loan", params=p),
        "medium": Scenario(algorithm="with_loan", params=WorkloadParams()),
        "bl": Scenario(algorithm="bouabdallah", params=p),
        "incr": Scenario(algorithm="incremental", params=p),
        "shm": Scenario(algorithm="shared_memory", params=p),
        "lat": Scenario(
            algorithm="with_loan", params=p,
            latency=UniformJitterLatencySpec(jitter=0.4),
        ),
        "high": Scenario(
            algorithm="with_loan",
            params=p.with_load(LoadLevel.HIGH),
            size_buckets=(1, 4, 8),
        ),
    }


class TestHashNeutrality:
    def test_pre_axis_golden_keys_unchanged(self):
        scenarios = _pre_axis_scenarios()
        assert {name: s.key() for name, s in scenarios.items()} == PRE_AXIS_KEYS

    @given(
        algorithm=st.sampled_from(["with_loan", "bouabdallah", "incremental"]),
        phi=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
        num_processes=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=50, deadline=None)
    def test_unset_axis_never_reaches_canonical_form(
        self, algorithm, phi, seed, num_processes
    ):
        scenario = Scenario(
            algorithm=algorithm,
            params=WorkloadParams(
                num_processes=num_processes,
                num_resources=16,
                phi=phi,
                seed=seed,
            ),
        )
        _, fields = canonical(scenario.normalized())
        assert all(name != "telemetry" for name, _ in fields)

    @given(
        phi=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
        interval=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_explicit_spec_changes_the_key(self, phi, seed, interval):
        base = Scenario(
            algorithm="with_loan",
            params=WorkloadParams(num_processes=4, num_resources=8, phi=phi, seed=seed),
        )
        enabled = base.replace(telemetry=TelemetrySpec(sample_interval=interval))
        assert base.key() != enabled.key()
        # ... deterministically: the same spec gives the same key.
        again = base.replace(telemetry=TelemetrySpec(sample_interval=interval))
        assert enabled.key() == again.key()

    def test_spec_fields_distinguish_keys(self):
        base = Scenario(algorithm="with_loan", params=WorkloadParams())
        a = base.replace(telemetry=TelemetrySpec(sample_interval=50.0))
        b = base.replace(telemetry=TelemetrySpec(sample_interval=25.0))
        c = base.replace(telemetry=TelemetrySpec(node_gauges=False))
        assert len({a.key(), b.key(), c.key()}) == 3
