"""Telemetry through the sweep pipeline: pickling, caching, env precedence.

Pins the acceptance contract of the axis: ``ExperimentResult.telemetry``
survives the ``workers=N`` pickle path bit-identically to ``workers=1``,
scenario-axis snapshots are cached like any other result field, and the
``REPRO_TELEMETRY`` process override (a) loses to an explicit scenario
value and (b) never leaks a snapshot into a cache whose keys know
nothing about the environment.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.obs import TelemetrySpec
from repro.parallel import RunCache, run_sweep
from repro.workload.params import WorkloadParams


@pytest.fixture()
def params() -> WorkloadParams:
    return WorkloadParams(
        num_processes=5, num_resources=10, phi=3, duration=300.0, warmup=50.0, seed=4
    )


@pytest.fixture(autouse=True)
def _no_ambient_telemetry(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)


class TestWorkersPickleParity:
    def test_snapshot_bit_identical_workers_1_vs_2(self, params):
        grid = Scenario(
            algorithm="with_loan", params=params, telemetry=TelemetrySpec()
        ).sweep(seed=(1, 2, 3))
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        for a, b in zip(serial, parallel):
            assert a.telemetry is not None
            assert a.telemetry == b.telemetry
            # Bit-identical serialized form.  One loads/dumps roundtrip
            # first: raw dumps() bytes of a freshly built object and of
            # one that already crossed the pool differ only in pickle's
            # identity-based memoization (sharing), not in content.
            norm = lambda snap: pickle.dumps(pickle.loads(pickle.dumps(snap)))
            assert norm(a.telemetry) == norm(b.telemetry)

    def test_snapshot_survives_cache_roundtrip(self, params):
        scenario = Scenario(
            algorithm="with_loan", params=params, telemetry=TelemetrySpec()
        )
        cache = RunCache()
        (first,) = run_sweep([scenario], workers=1, cache=cache)
        (second,) = run_sweep([scenario], workers=1, cache=cache)  # cache hit
        assert first.telemetry is not None
        assert second.telemetry == first.telemetry


class TestEnvPrecedence:
    def test_explicit_spec_beats_env(self, params, monkeypatch):
        # The env asks for the default 50 ms cadence; the scenario pins
        # 10 ms.  The scenario must win — and stamp source="scenario".
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        explicit = run(
            Scenario(
                algorithm="with_loan",
                params=params,
                telemetry=TelemetrySpec(sample_interval=10.0),
            )
        )
        env_only = run(Scenario(algorithm="with_loan", params=params))
        assert explicit.telemetry.source == "scenario"
        assert env_only.telemetry.source == "env"
        assert explicit.telemetry.value(
            "repro_telemetry_samples_total"
        ) > env_only.telemetry.value("repro_telemetry_samples_total")

    def test_env_off_values_disable(self, params, monkeypatch):
        for value in ("0", "off", "false", "no", "none", ""):
            monkeypatch.setenv("REPRO_TELEMETRY", value)
            assert run(Scenario(algorithm="with_loan", params=params)).telemetry is None

    def test_env_interval_value(self, params, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "20")
        result = run(Scenario(algorithm="with_loan", params=params))
        snapshot = result.telemetry
        assert snapshot is not None and snapshot.source == "env"
        # 300 ms duration at a 20 ms cadence: well over 10 samples.
        assert snapshot.value("repro_telemetry_samples_total") >= 10

    def test_env_results_identical_to_disabled(self, params, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        with_env = run(Scenario(algorithm="with_loan", params=params))
        monkeypatch.delenv("REPRO_TELEMETRY")
        without = run(Scenario(algorithm="with_loan", params=params))
        assert with_env.metrics == without.metrics
        assert pickle.dumps(with_env.record_columns) == pickle.dumps(
            without.record_columns
        )


class TestEnvCacheHygiene:
    def test_env_snapshot_stripped_before_cache(self, params, monkeypatch):
        scenario = Scenario(algorithm="with_loan", params=params)
        cache = RunCache()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        (decorated,) = run_sweep([scenario], workers=1, cache=cache)
        # The executor strips the env-derived snapshot before the put:
        # the cache serves the exact result an env-less process expects.
        assert decorated.telemetry is None
        monkeypatch.delenv("REPRO_TELEMETRY")
        (hit,) = run_sweep([scenario], workers=1, cache=cache)
        assert hit.telemetry is None
        assert hit.metrics == decorated.metrics

    def test_scenario_snapshot_enters_cache(self, params):
        scenario = Scenario(
            algorithm="with_loan", params=params, telemetry=TelemetrySpec()
        )
        cache = RunCache()
        (first,) = run_sweep([scenario], workers=1, cache=cache)
        assert first.telemetry is not None  # scenario-axis snapshots stay

    def test_env_and_scenario_keys_are_distinct_entries(self, params, monkeypatch):
        # An env-decorated run of the *bare* scenario and an explicit
        # telemetry scenario must not collide in the cache: their keys
        # differ (the spec is hashed; the env var is not).
        bare = Scenario(algorithm="with_loan", params=params)
        spec = bare.replace(telemetry=TelemetrySpec())
        assert bare.key() != spec.key()
        cache = RunCache()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        run_sweep([bare], workers=1, cache=cache)
        monkeypatch.delenv("REPRO_TELEMETRY")
        (explicit,) = run_sweep([spec], workers=1, cache=cache)
        assert explicit.telemetry is not None
        assert explicit.telemetry.source == "scenario"


class TestSnapshotContents:
    def test_counters_match_result_fields(self, params):
        result = run(
            Scenario(algorithm="with_loan", params=params, telemetry=TelemetrySpec())
        )
        snapshot = result.telemetry
        assert snapshot.value("repro_events_dispatched_total") == float(
            result.events_processed
        )
        issued = snapshot.value("repro_requests_issued_total")
        completed = snapshot.value("repro_requests_completed_total")
        grants = snapshot.value("repro_grants_total")
        assert issued == completed == grants  # closed loop ran to completion
        # The wait histogram saw every grant.
        assert snapshot.value("repro_request_wait_ms")[2] == int(grants)

    def test_message_counters_match_network_stats(self, params):
        result = run(
            Scenario(algorithm="with_loan", params=params, telemetry=TelemetrySpec())
        )
        sample = result.telemetry.sample("repro_messages_sent_total")
        total = sum(
            value for _, value in sample.series
        )
        assert total == float(result.metrics.messages_total)

    def test_health_reports_present_and_healthy(self, params):
        result = run(
            Scenario(algorithm="with_loan", params=params, telemetry=TelemetrySpec())
        )
        health = {r.name: r.status for r in result.telemetry.health}
        assert health == {"heartbeat": "healthy", "grant_progress": "healthy"}

    def test_exposition_of_real_run_parses(self, params):
        from tests.obs.test_exposition import parse_exposition

        result = run(
            Scenario(algorithm="with_loan", params=params, telemetry=TelemetrySpec())
        )
        families = parse_exposition(result.telemetry.render_text())
        assert "repro_events_dispatched_total" in families
        assert "repro_node_queue_depth" in families

    def test_node_gauges_off_emits_no_per_node_series(self, params):
        result = run(
            Scenario(
                algorithm="with_loan",
                params=params,
                telemetry=TelemetrySpec(node_gauges=False),
            )
        )
        snapshot = result.telemetry
        assert snapshot.sample("repro_node_queue_depth").series == ()
        assert snapshot.sample("repro_node_token_wait_ms").series == ()
        # Everything else is unaffected by the per-node switch.
        assert snapshot.value("repro_grants_total") == float(
            result.metrics.completed
        )


class TestFaultTelemetry:
    """Recovery and fault-layer instrumentation on a real crash run."""

    def test_crash_run_counts_regenerations_and_fences(self, params):
        from repro.sim.detectorspec import HeartbeatDetector
        from repro.sim.faultspec import NodeCrash

        # A reboot-shaped outage: long enough for detection to fire
        # (tokens regenerate), short enough that the node comes back and
        # gets fenced — the only path that applies fencing epochs.
        detector = HeartbeatDetector()
        crash_at = 0.25 * params.duration
        result = run(
            Scenario(
                algorithm="with_loan",
                params=params,
                faults=NodeCrash(
                    node=0,
                    at=crash_at,
                    recover_at=crash_at + 4.0 * detector.detection_delay,
                ),
                detector=detector,
                telemetry=TelemetrySpec(),
            )
        )
        snapshot = result.telemetry
        assert snapshot.value("repro_tokens_regenerated_total") == float(
            result.tokens_regenerated
        )
        assert result.tokens_regenerated > 0  # the crash really bit
        assert snapshot.value("repro_fences_applied_total") > 0
        assert snapshot.value("repro_recovery_time_ms") == result.recovery_time

    def test_lossy_run_counts_drops_and_resends(self, params):
        from repro.sim.faultspec import BernoulliLoss

        result = run(
            Scenario(
                algorithm="with_loan",
                params=params,
                faults=BernoulliLoss(p=0.05, seed=3),
                telemetry=TelemetrySpec(),
            )
        )
        snapshot = result.telemetry
        dropped = sum(
            value
            for _, value in snapshot.sample("repro_messages_dropped_total").series
        )
        assert dropped == float(result.messages_dropped)
        assert dropped > 0  # the loss process really fired
