"""Exposition-format tests: golden output plus a strict mini-parser.

The golden test pins the exact bytes ``render_text()`` produces for a
hand-built registry; the parser tests validate the *format* (every line
is a comment or a ``name{labels} value`` sample, ``# HELP``/``# TYPE``
precede their samples, histogram series are cumulative and consistent)
so any future metric addition stays valid Prometheus exposition without
needing a new golden string.
"""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.metrics import MetricsRegistry, _format_value

SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>-?[0-9.e+\-]+|[+-]Inf|NaN)$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """Parse exposition text into {family: {"type":..., "samples": [...]}}.

    Raises AssertionError on any formatting violation — this is the
    validity oracle used by every test below.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, _help = rest.partition(" ")
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"type": None, "samples": []}
            current = name
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert name == current, "TYPE must follow its HELP"
            assert kind in ("counter", "gauge", "histogram", "untyped")
            families[name]["type"] = kind
        else:
            m = SAMPLE_LINE.match(line)
            assert m, f"malformed sample line: {line!r}"
            name = m.group("name")
            base = current
            assert base is not None and families[base]["type"] is not None
            if families[base]["type"] == "histogram":
                assert (
                    name == base
                    or name == f"{base}_bucket"
                    or name == f"{base}_sum"
                    or name == f"{base}_count"
                ), f"sample {name} outside family {base}"
            else:
                assert name == base, f"sample {name} outside family {base}"
            labels = dict(LABEL_PAIR.findall(m.group("labels") or ""))
            families[base]["samples"].append((name, labels, m.group("value")))
    return families


def build_golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    events = reg.counter("repro_events_total", "Events dispatched.")
    events.inc(1234)
    sent = reg.counter("repro_messages_sent_total", "Sent by class.", labelnames=("type",))
    sent.labels(type="ReqRes").inc(10)
    sent.labels(type="Token").inc(3)
    backlog = reg.gauge("repro_backlog", "Pending events.")
    backlog.set(7.5)
    wait = reg.histogram("repro_wait_ms", "Waiting time.", buckets=(1.0, 5.0))
    for v in (0.5, 1.0, 2.0, 99.0):
        wait.observe(v)
    return reg


GOLDEN = """\
# HELP repro_events_total Events dispatched.
# TYPE repro_events_total counter
repro_events_total 1234
# HELP repro_messages_sent_total Sent by class.
# TYPE repro_messages_sent_total counter
repro_messages_sent_total{type="ReqRes"} 10
repro_messages_sent_total{type="Token"} 3
# HELP repro_backlog Pending events.
# TYPE repro_backlog gauge
repro_backlog 7.5
# HELP repro_wait_ms Waiting time.
# TYPE repro_wait_ms histogram
repro_wait_ms_bucket{le="1"} 2
repro_wait_ms_bucket{le="5"} 3
repro_wait_ms_bucket{le="+Inf"} 4
repro_wait_ms_sum 102.5
repro_wait_ms_count 4
"""


class TestGolden:
    def test_render_text_matches_golden(self):
        assert build_golden_registry().render_text() == GOLDEN

    def test_golden_parses(self):
        families = parse_exposition(GOLDEN)
        assert set(families) == {
            "repro_events_total",
            "repro_messages_sent_total",
            "repro_backlog",
            "repro_wait_ms",
        }

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""


class TestFormatValidity:
    def test_every_line_well_formed(self):
        parse_exposition(build_golden_registry().render_text())

    def test_histogram_buckets_cumulative_and_consistent(self):
        families = parse_exposition(build_golden_registry().render_text())
        hist = families["repro_wait_ms"]["samples"]
        buckets = [(s[1]["le"], float(s[2])) for s in hist if s[0].endswith("_bucket")]
        counts = [v for _, v in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1][0] == "+Inf"
        (count,) = [float(s[2]) for s in hist if s[0].endswith("_count")]
        assert counts[-1] == count, "+Inf bucket must equal _count"

    def test_label_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "h", labelnames=("path",))
        c.labels(path='a\\b"c\nd').inc()
        text = reg.render_text()
        assert 'path="a\\\\b\\"c\\nd"' in text
        families = parse_exposition(text)
        assert families["repro_x_total"]["samples"][0][1]["path"] == 'a\\\\b\\"c\\nd'

    def test_help_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "line one\nline two \\ slash")
        text = reg.render_text()
        assert "# HELP repro_x_total line one\\nline two \\\\ slash" in text


class TestFormatValue:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, "0"),
            (3.0, "3"),
            (-2.0, "-2"),
            (7.5, "7.5"),
            (math.inf, "+Inf"),
            (-math.inf, "-Inf"),
        ],
    )
    def test_values(self, value, expected):
        assert _format_value(value) == expected
