"""Unit tests for the open-loop arrival processes."""

import itertools
import pickle
import random
import statistics

import pytest

from repro.workload.arrivals import (
    ArrivalSpec,
    DiurnalArrivals,
    LognormalArrivals,
    MarkovModulatedArrivals,
    ParetoArrivals,
    PoissonArrivals,
)
from repro.workload.params import WorkloadParams

ALL_FAMILIES = (
    PoissonArrivals,
    ParetoArrivals,
    LognormalArrivals,
    MarkovModulatedArrivals,
    DiurnalArrivals,
)

PARAMS = WorkloadParams(num_processes=4, num_resources=8, phi=3, rho=2.0)


def take_gaps(spec, n, seed=42, params=PARAMS):
    rng = random.Random(seed)
    return list(itertools.islice(spec.gaps(rng, params), n))


class TestValidation:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_non_positive_rate_rejected(self, family):
        with pytest.raises(ValueError):
            family(rate=0.0)
        with pytest.raises(ValueError):
            family(rate=-1.0)

    def test_pareto_shape_must_exceed_one(self):
        with pytest.raises(ValueError):
            ParetoArrivals(shape=1.0)

    def test_lognormal_sigma_must_be_positive(self):
        with pytest.raises(ValueError):
            LognormalArrivals(sigma=0.0)

    def test_mmpp_parameters_validated(self):
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(burst_factor=1.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(burst_fraction=0.0)
        with pytest.raises(ValueError):
            MarkovModulatedArrivals(dwell=0.0)

    def test_diurnal_amplitude_bounded(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(period=0.0)


class TestRateNormalisation:
    """Every family draws gaps with mean ``1/rate`` — the ablation contract."""

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_explicit_rate_gives_mean_gap_one_over_rate(self, family):
        spec = family(rate=0.05)  # mean gap 20 ms
        gaps = take_gaps(spec, 40_000)
        assert statistics.fmean(gaps) == pytest.approx(20.0, rel=0.1)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_default_rate_is_one_over_beta(self, family):
        spec = family()
        assert spec.mean_rate(PARAMS) == pytest.approx(1.0 / PARAMS.beta)
        gaps = take_gaps(spec, 40_000)
        assert statistics.fmean(gaps) == pytest.approx(PARAMS.beta, rel=0.1)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_gaps_are_non_negative(self, family):
        assert all(g >= 0.0 for g in take_gaps(family(rate=0.1), 2_000))


class TestShape:
    def test_pareto_has_heavier_tail_than_poisson(self):
        po = take_gaps(PoissonArrivals(rate=0.1), 50_000)
        pa = take_gaps(ParetoArrivals(rate=0.1, shape=2.1), 50_000)
        assert max(pa) > max(po)

    def test_mmpp_is_burstier_than_poisson(self):
        """Coefficient of variation of MMPP gaps exceeds the Poisson CV (~1)."""
        po = take_gaps(PoissonArrivals(rate=0.1), 50_000)
        mm = take_gaps(MarkovModulatedArrivals(rate=0.1, burst_factor=10.0), 50_000)
        cv = lambda xs: statistics.stdev(xs) / statistics.fmean(xs)
        assert cv(mm) > cv(po)

    def test_diurnal_rate_oscillates(self):
        """Arrivals cluster in the high-rate half of the cycle."""
        spec = DiurnalArrivals(rate=0.1, amplitude=0.9, period=1_000.0)
        gaps = take_gaps(spec, 50_000)
        times = list(itertools.accumulate(gaps))
        phases = [(t % 1_000.0) / 1_000.0 for t in times]
        rising = sum(1 for p in phases if p < 0.5)  # sin > 0 half-cycle
        assert rising / len(phases) > 0.55


class TestDeterminismAndTransport:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_same_seed_same_gaps(self, family):
        spec = family(rate=0.2)
        assert take_gaps(spec, 500, seed=7) == take_gaps(spec, 500, seed=7)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_picklable_and_hashable(self, family):
        spec = family(rate=0.2)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert isinstance(spec, ArrivalSpec)
        hash(spec)  # frozen dataclasses must stay hashable
