"""Unit tests for the lazy SWF trace parser."""

import itertools
from pathlib import Path

import pytest

from repro.workload.swf import SWF_FIELDS, count_swf_jobs, parse_swf, read_swf

MINI = Path(__file__).parent / "data" / "mini.swf"


class TestParsing:
    def test_fixture_parses_all_jobs(self):
        jobs = list(read_swf(str(MINI)))
        assert [j.job_number for j in jobs] == [1, 2, 3, 4, 5]

    def test_comments_and_blank_lines_skipped(self):
        text = MINI.read_text()
        assert text.count(";") > 1  # the fixture really exercises comments
        assert list(parse_swf(text.splitlines())) == list(read_swf(str(MINI)))

    def test_field_values(self):
        job = next(read_swf(str(MINI)))
        assert job.submit_time == 0.0
        assert job.wait_time == 2.0
        assert job.run_time == 10.0
        assert job.allocated_procs == 4
        assert job.requested_procs == 4
        assert job.user_id == 1

    def test_float_fields_are_floats(self):
        job = next(read_swf(str(MINI)))
        assert isinstance(job.submit_time, float)
        assert isinstance(job.run_time, float)
        assert isinstance(job.allocated_procs, int)

    def test_truncated_record_padded_with_sentinel(self):
        last = list(read_swf(str(MINI)))[-1]
        assert last.job_number == 5
        # Fields beyond the truncation point carry the SWF unknown value.
        assert last.queue == -1 and last.partition == -1 and last.think_time == -1.0

    def test_procs_falls_back_to_allocated(self):
        jobs = {j.job_number: j for j in read_swf(str(MINI))}
        assert jobs[1].procs == 4  # requested_procs present
        assert jobs[3].procs == 8  # requested_procs == -1 -> allocated_procs

    def test_malformed_field_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            list(parse_swf(["; header", "1 0 0 bogus 4"]))

    def test_field_order_matches_standard(self):
        assert len(SWF_FIELDS) == 18
        assert SWF_FIELDS[0] == "job_number"
        assert SWF_FIELDS[1] == "submit_time"
        assert SWF_FIELDS[3] == "run_time"


class TestLaziness:
    def test_parse_swf_is_a_generator(self):
        """One record at a time: a huge input is never materialised."""

        def endless_lines():
            n = 0
            while True:
                n += 1
                yield f"{n} {n} 0 5 2 -1 -1 2 10 -1 1 1 1 1 1 -1 -1 -1"

        first_three = list(itertools.islice(parse_swf(endless_lines()), 3))
        assert [j.job_number for j in first_three] == [1, 2, 3]

    def test_count_swf_jobs(self):
        assert count_swf_jobs(str(MINI)) == 5
