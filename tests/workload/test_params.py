"""Unit tests for the experiment parameters."""

import pytest

from repro.workload.params import LoadLevel, WorkloadParams, cs_duration_for_size


class TestCsDuration:
    def test_single_resource_uses_alpha_min(self):
        assert cs_duration_for_size(1, 80) == pytest.approx(5.0)

    def test_full_request_uses_alpha_max(self):
        assert cs_duration_for_size(80, 80) == pytest.approx(35.0)

    def test_midpoint_interpolates(self):
        mid = cs_duration_for_size(40, 80)
        assert 5.0 < mid < 35.0

    def test_monotone_in_size(self):
        values = [cs_duration_for_size(s, 80) for s in range(1, 81)]
        assert values == sorted(values)

    def test_size_clamped_to_num_resources(self):
        assert cs_duration_for_size(200, 80) == pytest.approx(35.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            cs_duration_for_size(0, 80)

    def test_single_resource_system(self):
        assert cs_duration_for_size(1, 1) == pytest.approx(35.0)


class TestWorkloadParams:
    def test_paper_defaults(self):
        params = WorkloadParams()
        assert params.num_processes == 32
        assert params.num_resources == 80
        assert params.gamma == pytest.approx(0.6)
        assert params.alpha_min == pytest.approx(5.0)
        assert params.alpha_max == pytest.approx(35.0)

    def test_beta_derived_from_rho(self):
        params = WorkloadParams(rho=2.0, phi=1)
        assert params.beta == pytest.approx(2.0 * (params.mean_alpha + params.gamma))

    def test_high_load_has_smaller_rho_than_medium(self):
        high = WorkloadParams(load=LoadLevel.HIGH)
        medium = WorkloadParams(load=LoadLevel.MEDIUM)
        assert high.effective_rho < medium.effective_rho

    def test_explicit_rho_overrides_load_level(self):
        params = WorkloadParams(load=LoadLevel.HIGH, rho=9.5)
        assert params.effective_rho == pytest.approx(9.5)

    def test_with_phi_returns_new_instance(self):
        base = WorkloadParams()
        other = base.with_phi(10)
        assert other.phi == 10 and base.phi == 4
        assert other is not base

    def test_with_load_resets_rho(self):
        base = WorkloadParams(rho=3.0)
        other = base.with_load(LoadLevel.HIGH)
        assert other.effective_rho == LoadLevel.HIGH.default_rho

    def test_with_seed(self):
        assert WorkloadParams().with_seed(99).seed == 99

    def test_scaled_shrinks_system(self):
        scaled = WorkloadParams(phi=40).scaled(processes=8, resources=16, duration=500.0)
        assert scaled.num_processes == 8
        assert scaled.num_resources == 16
        assert scaled.phi == 16
        assert scaled.duration == 500.0
        assert scaled.warmup <= 50.0

    def test_describe_contains_key_values(self):
        text = WorkloadParams(phi=7, seed=123).describe()
        assert "phi=7" in text and "seed=123" in text

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_processes": 0},
            {"num_resources": 0},
            {"phi": 0},
            {"phi": 100, "num_resources": 80},
            {"alpha_min": 0.0},
            {"alpha_min": 40.0, "alpha_max": 30.0},
            {"gamma": -1.0},
            {"duration": 0.0},
            {"warmup": 30_000.0},
            {"cs_noise": 1.5},
            {"loan_threshold": -1},
            {"rho": -0.5},
            {"requests_per_process": 0},
            {"requests_per_process": -3},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadParams(**kwargs)

    def test_boundary_values_accepted(self):
        assert WorkloadParams(rho=0.0).effective_rho == 0.0
        assert WorkloadParams(requests_per_process=1).requests_per_process == 1

    def test_mean_alpha_grows_with_phi(self):
        small = WorkloadParams(phi=2)
        large = WorkloadParams(phi=60)
        assert large.mean_alpha > small.mean_alpha


class TestFrozenExtra:
    """``extra`` must stay immutable after the cache key is computed."""

    def test_mutation_raises(self):
        params = WorkloadParams(extra={"knob": 1})
        with pytest.raises(TypeError, match="frozen"):
            params.extra["knob"] = 2
        with pytest.raises(TypeError, match="frozen"):
            params.extra["new"] = 3
        with pytest.raises(TypeError, match="frozen"):
            del params.extra["knob"]
        with pytest.raises(TypeError, match="frozen"):
            params.extra.update({"knob": 2})
        with pytest.raises(TypeError, match="frozen"):
            params.extra.pop("knob")
        with pytest.raises(TypeError, match="frozen"):
            params.extra.clear()
        with pytest.raises(TypeError, match="frozen"):
            params.extra.setdefault("other", 1)

    def test_reads_still_work(self):
        params = WorkloadParams(extra={"knob": 1})
        assert params.extra["knob"] == 1
        assert dict(params.extra) == {"knob": 1}
        assert "knob" in params.extra

    def test_equality_with_plain_dict(self):
        assert WorkloadParams(extra={"a": 1}) == WorkloadParams(extra={"a": 1})
        assert WorkloadParams(extra={"a": 1}).extra == {"a": 1}

    def test_pickle_roundtrip_stays_frozen(self):
        import pickle

        clone = pickle.loads(pickle.dumps(WorkloadParams(extra={"a": 1})))
        with pytest.raises(TypeError, match="frozen"):
            clone.extra["a"] = 2

    def test_scenario_key_unaffected_by_freezing(self):
        """Regression: freezing must not perturb canonicalisation."""
        from repro.experiments.scenario import Scenario

        with_extra = Scenario(
            algorithm="with_loan", params=WorkloadParams(extra={"a": 1})
        ).key()
        same_extra = Scenario(
            algorithm="with_loan", params=WorkloadParams(extra={"a": 1})
        ).key()
        bare = Scenario(algorithm="with_loan", params=WorkloadParams()).key()
        assert with_extra == same_extra
        assert with_extra != bare
