"""Tests for the declarative workload axis (specs, thawing, cache keys)."""

import itertools
import os
import pickle
import resource

import pytest

from repro.experiments.scenario import Scenario
from repro.workload.arrivals import ParetoArrivals, PoissonArrivals
from repro.workload.generator import WorkloadGenerator
from repro.workload.params import WorkloadParams
from repro.workload.spec import (
    OpenLoopSpec,
    SyntheticSpec,
    TraceReplaySpec,
    WorkloadSpec,
)

PARAMS = WorkloadParams(num_processes=4, num_resources=8, phi=3, rho=2.0, seed=11)
MINI = os.path.join(os.path.dirname(__file__), "data", "mini.swf")


class TestSyntheticSpec:
    def test_streams_bit_identical_to_generator(self):
        """The spec is a pure re-packaging of WorkloadGenerator."""
        direct = WorkloadGenerator(PARAMS)
        thawed = SyntheticSpec().build(PARAMS)
        for process in range(PARAMS.num_processes):
            a = list(itertools.islice(direct.stream_for(process), 50))
            b = list(itertools.islice(thawed.stream_for(process), 50))
            assert a == b

    def test_closed_loop(self):
        assert SyntheticSpec().build(PARAMS).closed_loop is True

    def test_expected_requests_defaults_to_none(self):
        """None keeps the legacy event-valve formula bit-identical."""
        assert SyntheticSpec().build(PARAMS).expected_requests() is None


class TestScenarioKeyNeutrality:
    """Scenarios written before the workload axis keep their cache keys."""

    def test_bare_params_normalises_to_synthetic(self):
        scenario = Scenario(algorithm="with_loan", params=PARAMS)
        assert scenario.normalized().workload == SyntheticSpec()

    def test_explicit_synthetic_spec_is_key_neutral(self):
        bare = Scenario(algorithm="with_loan", params=PARAMS)
        explicit = Scenario(algorithm="with_loan", params=PARAMS, workload=SyntheticSpec())
        assert bare.key() == explicit.key()

    def test_chunking_fields_are_key_neutral_at_defaults(self):
        bare = Scenario(algorithm="with_loan", params=PARAMS)
        defaulted = Scenario(
            algorithm="with_loan", params=PARAMS, record_chunk_rows=None, record_spill=False
        )
        assert bare.key() == defaulted.key()

    def test_chunking_changes_the_key_when_set(self):
        bare = Scenario(algorithm="with_loan", params=PARAMS)
        chunked = Scenario(algorithm="with_loan", params=PARAMS, record_chunk_rows=256)
        assert bare.key() != chunked.key()

    def test_open_loop_changes_the_key(self):
        bare = Scenario(algorithm="with_loan", params=PARAMS)
        open_loop = Scenario(algorithm="with_loan", params=PARAMS, workload=OpenLoopSpec())
        assert bare.key() != open_loop.key()

    def test_workload_must_be_a_spec(self):
        with pytest.raises(TypeError):
            Scenario(algorithm="with_loan", params=PARAMS, workload="poisson")


class TestOpenLoopSpec:
    def test_arrival_must_be_an_arrival_spec(self):
        with pytest.raises(TypeError):
            OpenLoopSpec(arrival="poisson")

    def test_open_loop_flag(self):
        assert OpenLoopSpec().build(PARAMS).closed_loop is False

    def test_streams_deterministic(self):
        spec = OpenLoopSpec(arrival=ParetoArrivals(rate=0.1))
        a = list(itertools.islice(spec.build(PARAMS).stream_for(1), 40))
        b = list(itertools.islice(spec.build(PARAMS).stream_for(1), 40))
        assert a == b

    def test_request_shapes_independent_of_arrival_family(self):
        """Swapping the arrival process only re-times requests.

        Sizes, resource picks and CS durations come from dedicated RNG
        streams, so the burstiness ablation compares identically shaped
        request sequences.
        """
        poisson = OpenLoopSpec(arrival=PoissonArrivals(rate=0.1)).build(PARAMS)
        pareto = OpenLoopSpec(arrival=ParetoArrivals(rate=0.1)).build(PARAMS)
        a = list(itertools.islice(poisson.stream_for(0), 40))
        b = list(itertools.islice(pareto.stream_for(0), 40))
        assert [r.resources for r in a] == [r.resources for r in b]
        assert [r.cs_duration for r in a] == [r.cs_duration for r in b]
        assert [r.think_time for r in a] != [r.think_time for r in b]

    def test_processes_have_independent_streams(self):
        wl = OpenLoopSpec().build(PARAMS)
        a = list(itertools.islice(wl.stream_for(0), 20))
        b = list(itertools.islice(wl.stream_for(1), 20))
        assert [r.think_time for r in a] != [r.think_time for r in b]

    def test_expected_requests_scales_with_rate_and_duration(self):
        wl = OpenLoopSpec(arrival=PoissonArrivals(rate=0.01)).build(PARAMS)
        expected = wl.expected_requests()
        assert expected == pytest.approx(
            PARAMS.num_processes * PARAMS.duration * 0.01, rel=0.01
        )

    def test_out_of_range_process_rejected(self):
        wl = OpenLoopSpec().build(PARAMS)
        with pytest.raises(ValueError):
            next(wl.stream_for(PARAMS.num_processes))

    def test_million_request_stream_is_flat_memory(self):
        """Acceptance: a 10^6-request open-loop stream never materialises.

        Scaled down via REPRO_LAZY_DRAWS for quick local loops; CI runs
        the full million.
        """
        draws = int(os.environ.get("REPRO_LAZY_DRAWS", "1000000"))
        params = WorkloadParams(
            num_processes=2, num_resources=16, phi=4, rho=2.0, duration=1e12
        )
        stream = OpenLoopSpec(arrival=PoissonArrivals(rate=1.0)).build(params).stream_for(0)
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        count = sum(1 for _ in itertools.islice(stream, draws))
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        assert count == draws
        growth_mb = (after - before) / 1024.0
        # Materialising the stream would cost hundreds of MB; the lazy
        # generator holds one RequestSpec at a time.
        assert growth_mb < 50.0, f"stream not lazy: RSS grew {growth_mb:.0f} MB"


class TestTraceReplaySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplaySpec(path="")
        with pytest.raises(ValueError):
            TraceReplaySpec(path=MINI, time_scale=0.0)
        with pytest.raises(ValueError):
            TraceReplaySpec(path=MINI, max_jobs=0)

    def test_round_robin_covers_every_job_once(self):
        spec = TraceReplaySpec(path=MINI)
        wl = spec.build(PARAMS)
        total = [r for p in range(PARAMS.num_processes) for r in wl.stream_for(p)]
        assert len(total) == 5
        assert wl.expected_requests() == 5

    def test_max_jobs_caps_replay(self):
        wl = TraceReplaySpec(path=MINI, max_jobs=2).build(PARAMS)
        total = [r for p in range(PARAMS.num_processes) for r in wl.stream_for(p)]
        assert len(total) == 2
        assert wl.expected_requests() == 2

    def test_gaps_follow_rebased_submit_times(self):
        """First arrival of the stream lands at (submit - first_submit) * scale."""
        one_process = WorkloadParams(
            num_processes=1, num_resources=8, phi=3, rho=2.0, seed=11
        )
        wl = TraceReplaySpec(path=MINI, time_scale=2.0).build(one_process)
        specs = list(wl.stream_for(0))
        arrivals = list(itertools.accumulate(r.think_time for r in specs))
        # mini.swf submit times: 0, 5, 5, 12, 20 -> doubled.
        assert arrivals == pytest.approx([0.0, 10.0, 10.0, 24.0, 40.0])

    def test_runtime_becomes_cs_duration(self):
        one_process = WorkloadParams(
            num_processes=1, num_resources=8, phi=3, rho=2.0, seed=11
        )
        wl = TraceReplaySpec(path=MINI).build(one_process)
        specs = list(wl.stream_for(0))
        assert specs[0].cs_duration == pytest.approx(10.0)
        # Job 4 has run_time 0 -> synthetic size-dependent fallback.
        assert specs[3].cs_duration > 0.0

    def test_missing_file_raises_at_build(self):
        with pytest.raises(FileNotFoundError):
            TraceReplaySpec(path="/nonexistent/trace.swf").build(PARAMS)

    def test_key_is_content_addressed(self, tmp_path):
        """Identical bytes at different paths share a key; an edit changes it."""
        copy1 = tmp_path / "a.swf"
        copy2 = tmp_path / "sub" / "b.swf"
        copy2.parent.mkdir()
        data = open(MINI).read()
        copy1.write_text(data)
        copy2.write_text(data)
        key = lambda p: Scenario(
            algorithm="with_loan", params=PARAMS, workload=TraceReplaySpec(path=str(p))
        ).key()
        assert key(copy1) == key(copy2)
        copy1.write_text(data + "\n42 999 0 5 2 -1 -1 2 10 -1 1 1 1 1 1 -1 -1 -1\n")
        assert key(copy1) != key(copy2)

    def test_missing_file_fails_at_key_time(self):
        scenario = Scenario(
            algorithm="with_loan",
            params=PARAMS,
            workload=TraceReplaySpec(path="/nonexistent/trace.swf"),
        )
        with pytest.raises(FileNotFoundError):
            scenario.key()


class TestTransport:
    @pytest.mark.parametrize(
        "spec",
        [
            SyntheticSpec(),
            OpenLoopSpec(),
            OpenLoopSpec(arrival=ParetoArrivals(rate=0.2, shape=2.1)),
            TraceReplaySpec(path=MINI, time_scale=0.5, max_jobs=3),
        ],
    )
    def test_specs_pickle_roundtrip(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert isinstance(clone, WorkloadSpec)
        hash(clone)
