"""Unit tests for the workload generator."""

import pytest

from repro.workload.generator import RequestSpec, WorkloadGenerator, fixed_requests
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture
def params():
    return WorkloadParams(
        num_processes=4, num_resources=20, phi=6, duration=1_000.0, warmup=100.0, seed=5
    )


class TestRequestSpec:
    def test_size_property(self):
        spec = RequestSpec(0, 0, frozenset({1, 2, 3}), 10.0, 1.0)
        assert spec.size == 3

    def test_empty_resources_rejected(self):
        with pytest.raises(ValueError):
            RequestSpec(0, 0, frozenset(), 10.0, 1.0)

    def test_non_positive_cs_rejected(self):
        with pytest.raises(ValueError):
            RequestSpec(0, 0, frozenset({1}), 0.0, 1.0)

    def test_negative_think_rejected(self):
        with pytest.raises(ValueError):
            RequestSpec(0, 0, frozenset({1}), 1.0, -1.0)


class TestWorkloadStream:
    def test_sizes_within_phi(self, params):
        stream = WorkloadGenerator(params).stream_for(0)
        for _ in range(300):
            spec = stream.next_request()
            assert 1 <= spec.size <= params.phi

    def test_resources_within_range(self, params):
        stream = WorkloadGenerator(params).stream_for(1)
        for _ in range(200):
            spec = stream.next_request()
            assert all(0 <= r < params.num_resources for r in spec.resources)

    def test_cs_duration_positive_and_bounded(self, params):
        stream = WorkloadGenerator(params).stream_for(2)
        upper = params.alpha_max * (1 + params.cs_noise)
        for _ in range(200):
            spec = stream.next_request()
            assert 0 < spec.cs_duration <= upper + 1e-9

    def test_larger_requests_have_longer_mean_cs(self):
        params = WorkloadParams(
            num_processes=2, num_resources=40, phi=40, duration=1_000.0, warmup=100.0,
            seed=3, cs_noise=0.0,
        )
        stream = WorkloadGenerator(params).stream_for(0)
        specs = [stream.next_request() for _ in range(500)]
        small = [s.cs_duration for s in specs if s.size <= 5]
        large = [s.cs_duration for s in specs if s.size >= 35]
        assert small and large
        assert sum(large) / len(large) > sum(small) / len(small)

    def test_indices_increment(self, params):
        stream = WorkloadGenerator(params).stream_for(0)
        indices = [stream.next_request().index for _ in range(5)]
        assert indices == [0, 1, 2, 3, 4]

    def test_iterator_protocol(self, params):
        stream = WorkloadGenerator(params).stream_for(0)
        first = next(stream)
        assert isinstance(first, RequestSpec)

    def test_think_time_non_negative(self, params):
        stream = WorkloadGenerator(params).stream_for(3)
        assert all(stream.next_request().think_time >= 0 for _ in range(200))


class TestWorkloadGenerator:
    def test_deterministic_for_same_seed(self, params):
        a = WorkloadGenerator(params).preview(0, 20)
        b = WorkloadGenerator(params).preview(0, 20)
        assert a == b

    def test_different_seeds_differ(self, params):
        a = WorkloadGenerator(params).preview(0, 20)
        b = WorkloadGenerator(params.with_seed(6)).preview(0, 20)
        assert a != b

    def test_processes_get_different_streams(self, params):
        gen = WorkloadGenerator(params)
        assert gen.preview(0, 20) != gen.preview(1, 20)

    def test_out_of_range_process_rejected(self, params):
        with pytest.raises(ValueError):
            WorkloadGenerator(params).stream_for(99)

    def test_all_streams_covers_every_process(self, params):
        streams = WorkloadGenerator(params).all_streams()
        assert len(streams) == params.num_processes

    def test_workload_identical_across_load_levels_for_sizes(self):
        """The same seed must replay the same resource sets regardless of
        the load level, so algorithm comparisons see identical conflicts."""
        base = WorkloadParams(
            num_processes=2, num_resources=10, phi=4, duration=100.0, warmup=10.0, seed=9
        )
        medium = WorkloadGenerator(base.with_load(LoadLevel.MEDIUM)).preview(0, 30)
        high = WorkloadGenerator(base.with_load(LoadLevel.HIGH)).preview(0, 30)
        assert [s.resources for s in medium] == [s.resources for s in high]


class TestFixedRequests:
    def test_builds_sequential_specs(self):
        specs = fixed_requests(2, [frozenset({1}), frozenset({2, 3})], cs_duration=5.0)
        assert [s.index for s in specs] == [0, 1]
        assert specs[0].think_time == 0.0
        assert specs[1].resources == frozenset({2, 3})
