"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_in_insertion_order(self, sim):
        fired = []
        for label in ("first", "second", "third"):
            sim.schedule(5.0, fired.append, label)
        sim.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_last_event(self, sim):
        sim.schedule(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(2.5, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_callback_args_are_passed(self, sim):
        result = {}
        sim.schedule(1.0, result.setdefault, "key", 42)
        sim.run()
        assert result == {"key": 42}

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancelling_one_of_many(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "keep")
        cancelled = sim.schedule(2.0, fired.append, "drop")
        sim.schedule(3.0, fired.append, "keep2")
        cancelled.cancel()
        sim.run()
        assert fired == ["keep", "keep2"]

    def test_step_skips_cancelled_events(self, sim):
        fired = []
        cancelled = sim.schedule(1.0, fired.append, "drop")
        sim.schedule(2.0, fired.append, "keep")
        cancelled.cancel()
        assert sim.step() is True
        assert fired == ["keep"]
        assert sim.now == 2.0
        assert sim.step() is False

    def test_run_until_skips_cancelled_events(self, sim):
        fired = []
        cancelled = sim.schedule(1.0, fired.append, "drop")
        sim.schedule(2.0, fired.append, "keep")
        sim.schedule(10.0, fired.append, "late")
        cancelled.cancel()
        sim.run(until=5.0)
        assert fired == ["keep"]
        assert sim.now == 5.0

    def test_cancelled_head_beyond_until_does_not_fire_later(self, sim):
        fired = []
        late = sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        late.cancel()
        sim.run()
        assert fired == []

    def test_cancelled_flag_visible_on_handle(self, sim):
        event = sim.schedule(1.0, lambda: None)
        assert event.cancelled is False
        event.cancel()
        assert event.cancelled is True

    def test_cancel_is_idempotent(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.run()
        event.cancel()
        sim.schedule(2.0, fired.append, "y")
        sim.run()
        assert fired == ["x", "y"]


class TestRunWithoutClockAdvance:
    def test_drained_queue_leaves_clock_at_last_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.run(until=10.0, advance_to_until=False)
        assert fired == ["x"]
        assert sim.now == 1.0

    def test_early_stop_leaves_clock_at_last_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "x")
        sim.schedule(5.0, fired.append, "y")
        sim.run(until=3.0, advance_to_until=False)
        assert fired == ["x"]
        assert sim.now == 1.0

    def test_default_still_advances_to_until(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0


class TestEventHandleHash:
    def test_event_handles_are_hashable(self, sim):
        """Regression: __eq__ under __slots__ used to suppress __hash__,
        so hash(Event(...)) raised TypeError."""
        event = sim.schedule(1.0, lambda: None)
        assert isinstance(hash(event), int)

    def test_hash_consistent_with_equality(self, sim):
        from repro.sim.engine import Event

        a = Event(1.0, 0, lambda: None)
        b = Event(1.0, 0, lambda: None)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_distinct_events_usable_as_dict_keys(self, sim):
        first = sim.schedule(1.0, lambda: None)
        second = sim.schedule(2.0, lambda: None)
        table = {first: "a", second: "b"}
        assert table[first] == "a" and table[second] == "b"


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_with_empty_queue(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_raises_on_runaway(self, sim):
        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=50)

    def test_step_executes_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_processed_events_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_reset_clears_state(self, sim):
        sim.schedule(3.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.processed_events == 0

    def test_reset_clears_cancellation_bookkeeping(self, sim):
        event = sim.schedule(3.0, lambda: None)
        event.cancel()
        sim.reset()
        assert sim._cancelled == set()
        # Sequence numbers restart after reset; a stale cancellation must
        # not suppress a fresh event that reuses the same seq.
        fired = []
        sim.schedule(1.0, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError, match="re-entrant"):
            sim.run()
