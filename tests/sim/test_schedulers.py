"""Scheduler-layer tests: heap/calendar equivalence and selection.

The scheduler is a pure performance knob — the engine's determinism
contract says every scheduler dispatches the exact same events in the
exact same ``(time, seq)`` order.  The differential tests here drive
both implementations through identical randomized scripts (schedules,
cancellations, nested scheduling from callbacks, bounded runs) and
require identical firing orders, clock trajectories and processed-event
counts, plus adversarial shapes chosen to stress the calendar queue's
window/spine/pending machinery specifically.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.schedulers import (
    SCHEDULER_ENV,
    SCHEDULERS,
    CalendarQueue,
    HeapScheduler,
    available_schedulers,
    make_scheduler,
    resolve_scheduler_name,
)

ALL_SCHEDULERS = ("heap", "calendar")


# --------------------------------------------------------------------- #
# differential harness
# --------------------------------------------------------------------- #
def _run_script(scheduler_name, script):
    """Execute a schedule/cancel script and return the observable trace.

    ``script`` is a list of operations applied before the run; callbacks
    themselves may schedule more work (the ``nest`` operation), which
    exercises in-window insertion while the calendar is mid-dispatch.
    """
    sim = Simulator(scheduler_name)
    trace = []
    handles = {}

    def fire(tag):
        trace.append((sim.now, tag))

    def fire_and_nest(tag, delay, sub_tag):
        trace.append((sim.now, tag))
        sim.post_in(delay, fire, sub_tag)

    for index, op in enumerate(script):
        kind = op[0]
        if kind == "at":
            _, time, tag = op
            handles[index] = sim.schedule_at(time, fire, tag)
        elif kind == "nest":
            _, time, tag, delay = op
            handles[index] = sim.schedule_at(time, fire_and_nest, tag, delay, f"{tag}+nest")
        elif kind == "cancel":
            target = op[1]
            if target in handles:
                handles[target].cancel()
    sim.run()
    return trace, sim.now, sim.processed_events


def _random_script(rng, size):
    """A random mix of schedules, nested schedules and cancellations."""
    script = []
    for i in range(size):
        roll = rng.random()
        time = round(rng.uniform(0.0, 50.0), 3)
        if roll < 0.55:
            script.append(("at", time, f"t{i}"))
        elif roll < 0.8:
            script.append(("nest", time, f"n{i}", round(rng.uniform(0.0, 5.0), 3)))
        elif script:
            script.append(("cancel", rng.randrange(len(script))))
    return script


class TestDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_randomized_scripts_fire_identically(self, seed):
        script = _random_script(random.Random(seed), 120)
        heap = _run_script("heap", script)
        calendar = _run_script("calendar", script)
        assert heap == calendar

    def test_single_bucket_burst(self):
        """10k events at the same instant: pure seq tie-breaking."""
        script = [("at", 1.0, f"t{i}") for i in range(10_000)]
        heap_trace, _, heap_n = _run_script("heap", script)
        cal_trace, _, cal_n = _run_script("calendar", script)
        assert heap_trace == cal_trace
        assert heap_n == cal_n == 10_000
        assert [tag for _, tag in heap_trace] == [f"t{i}" for i in range(10_000)]

    def test_huge_time_spread(self):
        """Timestamps spanning 12 orders of magnitude."""
        script = [("at", float(10 ** (i % 12)), f"t{i}") for i in range(3_000)]
        assert _run_script("heap", script) == _run_script("calendar", script)

    def test_dense_same_time_nesting(self):
        """Nested schedules landing inside the active dispatch window."""
        script = [("nest", float(i % 7), f"n{i}", 0.0) for i in range(2_000)]
        assert _run_script("heap", script) == _run_script("calendar", script)

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_bounded_run_and_step_parity(self, scheduler):
        """until-bounded runs and single steps agree across schedulers."""
        sim = Simulator(scheduler)
        fired = []
        for i in range(100):
            sim.schedule_at(float(i % 13), fired.append, i)
        sim.run(until=5.0)
        mid = list(fired)
        while sim.step():
            pass
        if scheduler == "heap":
            TestDifferential._heap_result = (mid, list(fired))
        else:
            assert (mid, list(fired)) == TestDifferential._heap_result

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_max_events_budget_raises(self, scheduler):
        """A livelocked run trips the max_events valve on every scheduler."""
        sim = Simulator(scheduler)

        def rearm():
            sim.post_in(1.0, rearm)

        sim.post_in(0.0, rearm)
        with pytest.raises(Exception, match="max_events"):
            sim.run(max_events=50)


# --------------------------------------------------------------------- #
# calendar internals
# --------------------------------------------------------------------- #
class TestCalendarQueue:
    def test_len_counts_all_tiers(self):
        q = CalendarQueue()
        for i in range(10):
            q.push((float(i), i, None, ()))
        assert len(q) == 10
        q.pop()
        assert len(q) == 9
        # A fresh push after a pop lands in the pending tier.
        q.push((100.0, 10, None, ()))
        assert len(q) == 10

    def test_pop_returns_sorted_order_across_chunks(self):
        q = CalendarQueue()
        entries = [(float(i % 97), i, None, ()) for i in range(3 * CalendarQueue.CHUNK)]
        for e in entries:
            q.push(e)
        drained = []
        while True:
            e = q.pop()
            if e is None:
                break
            drained.append(e)
        assert drained == sorted(entries)
        assert len(q) == 0

    def test_clear_resets_all_tiers(self):
        q = CalendarQueue()
        for i in range(100):
            q.push((float(i), i, None, ()))
        q.pop()
        q.clear()
        assert len(q) == 0
        assert q.pop() is None
        q.push((1.0, 0, None, ()))
        assert q.pop() == (1.0, 0, None, ())


# --------------------------------------------------------------------- #
# selection: argument > environment > default
# --------------------------------------------------------------------- #
class TestSelection:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert resolve_scheduler_name(None) == "heap"
        assert Simulator().scheduler_name == "heap"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "calendar")
        assert resolve_scheduler_name(None) == "calendar"
        assert Simulator().scheduler_name == "calendar"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "calendar")
        assert resolve_scheduler_name("heap") == "heap"
        assert Simulator("heap").scheduler_name == "heap"

    def test_unknown_name_rejected(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        with pytest.raises(ValueError, match="unknown scheduler"):
            resolve_scheduler_name("fibonacci")
        monkeypatch.setenv(SCHEDULER_ENV, "fibonacci")
        with pytest.raises(ValueError, match="unknown scheduler"):
            Simulator()

    def test_registry_and_factory_agree(self):
        assert set(available_schedulers()) == set(SCHEDULERS)
        assert type(make_scheduler("heap")) is HeapScheduler
        assert type(make_scheduler("calendar")) is CalendarQueue
        # "ladder" is an alias for the calendar implementation.
        assert type(make_scheduler("ladder")) is CalendarQueue


class TestScenarioPrecedence:
    """Explicit ``Scenario(scheduler=...)`` beats ``$REPRO_SCHEDULER``.

    The name-resolution rule is pinned above; this is the end-to-end
    regression that was missing: with *both* set, a full experiment run
    must produce the event order of the explicit choice — identical
    record columns and event counts to the env-less reference run, for
    either direction of disagreement.  (The same precedence rule for the
    telemetry axis is pinned in ``tests/obs/test_pipeline.py``.)
    """

    @pytest.fixture()
    def scenario(self):
        from repro.experiments.scenario import Scenario
        from repro.workload.params import WorkloadParams

        return Scenario(
            algorithm="with_loan",
            params=WorkloadParams(
                num_processes=5,
                num_resources=10,
                phi=3,
                duration=300.0,
                warmup=50.0,
                seed=9,
            ),
        )

    @pytest.mark.parametrize(
        "explicit, env", [("heap", "calendar"), ("calendar", "heap")]
    )
    def test_env_loses_to_explicit_scenario_value(
        self, scenario, monkeypatch, explicit, env
    ):
        from repro.experiments.runner import run

        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        reference = run(scenario.replace(scheduler=explicit))

        monkeypatch.setenv(SCHEDULER_ENV, env)
        contested = run(scenario.replace(scheduler=explicit))

        assert contested.events_processed == reference.events_processed
        assert contested.simulated_time == reference.simulated_time
        assert contested.record_columns == reference.record_columns
        assert contested.metrics == reference.metrics

    def test_env_applies_when_scenario_is_silent(self, scenario, monkeypatch):
        # Control for the test above: the env var is not simply ignored —
        # a scenario without an explicit scheduler does follow it (and
        # still produces bit-identical results, per the schedulers'
        # determinism contract).
        from repro.experiments.runner import run

        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        reference = run(scenario)
        monkeypatch.setenv(SCHEDULER_ENV, "calendar")
        via_env = run(scenario)
        assert via_env.record_columns == reference.record_columns
        assert via_env.metrics == reference.metrics


# --------------------------------------------------------------------- #
# reset: stale handles go inert (generation counter)
# --------------------------------------------------------------------- #
class TestResetGenerations:
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_stale_handle_cannot_cancel_new_event(self, scheduler):
        sim = Simulator(scheduler)
        fired = []
        stale = sim.schedule(1.0, fired.append, "old")
        sim.reset()
        # The new event reuses seq 0 — the stale handle must not kill it.
        sim.schedule(1.0, fired.append, "new")
        stale.cancel()  # inert: silently dropped, not applied to seq 0
        assert not stale.cancelled
        sim.run()
        assert fired == ["new"]

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_live_handle_still_cancels(self, scheduler):
        sim = Simulator(scheduler)
        fired = []
        handle = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        handle.cancel()
        sim.run()
        assert fired == ["b"]
