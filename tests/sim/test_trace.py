"""Unit tests for the trace recorder."""

from repro.sim.trace import TraceEvent, TraceRecorder


class TestTraceRecorder:
    def test_record_and_iterate(self):
        trace = TraceRecorder()
        trace.record(1.0, 0, "cs_enter", resources=[1, 2])
        trace.record(2.0, 1, "cs_exit")
        assert len(trace) == 2
        kinds = [e.kind for e in trace]
        assert kinds == ["cs_enter", "cs_exit"]

    def test_filter_by_kind_and_node(self):
        trace = TraceRecorder()
        trace.record(1.0, 0, "a")
        trace.record(2.0, 1, "a")
        trace.record(3.0, 0, "b")
        assert len(trace.events(kind="a")) == 2
        assert len(trace.events(node=0)) == 2
        assert len(trace.events(kind="a", node=0)) == 1

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1.0, 0, "x")
        assert len(trace) == 0

    def test_details_are_copied(self):
        trace = TraceRecorder()
        payload = {"k": 1}
        trace.record(1.0, 0, "x", **payload)
        payload["k"] = 2
        assert trace.events()[0].details == {"k": 1}

    def test_clear_empties_recorder(self):
        trace = TraceRecorder()
        trace.record(1.0, 0, "x")
        trace.clear()
        assert len(trace) == 0

    def test_event_is_frozen_dataclass(self):
        event = TraceEvent(time=1.0, node=2, kind="k")
        assert event.time == 1.0 and event.node == 2 and event.kind == "k"
