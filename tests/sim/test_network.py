"""Unit tests for the FIFO reliable network."""

from dataclasses import dataclass

import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, UniformJitterLatency
from repro.sim.network import Network
from repro.sim.node import Node


@dataclass(frozen=True)
class Ping:
    payload: int


class Recorder(Node):
    """Node recording every delivered message with its arrival time."""

    def __init__(self, sim, network, node_id):
        super().__init__(sim, network, node_id)
        self.received = []

    def deliver(self, src, message):
        self.received.append((self.sim.now, src, message))


class TestDelivery:
    def test_message_arrives_after_latency(self, sim):
        net = Network(sim, ConstantLatency(gamma=2.0))
        a = Recorder(sim, net, 0)
        b = Recorder(sim, net, 1)
        net.send(a.node_id, b.node_id, Ping(1))
        sim.run()
        assert b.received == [(2.0, 0, Ping(1))]
        assert a.received == []

    def test_unknown_destination_raises(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        Recorder(sim, net, 0)
        with pytest.raises(KeyError):
            net.send(0, 99, Ping(0))

    def test_duplicate_node_id_rejected(self, sim):
        net = Network(sim, ConstantLatency())
        Recorder(sim, net, 0)
        with pytest.raises(ValueError):
            Recorder(sim, net, 0)

    def test_node_ids_sorted(self, sim):
        net = Network(sim, ConstantLatency())
        for node_id in (3, 1, 2):
            Recorder(sim, net, node_id)
        assert net.node_ids == [1, 2, 3]

    def test_send_returns_delivery_time(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.5))
        Recorder(sim, net, 0)
        Recorder(sim, net, 1)
        assert net.send(0, 1, Ping(0)) == pytest.approx(1.5)


class ClampedConstantLatency(ConstantLatency):
    """Constant latency that opts out of FIFO-clamp elision.

    The network skips its per-link clamp table for ``fifo_safe`` models;
    the clamp-maintenance tests use this subclass to keep deterministic
    delivery times while still routing through the general send path.
    """

    fifo_safe = False


class TestFifoOrdering:
    def test_fifo_under_constant_latency(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        a = Recorder(sim, net, 0)
        b = Recorder(sim, net, 1)
        for i in range(5):
            net.send(a.node_id, b.node_id, Ping(i))
        sim.run()
        assert [m.payload for _, _, m in b.received] == list(range(5))

    def test_fifo_enforced_under_jitter(self, sim):
        net = Network(sim, UniformJitterLatency(gamma=1.0, jitter=0.9, seed=5))
        a = Recorder(sim, net, 0)
        b = Recorder(sim, net, 1)
        for i in range(50):
            net.send(a.node_id, b.node_id, Ping(i))
        sim.run()
        payloads = [m.payload for _, _, m in b.received]
        assert payloads == list(range(50))
        times = [t for t, _, _ in b.received]
        assert times == sorted(times)

    def test_scheduled_delivery_never_decreases_per_link(self, sim):
        net = Network(sim, UniformJitterLatency(gamma=1.0, jitter=0.9, seed=11))
        a = Recorder(sim, net, 0)
        b = Recorder(sim, net, 1)
        deliveries = [net.send(a.node_id, b.node_id, Ping(i)) for i in range(100)]
        assert deliveries == sorted(deliveries)

    def test_stale_clamp_entries_are_pruned(self, sim, monkeypatch):
        monkeypatch.setattr("repro.sim.network._LAST_DELIVERY_COMPACT_THRESHOLD", 2)
        # Constant latency is FIFO-safe and skips the clamp entirely; a
        # deterministic but not-fifo_safe model exercises the clamp table.
        net = Network(sim, ClampedConstantLatency(gamma=1.0))
        for node_id in (0, 1, 2):
            Recorder(sim, net, node_id)
        net.send(0, 1, Ping(1))
        sim.run()
        # The (0, 1) entry's delivery is now in the past; the next send
        # crosses the (patched) size threshold and compacts it away.
        net.send(0, 2, Ping(2))
        assert (0, 1) not in net._last_delivery
        assert (0, 2) in net._last_delivery
        sim.run()

    def test_ineffective_compaction_backs_off(self, sim, monkeypatch):
        monkeypatch.setattr("repro.sim.network._LAST_DELIVERY_COMPACT_THRESHOLD", 2)
        net = Network(sim, ClampedConstantLatency(gamma=5.0))
        for node_id in (0, 1, 2):
            Recorder(sim, net, node_id)
        # All deliveries are far in the future, so the sweep removes
        # nothing; the threshold must back off past the live-entry count
        # instead of re-running an O(n) rebuild on every send.
        net.send(0, 1, Ping(1))
        net.send(0, 2, Ping(2))
        net.send(1, 2, Ping(3))
        assert len(net._last_delivery) == 3
        # The second send swept 2 live entries and removed none, so the
        # threshold doubled past them (2 * 2) instead of staying at 2.
        assert net._compact_at == 4
        sim.run()

    def test_pruning_preserves_fifo_under_jitter(self, sim, monkeypatch):
        monkeypatch.setattr("repro.sim.network._LAST_DELIVERY_COMPACT_THRESHOLD", 1)
        net = Network(sim, UniformJitterLatency(gamma=1.0, jitter=0.9, seed=7))
        a = Recorder(sim, net, 0)
        b = Recorder(sim, net, 1)

        def send_next(i):
            if i < 30:
                net.send(a.node_id, b.node_id, Ping(i))
                sim.schedule(0.05, send_next, i + 1)

        send_next(0)
        sim.run()
        payloads = [m.payload for _, _, m in b.received]
        assert payloads == list(range(30))
        times = [t for t, _, _ in b.received]
        assert times == sorted(times)

    def test_independent_links_do_not_block_each_other(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        a = Recorder(sim, net, 0)
        b = Recorder(sim, net, 1)
        c = Recorder(sim, net, 2)
        net.send(a.node_id, b.node_id, Ping(1))
        net.send(c.node_id, b.node_id, Ping(2))
        sim.run()
        assert len(b.received) == 2


class TestStats:
    def test_total_and_per_type_counters(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        Recorder(sim, net, 0)
        Recorder(sim, net, 1)
        net.send(0, 1, Ping(1))
        net.send(1, 0, Ping(2))
        net.send(0, 1, "hello")
        sim.run()
        assert net.stats.total == 3
        assert net.stats.by_type["Ping"] == 2
        assert net.stats.by_type["str"] == 1
        assert net.stats.by_sender[0] == 2

    def test_snapshot_is_plain_dict(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        Recorder(sim, net, 0)
        Recorder(sim, net, 1)
        net.send(0, 1, Ping(1))
        snap = net.stats.snapshot()
        assert snap == {"Ping": 1}
        snap["Ping"] = 99
        assert net.stats.by_type["Ping"] == 1
