"""Unit tests for deterministic random streams."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(1)
        assert streams.stream("a", 0) is streams.stream("a", 0)

    def test_different_indices_are_independent_objects(self):
        streams = RandomStreams(1)
        assert streams.stream("a", 0) is not streams.stream("a", 1)

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).stream("workload", 3)
        b = RandomStreams(42).stream("workload", 3)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_master_seeds_differ(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent_of_consumption_order(self):
        s1 = RandomStreams(7)
        first = s1.stream("a").random()
        s2 = RandomStreams(7)
        # Consume from another stream before touching "a".
        s2.stream("b").random()
        assert s2.stream("a").random() == first

    def test_spawn_derives_child_seed(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("child")
        child_b = RandomStreams(5).spawn("child")
        assert child_a.master_seed == child_b.master_seed
        assert child_a.master_seed != parent.master_seed

    def test_index_none_and_zero_are_distinct_streams(self):
        streams = RandomStreams(3)
        assert streams.stream("x") is not streams.stream("x", 0)
