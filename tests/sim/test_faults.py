"""Network-level tests of the live fault layer and dropped accounting."""

from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.faults import (
    BernoulliLossModel,
    CompositeFaultModel,
    LinkPartitionModel,
    NodeCrashModel,
)
from repro.sim.latency import ConstantLatency
from repro.sim.network import MessageStats, Network
from repro.sim.node import Node


@dataclass(frozen=True)
class Ping:
    payload: int


@dataclass(frozen=True)
class Pong:
    payload: int


class Recorder(Node):
    def __init__(self, sim, network, node_id):
        super().__init__(sim, network, node_id)
        self.received = []

    def deliver(self, src, message):
        self.received.append((self.sim.now, src, message))


class ClampedConstantLatency(ConstantLatency):
    """Constant latency that opts back into the per-link FIFO clamp.

    ``ConstantLatency`` declares ``fifo_safe``, which routes sends through
    the clamp-free fault variants; tests that assert on the clamp table
    itself use this subclass to force the fully general send path.
    """

    fifo_safe = False


def make_net(sim, faults, nodes=3, gamma=1.0, latency_cls=ConstantLatency):
    net = Network(sim, latency_cls(gamma=gamma), faults=faults)
    return net, [Recorder(sim, net, i) for i in range(nodes)]


class TestNoFaultLayer:
    def test_default_network_has_no_fault_layer(self, sim):
        net = Network(sim, ConstantLatency())
        assert net.faults is None
        assert net.stats.dropped == 0


class TestBernoulliLoss:
    def test_all_loss_drops_everything(self, sim):
        net, nodes = make_net(sim, BernoulliLossModel(p=1.0))
        for i in range(5):
            net.send(0, 1, Ping(i))
        sim.run()
        assert nodes[1].received == []
        assert net.stats.total == 5
        assert net.stats.dropped == 5
        assert net.stats.dropped_by_type == {"Ping": 5}

    def test_no_loss_drops_nothing(self, sim):
        net, nodes = make_net(sim, BernoulliLossModel(p=0.0))
        for i in range(5):
            net.send(0, 1, Ping(i))
        sim.run()
        assert len(nodes[1].received) == 5
        assert net.stats.dropped == 0

    def test_kinds_filter_spares_other_types(self, sim):
        net, nodes = make_net(sim, BernoulliLossModel(p=1.0, kinds=("Ping",)))
        net.send(0, 1, Ping(1))
        net.send(0, 1, Pong(2))
        sim.run()
        assert [m for _, _, m in nodes[1].received] == [Pong(2)]
        assert net.stats.dropped == 1
        assert net.stats.dropped_by_type == {"Ping": 1}

    def test_dropped_messages_do_not_advance_fifo_clamp(self, sim):
        """A dropped message must not delay later ones on the same link."""
        net, nodes = make_net(
            sim,
            BernoulliLossModel(p=1.0, kinds=("Ping",)),
            latency_cls=ClampedConstantLatency,
        )
        net.send(0, 1, Ping(1))  # dropped
        net.send(0, 1, Pong(2))
        sim.run()
        assert nodes[1].received == [(1.0, 0, Pong(2))]
        assert net._last_delivery == {(0, 1): 1.0}


class TestLinkPartition:
    def test_window_checked_at_delivery_time(self, sim):
        """gamma=1: a message sent at 1.5 arrives at 2.5, inside [2, 4)."""
        net, nodes = make_net(sim, LinkPartitionModel(pairs=((0, 1),), start=2.0, end=4.0))
        sim.schedule(0.0, net.send, 0, 1, Ping(0))  # arrives 1.0: delivered
        sim.schedule(1.5, net.send, 0, 1, Ping(1))  # arrives 2.5: dropped
        sim.schedule(2.5, net.send, 1, 0, Ping(2))  # reverse dir, 3.5: dropped
        sim.schedule(3.5, net.send, 0, 1, Ping(3))  # arrives 4.5: healed
        sim.schedule(2.5, net.send, 0, 2, Ping(4))  # other link: delivered
        sim.run()
        assert [m.payload for _, _, m in nodes[1].received] == [0, 3]
        assert [m.payload for _, _, m in nodes[0].received] == []
        assert [m.payload for _, _, m in nodes[2].received] == [4]
        assert net.stats.dropped == 2


class TestNodeCrash:
    def test_crashed_node_neither_sends_nor_receives(self, sim):
        net, nodes = make_net(sim, NodeCrashModel(node=1, at=2.0, recover_at=5.0))
        sim.schedule(0.5, net.send, 1, 0, Ping(0))  # before crash: delivered
        sim.schedule(1.5, net.send, 0, 1, Ping(1))  # arrives 2.5, crashed: dropped
        sim.schedule(3.0, net.send, 1, 0, Ping(2))  # crashed sender: dropped
        sim.schedule(5.0, net.send, 0, 1, Ping(3))  # arrives 6.0, recovered
        sim.run()
        assert [m.payload for _, _, m in nodes[0].received] == [0]
        assert [m.payload for _, _, m in nodes[1].received] == [3]
        assert net.stats.dropped == 2

    def test_message_in_flight_at_crash_is_lost(self, sim):
        """Sent before the crash, arriving during it: lost in flight."""
        net, nodes = make_net(sim, NodeCrashModel(node=1, at=0.5, recover_at=9.0))
        net.send(0, 1, Ping(0))  # sent at 0 (node up), arrives at 1.0 while down
        sim.run()
        assert nodes[1].received == []
        assert net.stats.dropped == 1


class TestComposite:
    def test_any_child_can_drop(self, sim):
        faults = CompositeFaultModel(
            [
                NodeCrashModel(node=2, at=0.0),
                BernoulliLossModel(p=1.0, kinds=("Pong",)),
            ]
        )
        net, nodes = make_net(sim, faults)
        net.send(0, 1, Ping(0))  # unaffected
        net.send(0, 1, Pong(1))  # lossy kind
        net.send(0, 2, Ping(2))  # crashed receiver
        sim.run()
        assert [m.payload for _, _, m in nodes[1].received] == [0]
        assert nodes[2].received == []
        assert net.stats.dropped == 2


class TestMessageStatsAccounting:
    def test_record_dropped_tracks_type(self):
        stats = MessageStats()
        stats.record(0, Ping(1))
        stats.record_dropped(0, Ping(1))
        stats.record(1, Pong(2))
        assert stats.total == 2
        assert stats.dropped == 1
        assert stats.dropped_snapshot() == {"Ping": 1}
        assert stats.snapshot() == {"Ping": 1, "Pong": 1}

    def test_equality_includes_dropped_counters(self):
        a, b = MessageStats(), MessageStats()
        a.record(0, Ping(1))
        b.record(0, Ping(1))
        assert a == b
        a.record_dropped(0, Ping(1))
        assert a != b
        b.record_dropped(0, Ping(1))
        assert a == b

    def test_stats_are_hashable_consistently_with_eq(self):
        """Regression: __eq__ under __slots__ used to suppress __hash__."""
        a, b = MessageStats(), MessageStats()
        for stats in (a, b):
            stats.record(0, Ping(1))
            stats.record_dropped(0, Ping(1))
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
