"""Unit tests of the node lifecycle layer and the declarative detectors."""

import math

import pytest

from repro.sim.detectorspec import CrashDetector, HeartbeatDetector, NoDetector
from repro.sim.engine import Simulator
from repro.sim.faults import CompositeFaultModel, NodeCrashModel
from repro.sim.faultspec import BernoulliLoss, CompositeFaults, NodeCrash
from repro.sim.lifecycle import NodeLifecycle


class Probe:
    """Records the lifecycle callbacks it receives."""

    def __init__(self):
        self.events = []

    def on_crash(self, time):
        self.events.append(("crash", time))

    def on_recover(self, time):
        self.events.append(("recover", time))


class Listener:
    def __init__(self):
        self.events = []

    def node_crashed(self, node, time):
        self.events.append(("crash", node, time))

    def node_recovered(self, node, time):
        self.events.append(("recover", node, time))


class TestCrashWindows:
    def test_default_model_has_no_windows(self):
        from repro.sim.faults import FaultModel

        assert FaultModel().crash_windows() == ()

    def test_node_crash_window(self):
        model = NodeCrashModel(node=3, at=5.0, recover_at=9.0)
        assert model.crash_windows() == ((3, 5.0, 9.0),)

    def test_composite_windows_sorted_by_time(self):
        model = CompositeFaultModel(
            [
                NodeCrashModel(node=1, at=7.0),
                NodeCrashModel(node=2, at=3.0, recover_at=5.0),
            ]
        )
        assert model.crash_windows() == ((2, 3.0, 5.0), (1, 7.0, math.inf))

    def test_spec_round_trip(self):
        params_windows = (
            CompositeFaults((BernoulliLoss(p=0.1), NodeCrash(node=0, at=2.0)))
        )
        from repro.workload.params import WorkloadParams

        model = params_windows.build(WorkloadParams(num_processes=3, num_resources=4, phi=2))
        assert model.crash_windows() == ((0, 2.0, math.inf),)


class TestNodeLifecycle:
    def test_delivers_crash_and_recover_edges(self):
        sim = Simulator()
        probe = Probe()
        NodeLifecycle(sim, [(0, 2.0, 5.0)], {0: [probe]})
        sim.run()
        assert probe.events == [("crash", 2.0), ("recover", 5.0)]

    def test_permanent_crash_never_recovers(self):
        sim = Simulator()
        probe = Probe()
        NodeLifecycle(sim, [(0, 2.0, math.inf)], {0: [probe]})
        sim.run()
        assert probe.events == [("crash", 2.0)]

    def test_listeners_fire_before_participants(self):
        sim = Simulator()
        order = []
        listener = Listener()

        class OrderProbe(Probe):
            def on_crash(self, time):
                order.append("participant")

            def on_recover(self, time):
                order.append("participant")

        lifecycle = NodeLifecycle(sim, [(0, 1.0, 2.0)], {0: [OrderProbe()]})

        class OrderListener(Listener):
            def node_crashed(self, node, time):
                order.append("listener")

            def node_recovered(self, node, time):
                order.append("listener")

        lifecycle.add_listener(OrderListener())
        sim.run()
        assert order == ["listener", "participant", "listener", "participant"]

    def test_overlapping_windows_nest(self):
        sim = Simulator()
        probe = Probe()
        lifecycle = NodeLifecycle(
            sim, [(0, 1.0, 4.0), (0, 2.0, 6.0)], {0: [probe]}
        )
        sim.run()
        # One down edge at 1.0, one up edge at 6.0 — the inner window
        # produces no transitions.
        assert probe.events == [("crash", 1.0), ("recover", 6.0)]
        assert lifecycle.downtime_columns(10.0).as_dict() == {0: pytest.approx(5.0)}

    def test_is_down_tracks_the_window(self):
        sim = Simulator()
        lifecycle = NodeLifecycle(sim, [(1, 2.0, 4.0)], {})
        assert not lifecycle.is_down(1)
        sim.run(until=3.0)
        assert lifecycle.is_down(1)
        assert lifecycle.down_nodes() == [1]
        sim.run()
        assert not lifecycle.is_down(1)

    def test_downtime_closes_open_windows_at_end(self):
        sim = Simulator()
        lifecycle = NodeLifecycle(sim, [(0, 2.0, math.inf)], {})
        sim.run()
        cols = lifecycle.downtime_columns(12.0)
        assert cols.as_dict() == {0: pytest.approx(10.0)}
        assert list(cols.crashes) == [1]
        assert cols.total == pytest.approx(10.0)

    def test_unfired_windows_report_no_downtime(self):
        sim = Simulator()
        lifecycle = NodeLifecycle(sim, [(0, 50.0, 60.0)], {})
        # Nothing ran: the window never fired.
        assert len(lifecycle.downtime_columns(10.0)) == 0

    def test_next_reboot_reports_future_outage_ends(self):
        sim = Simulator()
        lifecycle = NodeLifecycle(sim, [(0, 2.0, 5.0), (0, 8.0, 9.0)], {})
        assert lifecycle.next_reboot(0) == 5.0
        sim.run(until=6.0)
        assert lifecycle.next_reboot(0) == 9.0
        sim.run()
        assert lifecycle.next_reboot(0) is None

    def test_next_reboot_none_for_permanent_outage(self):
        sim = Simulator()
        lifecycle = NodeLifecycle(sim, [(0, 2.0, math.inf)], {})
        assert lifecycle.next_reboot(0) is None
        assert lifecycle.next_reboot(7) is None  # no windows at all

    def test_next_reboot_ignores_recover_nested_in_wider_window(self):
        # The [3, 6] window hides inside [2, inf): its recover event at
        # t=6 lowers the nesting depth but never raises the node, so it
        # must not look like a reboot worth waiting for.
        sim = Simulator()
        lifecycle = NodeLifecycle(
            sim, [(0, 2.0, math.inf), (0, 3.0, 6.0)], {}
        )
        assert lifecycle.next_reboot(0) is None
        sim.run(until=10.0)
        assert lifecycle.is_down(0)
        assert lifecycle.next_reboot(0) is None


class TestDetectorSpecs:
    def test_no_detector_builds_nothing(self):
        assert NoDetector().build() is None

    def test_heartbeat_detection_delay(self):
        spec = HeartbeatDetector(interval=10.0, timeout=25.0)
        assert spec.detection_delay == 35.0
        built = spec.build()
        assert isinstance(built, CrashDetector)
        assert built.detection_delay == 35.0

    def test_heartbeat_validation(self):
        with pytest.raises(ValueError):
            HeartbeatDetector(interval=0.0)
        with pytest.raises(ValueError):
            HeartbeatDetector(timeout=-1.0)

    def test_specs_are_hashable_values(self):
        assert HeartbeatDetector() == HeartbeatDetector()
        assert hash(HeartbeatDetector(interval=5.0)) == hash(HeartbeatDetector(interval=5.0))
        assert "heartbeat" in HeartbeatDetector().describe()
