"""Value/thaw tests for the declarative fault specs."""

import math
import pickle

import pytest

from repro.experiments.scenario import canonical, content_hash
from repro.sim.faults import (
    BernoulliLossModel,
    CompositeFaultModel,
    LinkPartitionModel,
    NodeCrashModel,
)
from repro.sim.faultspec import (
    BernoulliLoss,
    CompositeFaults,
    FaultSpec,
    LinkPartition,
    NoFaults,
    NodeCrash,
)
from repro.workload.params import WorkloadParams

PARAMS = WorkloadParams(num_processes=6, num_resources=8, phi=2, duration=400.0, warmup=50.0)

ALL_SPECS = [
    NoFaults(),
    BernoulliLoss(p=0.1),
    BernoulliLoss(p=0.1, seed=3, kinds=("TokenEnvelope",)),
    LinkPartition(pairs=((0, 1), (2, 3)), start=10.0, end=20.0),
    NodeCrash(node=2, at=5.0),
    NodeCrash(node=2, at=5.0, recover_at=15.0),
    CompositeFaults((BernoulliLoss(p=0.2), NodeCrash(node=0, at=1.0))),
]


class TestSpecValues:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
    def test_specs_are_frozen_picklable_hashable_values(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)
        assert content_hash(clone) == content_hash(spec)
        assert isinstance(spec, FaultSpec)

    def test_equal_specs_share_a_content_hash(self):
        assert content_hash(BernoulliLoss(p=0.05)) == content_hash(BernoulliLoss(p=0.05))
        assert content_hash(BernoulliLoss(p=0.05)) != content_hash(BernoulliLoss(p=0.06))
        assert content_hash(BernoulliLoss(p=0.05)) != content_hash(
            BernoulliLoss(p=0.05, seed=1)
        )

    def test_partition_pairs_are_normalised(self):
        """Pair order and orientation must not affect equality or keys."""
        a = LinkPartition(pairs=((1, 0), (3, 2)))
        b = LinkPartition(pairs=((2, 3), (0, 1)))
        assert a == b
        assert a.pairs == ((0, 1), (2, 3))
        assert content_hash(a) == content_hash(b)

    def test_loss_kinds_are_normalised(self):
        a = BernoulliLoss(p=0.1, kinds=("B", "A", "A"))
        b = BernoulliLoss(p=0.1, kinds=("A", "B"))
        assert a == b and a.kinds == ("A", "B")

    def test_describe_is_human_readable(self):
        assert "no faults" in NoFaults().describe()
        assert "0.05" in BernoulliLoss(p=0.05).describe()
        assert "crash" in NodeCrash(node=1, at=3.0).describe()
        composite = CompositeFaults((BernoulliLoss(p=0.1), NodeCrash(node=1, at=3.0)))
        assert "+" in composite.describe()


class TestValidation:
    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_loss_probability_bounds(self, p):
        with pytest.raises(ValueError, match="probability"):
            BernoulliLoss(p=p)

    def test_loss_empty_kinds_rejected(self):
        with pytest.raises(ValueError, match="kinds"):
            BernoulliLoss(p=0.1, kinds=())

    def test_partition_needs_pairs(self):
        with pytest.raises(ValueError, match="pair"):
            LinkPartition(pairs=())

    def test_partition_self_pair_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            LinkPartition(pairs=((2, 2),))

    def test_partition_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="after"):
            LinkPartition(pairs=((0, 1),), start=10.0, end=10.0)

    def test_crash_recovery_must_follow_crash(self):
        with pytest.raises(ValueError, match="after"):
            NodeCrash(node=0, at=10.0, recover_at=5.0)

    def test_composite_rejects_non_specs(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            CompositeFaults((BernoulliLossModel(p=0.1),))

    def test_crash_outside_workload_rejected_at_build(self):
        """A typo'd node id must fail loudly, not inject nothing and
        report the protocol as crash-tolerant."""
        with pytest.raises(ValueError, match="node 99"):
            NodeCrash(node=99, at=10.0).build(PARAMS)

    def test_partition_outside_workload_rejected_at_build(self):
        with pytest.raises(ValueError, match=f"0..{PARAMS.num_processes - 1}"):
            LinkPartition(pairs=((0, PARAMS.num_processes),)).build(PARAMS)


class TestThaw:
    def test_no_faults_builds_nothing(self):
        assert NoFaults().build(PARAMS) is None

    def test_zero_probability_loss_builds_nothing(self):
        """p=0 keeps the network on the reliable fast path."""
        assert BernoulliLoss(p=0.0).build(PARAMS) is None

    def test_loss_thaws_with_spec_seed(self):
        model = BernoulliLoss(p=0.25, seed=9).build(PARAMS)
        assert isinstance(model, BernoulliLossModel)
        assert model.p == 0.25

    def test_loss_thaw_is_deterministic(self):
        """Equal specs observe identical drop sequences in any process."""
        spec = BernoulliLoss(p=0.3, seed=4)
        a, b = spec.build(PARAMS), spec.build(PARAMS)
        msg = object()
        seq_a = [a.drop_on_send(0.0, 0, 1, msg) for _ in range(200)]
        seq_b = [b.drop_on_send(0.0, 0, 1, msg) for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_partition_thaws_window(self):
        model = LinkPartition(pairs=((0, 1),), start=5.0, end=9.0).build(PARAMS)
        assert isinstance(model, LinkPartitionModel)
        msg = object()
        assert model.drop_on_delivery(5.0, 0, 1, msg)
        assert model.drop_on_delivery(8.9, 1, 0, msg)  # bidirectional
        assert not model.drop_on_delivery(9.0, 0, 1, msg)
        assert not model.drop_on_delivery(6.0, 0, 2, msg)

    def test_unhealed_partition_lasts_forever(self):
        model = LinkPartition(pairs=((0, 1),), start=1.0).build(PARAMS)
        assert model.end == math.inf
        assert model.drop_on_delivery(1e12, 0, 1, object())

    def test_crash_thaws_window(self):
        model = NodeCrash(node=2, at=3.0, recover_at=7.0).build(PARAMS)
        assert isinstance(model, NodeCrashModel)
        msg = object()
        assert model.drop_on_send(4.0, 2, 0, msg)
        assert model.drop_on_delivery(4.0, 0, 2, msg)
        assert not model.drop_on_send(4.0, 0, 1, msg)
        assert not model.drop_on_send(7.0, 2, 0, msg)  # recovered

    def test_unrecovered_crash_lasts_forever(self):
        model = NodeCrash(node=1, at=2.0).build(PARAMS)
        assert model.crashed(1e12)

    def test_composite_elides_ineffective_children(self):
        assert CompositeFaults(()).build(PARAMS) is None
        assert CompositeFaults((NoFaults(), BernoulliLoss(p=0.0))).build(PARAMS) is None
        single = CompositeFaults((NoFaults(), NodeCrash(node=0, at=1.0))).build(PARAMS)
        assert isinstance(single, NodeCrashModel)
        both = CompositeFaults(
            (BernoulliLoss(p=0.1), NodeCrash(node=0, at=1.0))
        ).build(PARAMS)
        assert isinstance(both, CompositeFaultModel)
        assert len(both.models) == 2

    def test_normalized_collapses_to_canonical_form(self):
        """Specs producing the same run must normalise to the same value."""
        assert BernoulliLoss(p=0.0).normalized(PARAMS) == NoFaults()
        assert BernoulliLoss(p=0.1).normalized(PARAMS) == BernoulliLoss(p=0.1)
        assert CompositeFaults(()).normalized(PARAMS) == NoFaults()
        assert CompositeFaults((BernoulliLoss(p=0.1),)).normalized(PARAMS) == BernoulliLoss(
            p=0.1
        )
        nested = CompositeFaults(
            (
                CompositeFaults((BernoulliLoss(p=0.1), NodeCrash(node=0, at=1.0))),
                BernoulliLoss(p=0.0),
            )
        )
        assert nested.normalized(PARAMS) == CompositeFaults(
            (BernoulliLoss(p=0.1), NodeCrash(node=0, at=1.0))
        )

    def test_composite_ors_children(self):
        model = CompositeFaults(
            (NodeCrash(node=0, at=0.0), NodeCrash(node=1, at=0.0))
        ).build(PARAMS)
        msg = object()
        assert model.drop_on_send(1.0, 0, 2, msg)
        assert model.drop_on_send(1.0, 1, 2, msg)
        assert not model.drop_on_send(1.0, 2, 3, msg)


class TestCanonicalForm:
    def test_specs_canonicalise_by_content(self):
        spec = LinkPartition(pairs=((0, 1),), start=2.0, end=4.0)
        form = canonical(spec)
        assert form[0] == "LinkPartition"
        # Integral floats canonicalise to ints, so 2.0 == 2 keys equally.
        assert canonical(LinkPartition(pairs=((0, 1),), start=2, end=4)) == form

    def test_content_hash_stable_across_processes(self):
        """Fault-spec hashes must not depend on PYTHONHASHSEED — they key
        the persistent RunCache across interpreter invocations."""
        import subprocess
        import sys

        spec = CompositeFaults(
            (
                BernoulliLoss(p=0.1, seed=3, kinds=("TokenEnvelope", "NTToken")),
                LinkPartition(pairs=((4, 2), (0, 1)), start=10.0, end=20.0),
                NodeCrash(node=2, at=5.0, recover_at=15.0),
            )
        )
        code = (
            "from repro.sim.faultspec import *\n"
            "from repro.experiments.scenario import content_hash\n"
            "spec = CompositeFaults((\n"
            "    BernoulliLoss(p=0.1, seed=3, kinds=('TokenEnvelope', 'NTToken')),\n"
            "    LinkPartition(pairs=((4, 2), (0, 1)), start=10.0, end=20.0),\n"
            "    NodeCrash(node=2, at=5.0, recover_at=15.0),\n"
            "))\n"
            "print(content_hash(spec))\n"
        )
        hashes = set()
        for hashseed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed},
                cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
            )
            assert proc.returncode == 0, proc.stderr
            hashes.add(proc.stdout.strip())
        hashes.add(content_hash(spec))
        assert len(hashes) == 1
