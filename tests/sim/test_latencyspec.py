"""Thaw-equivalence tests for the declarative latency specs."""

import pickle

import pytest

from repro.sim.latency import ConstantLatency, HierarchicalLatency, UniformJitterLatency
from repro.sim.latencyspec import (
    ConstantLatencySpec,
    HierarchicalLatencySpec,
    LatencySpec,
    UniformJitterLatencySpec,
)
from repro.workload.params import WorkloadParams

PARAMS = WorkloadParams(num_processes=6, num_resources=8, phi=2, gamma=0.8,
                        duration=400.0, warmup=50.0)

PAIRS = [(s, d) for s in range(4) for d in range(4)]


class TestConstantSpec:
    def test_defaults_to_params_gamma(self):
        model = ConstantLatencySpec().build(PARAMS)
        assert isinstance(model, ConstantLatency)
        assert model.latency(0, 1) == pytest.approx(PARAMS.gamma)
        assert model.latency(2, 2) == 0.0

    def test_thaw_equivalent_to_direct_construction(self):
        spec = ConstantLatencySpec(gamma=1.5, local=0.1)
        direct = ConstantLatency(gamma=1.5, local=0.1)
        thawed = spec.build(PARAMS)
        assert [thawed.latency(s, d) for s, d in PAIRS] == [
            direct.latency(s, d) for s, d in PAIRS
        ]


class TestUniformJitterSpec:
    def test_thaw_equivalent_to_direct_construction(self):
        """Same seed => the thawed model draws the exact same latencies."""
        spec = UniformJitterLatencySpec(gamma=1.0, jitter=0.5, seed=42)
        direct = UniformJitterLatency(gamma=1.0, jitter=0.5, seed=42)
        thawed = spec.build(PARAMS)
        assert [thawed.latency(0, 1) for _ in range(50)] == [
            direct.latency(0, 1) for _ in range(50)
        ]

    def test_two_thaws_are_independent_equal_streams(self):
        spec = UniformJitterLatencySpec(gamma=1.0, jitter=0.5, seed=7)
        a, b = spec.build(PARAMS), spec.build(PARAMS)
        assert [a.latency(0, 1) for _ in range(20)] == [b.latency(0, 1) for _ in range(20)]

    def test_defaults_to_params_gamma(self):
        model = UniformJitterLatencySpec(jitter=0.0).build(PARAMS)
        assert model.latency(0, 1) == pytest.approx(PARAMS.gamma)


class TestHierarchicalSpec:
    def test_round_robin_equivalent_to_direct_construction(self):
        spec = HierarchicalLatencySpec(gamma_local=0.2, gamma_remote=9.0, num_clusters=2)
        direct = HierarchicalLatency(
            gamma_local=0.2, gamma_remote=9.0,
            num_nodes=PARAMS.num_processes, num_clusters=2,
        )
        thawed = spec.build(PARAMS)
        assert [thawed.latency(s, d) for s, d in PAIRS] == [
            direct.latency(s, d) for s, d in PAIRS
        ]

    def test_explicit_cluster_map(self):
        spec = HierarchicalLatencySpec(gamma_remote=5.0, cluster_of=(0, 0, 1, 1, 1, 0))
        model = spec.build(PARAMS)
        assert model.latency(0, 1) == pytest.approx(PARAMS.gamma)
        assert model.latency(0, 2) == pytest.approx(5.0)

    def test_cluster_map_coerced_to_tuple(self):
        spec = HierarchicalLatencySpec(cluster_of=[0, 1, 0, 1, 0, 1])
        assert spec.cluster_of == (0, 1, 0, 1, 0, 1)
        assert hash(spec)  # stays hashable after coercion

    def test_requires_clusters_or_map(self):
        with pytest.raises(ValueError):
            HierarchicalLatencySpec(num_clusters=None)


class TestSpecValueSemantics:
    @pytest.mark.parametrize(
        "spec",
        [
            ConstantLatencySpec(gamma=1.0),
            UniformJitterLatencySpec(jitter=0.3, seed=5),
            HierarchicalLatencySpec(num_clusters=3),
        ],
    )
    def test_specs_pickle_to_equal_values(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec and hash(clone) == hash(spec)
        assert isinstance(clone, LatencySpec)
