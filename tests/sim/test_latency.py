"""Unit tests for the latency models."""

import pytest

from repro.sim.latency import ConstantLatency, HierarchicalLatency, UniformJitterLatency


class TestConstantLatency:
    def test_default_matches_paper_gamma(self):
        model = ConstantLatency()
        assert model.latency(0, 1) == pytest.approx(0.6)

    def test_same_node_is_local(self):
        model = ConstantLatency(gamma=2.0, local=0.1)
        assert model.latency(3, 3) == pytest.approx(0.1)
        assert model.latency(3, 4) == pytest.approx(2.0)

    def test_negative_gamma_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(gamma=-1.0)

    def test_describe_mentions_gamma(self):
        assert "0.6" in ConstantLatency(0.6).describe()


class TestUniformJitterLatency:
    def test_values_within_bounds(self):
        model = UniformJitterLatency(gamma=1.0, jitter=0.25, seed=3)
        for _ in range(200):
            value = model.latency(0, 1)
            assert 0.75 <= value <= 1.25

    def test_deterministic_for_seed(self):
        a = UniformJitterLatency(gamma=1.0, jitter=0.5, seed=9)
        b = UniformJitterLatency(gamma=1.0, jitter=0.5, seed=9)
        assert [a.latency(0, 1) for _ in range(10)] == [b.latency(0, 1) for _ in range(10)]

    def test_self_message_is_free(self):
        model = UniformJitterLatency(gamma=1.0, jitter=0.5, seed=1)
        assert model.latency(2, 2) == 0.0

    def test_invalid_jitter_rejected(self):
        with pytest.raises(ValueError):
            UniformJitterLatency(gamma=1.0, jitter=1.5)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            UniformJitterLatency(gamma=0.0)


class TestHierarchicalLatency:
    def test_intra_vs_inter_cluster(self):
        model = HierarchicalLatency(
            gamma_local=0.5, gamma_remote=20.0, cluster_of=[0, 0, 1, 1]
        )
        assert model.latency(0, 1) == pytest.approx(0.5)
        assert model.latency(0, 2) == pytest.approx(20.0)
        assert model.latency(2, 3) == pytest.approx(0.5)

    def test_round_robin_assignment(self):
        model = HierarchicalLatency(num_nodes=6, num_clusters=2)
        # nodes 0,2,4 -> cluster 0; nodes 1,3,5 -> cluster 1
        assert model.latency(0, 2) == model.gamma_local
        assert model.latency(0, 1) == model.gamma_remote

    def test_self_message_is_free(self):
        model = HierarchicalLatency(num_nodes=4, num_clusters=2)
        assert model.latency(1, 1) == 0.0

    def test_requires_cluster_information(self):
        with pytest.raises(ValueError):
            HierarchicalLatency()

    def test_describe_mentions_clusters(self):
        model = HierarchicalLatency(num_nodes=4, num_clusters=2)
        assert "clusters=2" in model.describe()
