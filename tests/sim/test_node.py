"""Unit tests for the node base class (dispatch, timers)."""

from dataclasses import dataclass

import pytest

from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.node import Node


@dataclass(frozen=True)
class Hello:
    text: str


@dataclass(frozen=True)
class Unknown:
    pass


class Greeter(Node):
    def __init__(self, sim, network, node_id):
        super().__init__(sim, network, node_id)
        self.greetings = []
        self.timer_fired = 0

    def on_Hello(self, src, msg):
        self.greetings.append((src, msg.text))


class TestDispatch:
    def test_handler_invoked_by_message_class_name(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        a = Greeter(sim, net, 0)
        b = Greeter(sim, net, 1)
        a.send(1, Hello("hi"))
        sim.run()
        assert b.greetings == [(0, "hi")]

    def test_missing_handler_raises(self, sim):
        net = Network(sim, ConstantLatency(gamma=1.0))
        a = Greeter(sim, net, 0)
        Greeter(sim, net, 1)
        a.send(1, Unknown())
        with pytest.raises(NotImplementedError, match="Unknown"):
            sim.run()

    def test_registration_happens_on_construction(self, sim):
        net = Network(sim, ConstantLatency())
        node = Greeter(sim, net, 7)
        assert net.node(7) is node


class TestTimers:
    def test_set_timer_fires_after_delay(self, sim, network):
        node = Greeter(sim, network, 0)

        def fire():
            node.timer_fired += 1

        node.set_timer(2.0, fire)
        sim.run(until=1.0)
        assert node.timer_fired == 0
        sim.run()
        assert node.timer_fired == 1

    def test_timer_can_be_cancelled(self, sim, network):
        node = Greeter(sim, network, 0)
        event = node.set_timer(1.0, lambda: pytest.fail("should not fire"))
        event.cancel()
        sim.run()
