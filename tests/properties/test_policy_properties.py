"""Property-based tests of the scheduling functions ``A`` (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import available_policies, get_policy

M = 16

vectors = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=M, max_size=M
)
required_sets = st.sets(st.integers(min_value=0, max_value=M - 1), min_size=1, max_size=M)


class TestPolicyProperties:
    @given(vectors, required_sets, st.sampled_from(sorted(available_policies())))
    @settings(max_examples=150)
    def test_marks_are_finite_and_non_negative(self, vector, required, name):
        mark = get_policy(name).mark(vector, required)
        assert mark >= 0.0
        assert mark == mark  # not NaN

    @given(vectors, required_sets, st.sampled_from(sorted(available_policies())))
    @settings(max_examples=150)
    def test_marks_monotone_under_counter_growth(self, vector, required, name):
        """For a *complete* vector (every required counter obtained, hence
        >= 1, as in any real request) increasing the counters can never
        decrease the mark — the property underlying the starvation-freedom
        argument (Hypothesis 6)."""
        policy = get_policy(name)
        complete = [max(v, 1) if r in required else v for r, v in enumerate(vector)]
        before = policy.mark(complete, required)
        bumped = [v + 1 if r in required else v for r, v in enumerate(complete)]
        after = policy.mark(bumped, required)
        assert after >= before

    @given(vectors, required_sets)
    def test_mean_policy_bounded_by_min_and_max(self, vector, required):
        policy = get_policy("mean_nonzero")
        values = [vector[r] for r in required if vector[r] > 0]
        mark = policy.mark(vector, required)
        if values:
            assert min(values) <= mark <= max(values)
        else:
            assert mark == 0.0

    @given(vectors, required_sets)
    def test_policies_ignore_non_required_entries(self, vector, required):
        """Entries outside the required set must not influence the mark."""
        for name in available_policies():
            policy = get_policy(name)
            base = policy.mark(vector, required)
            noisy = [v if r in required else v + 999 for r, v in enumerate(vector)]
            assert policy.mark(noisy, required) == base
