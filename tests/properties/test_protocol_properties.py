"""Property-based end-to-end checks: random workloads against the protocols.

Each generated scenario is replayed through the scripted harness, whose
metrics collector enforces mutual exclusion online; the test then asserts
liveness (every request completed) and token conservation.  Scenario sizes
are kept small so hypothesis can explore many shapes quickly.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CoreConfig

from tests.helpers import assert_all_completed, build_system, run_scripted

N_PROC = 4
N_RES = 5


@st.composite
def scenarios(draw):
    num_requests = draw(st.integers(min_value=1, max_value=10))
    requests = []
    counts = {p: 0 for p in range(N_PROC)}
    for _ in range(num_requests):
        process = draw(st.integers(min_value=0, max_value=N_PROC - 1))
        size = draw(st.integers(min_value=1, max_value=N_RES))
        resources = draw(
            st.sets(st.integers(min_value=0, max_value=N_RES - 1), min_size=size, max_size=size)
        )
        issue = draw(st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
        cs = draw(st.floats(min_value=0.5, max_value=6.0, allow_nan=False))
        requests.append((issue, process, frozenset(resources), cs))
        counts[process] += 1
    return requests


COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCoreAlgorithmProperties:
    @given(scenarios(), st.booleans())
    @COMMON_SETTINGS
    def test_safety_liveness_and_conservation(self, requests, enable_loan):
        config = CoreConfig(enable_loan=enable_loan)
        system = build_system("core", num_processes=N_PROC, num_resources=N_RES,
                              gamma=0.5, core_config=config)
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)
        owners = [r for node in system.allocators for r in node.owned_tokens]
        assert sorted(owners) == list(range(N_RES))
        assert all(node.is_idle for node in system.allocators)


class TestBaselineProperties:
    @given(scenarios())
    @COMMON_SETTINGS
    def test_bouabdallah_safety_and_liveness(self, requests):
        system = build_system("bouabdallah", num_processes=N_PROC, num_resources=N_RES,
                              gamma=0.5)
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)

    @given(scenarios())
    @COMMON_SETTINGS
    def test_incremental_safety_and_liveness(self, requests):
        system = build_system("incremental", num_processes=N_PROC, num_resources=N_RES,
                              gamma=0.5)
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)

    @given(scenarios())
    @COMMON_SETTINGS
    def test_shared_memory_safety_and_liveness(self, requests):
        system = build_system("shared_memory", num_processes=N_PROC, num_resources=N_RES)
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)
