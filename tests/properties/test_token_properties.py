"""Property-based tests of the token queue invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ReqRes
from repro.core.ordering import request_key
from repro.core.token import ResourceToken

entry_strategy = st.tuples(
    st.integers(min_value=0, max_value=31),          # site
    st.integers(min_value=1, max_value=50),          # request id
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),  # mark
)


def to_req(entry):
    site, req_id, mark = entry
    return ReqRes(resource=0, sinit=site, req_id=req_id, mark=mark)


class TestQueueInvariants:
    @given(st.lists(entry_strategy, max_size=40))
    @settings(max_examples=150)
    def test_queue_is_always_sorted_by_priority(self, entries):
        token = ResourceToken(resource=0)
        for entry in entries:
            token.enqueue(to_req(entry))
        keys = [request_key(r) for r in token.wqueue]
        assert keys == sorted(keys)

    @given(st.lists(entry_strategy, min_size=1, max_size=40))
    def test_dequeue_returns_global_minimum(self, entries):
        token = ResourceToken(resource=0)
        reqs = [to_req(e) for e in entries]
        for req in reqs:
            token.enqueue(req)
        head = token.dequeue()
        assert request_key(head) == min(request_key(r) for r in reqs)

    @given(st.lists(entry_strategy, max_size=30), st.integers(min_value=0, max_value=31))
    def test_remove_requests_of_removes_exactly_that_site(self, entries, victim):
        token = ResourceToken(resource=0)
        for entry in entries:
            token.enqueue(to_req(entry))
        before_other = [r for r in token.wqueue if r.sinit != victim]
        token.remove_requests_of(victim)
        assert all(r.sinit != victim for r in token.wqueue)
        assert token.wqueue == before_other

    @given(st.lists(entry_strategy, max_size=30))
    def test_copy_is_independent(self, entries):
        token = ResourceToken(resource=0)
        for entry in entries:
            token.enqueue(to_req(entry))
        dup = token.copy()
        dup.wqueue.clear()
        dup.counter += 10
        assert len(token.wqueue) == len(entries)
        assert token.counter == 1

    @given(st.integers(min_value=1, max_value=200))
    def test_counter_handout_is_strictly_increasing(self, n):
        token = ResourceToken(resource=0)
        values = [token.take_counter() for _ in range(n)]
        assert values == list(range(1, n + 1))


class TestObsolescenceProperties:
    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    )
    def test_obsolescence_is_monotone_in_last_cs(self, site, last_cs, req_id):
        token = ResourceToken(resource=0, last_cs={site: last_cs})
        if token.is_obsolete_cs(site, req_id):
            # any later completion keeps it obsolete
            token.last_cs[site] = last_cs + 5
            assert token.is_obsolete_cs(site, req_id)

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=1, max_value=50),
    )
    def test_fresh_request_never_obsolete_on_new_token(self, site, req_id):
        token = ResourceToken(resource=0)
        assert not token.is_obsolete_cs(site, req_id)
        assert not token.is_obsolete_cnt(site, req_id)
