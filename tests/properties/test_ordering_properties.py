"""Property-based tests of the total order ``/`` (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ReqRes
from repro.core.ordering import precedes, request_key

marks = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
sites = st.integers(min_value=0, max_value=63)


def reqs(mark, site):
    return ReqRes(resource=0, sinit=site, req_id=1, mark=mark)


request_strategy = st.builds(reqs, marks, sites)


class TestTotalOrderProperties:
    @given(request_strategy)
    def test_irreflexive(self, a):
        assert not precedes(a, a)

    @given(request_strategy, request_strategy)
    def test_asymmetric(self, a, b):
        if precedes(a, b):
            assert not precedes(b, a)

    @given(request_strategy, request_strategy, request_strategy)
    @settings(max_examples=200)
    def test_transitive(self, a, b, c):
        if precedes(a, b) and precedes(b, c):
            assert precedes(a, c)

    @given(request_strategy, request_strategy)
    def test_total_on_distinct_sites(self, a, b):
        if a.sinit != b.sinit:
            assert precedes(a, b) or precedes(b, a)

    @given(request_strategy, request_strategy)
    def test_consistent_with_key_ordering(self, a, b):
        assert precedes(a, b) == (request_key(a) < request_key(b))

    @given(st.lists(request_strategy, min_size=2, max_size=20))
    def test_sorting_by_key_is_a_linearisation(self, requests):
        ordered = sorted(requests, key=request_key)
        for earlier, later in zip(ordered, ordered[1:]):
            # later never strictly precedes earlier
            assert not precedes(later, earlier) or request_key(later) == request_key(earlier)
