"""Shared helpers for the test suite.

Provides small harnesses to build a simulated system for any algorithm and
to drive scripted request scenarios, so individual tests can focus on the
behaviour they verify instead of the plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.allocator import MultiResourceAllocator
from repro.baselines.bouabdallah_laforest import BLAllocatorNode
from repro.baselines.central_scheduler import CentralScheduler, CentralSchedulerClientAllocator
from repro.baselines.incremental import IncrementalAllocatorNode
from repro.core.config import CoreConfig
from repro.core.node import CoreAllocatorNode
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import Network
from repro.sim.trace import TraceRecorder


@dataclass
class System:
    """A fully wired mini-system for tests."""

    sim: Simulator
    network: Optional[Network]
    allocators: List[MultiResourceAllocator]
    num_resources: int
    trace: TraceRecorder = field(default_factory=lambda: TraceRecorder(enabled=True))

    def run(self, until: Optional[float] = None, max_events: int = 500_000) -> None:
        """Run the simulation to completion (or until a time bound)."""
        self.sim.run(until=until, max_events=max_events)


def build_system(
    algorithm: str,
    num_processes: int,
    num_resources: int,
    gamma: float = 0.5,
    latency: Optional[LatencyModel] = None,
    core_config: Optional[CoreConfig] = None,
    resend_interval: Optional[float] = None,
) -> System:
    """Build a system of ``num_processes`` allocators for ``algorithm``.

    ``algorithm`` is one of ``core``, ``core_loan``, ``incremental``,
    ``bouabdallah``, ``shared_memory`` (the short names used by unit tests;
    the experiment registry uses the paper-facing names).
    """
    sim = Simulator()
    trace = TraceRecorder(enabled=True)
    if algorithm == "shared_memory":
        scheduler = CentralScheduler(sim, num_resources)
        allocators: List[MultiResourceAllocator] = [
            CentralSchedulerClientAllocator(scheduler, p) for p in range(num_processes)
        ]
        return System(sim=sim, network=None, allocators=allocators,
                      num_resources=num_resources, trace=trace)

    network = Network(sim, latency or ConstantLatency(gamma=gamma))
    if algorithm == "incremental":
        allocators = [
            IncrementalAllocatorNode(
                sim, network, p, num_resources=num_resources,
                num_processes=num_processes, initial_holder=0, trace=trace,
            )
            for p in range(num_processes)
        ]
    elif algorithm == "bouabdallah":
        allocators = [
            BLAllocatorNode(sim, network, p, num_resources=num_resources, trace=trace)
            for p in range(num_processes)
        ]
    elif algorithm in ("core", "core_loan"):
        config = core_config
        if config is None:
            config = CoreConfig(enable_loan=(algorithm == "core_loan"))
        allocators = [
            CoreAllocatorNode(
                sim, network, p, num_resources=num_resources, config=config,
                trace=trace, resend_interval=resend_interval,
            )
            for p in range(num_processes)
        ]
    else:
        raise KeyError(f"unknown test algorithm {algorithm!r}")
    return System(sim=sim, network=network, allocators=allocators,
                  num_resources=num_resources, trace=trace)


#: A scripted request: (issue_time, process, resources, cs_duration).
ScriptedRequest = Tuple[float, int, FrozenSet[int], float]


def run_scripted(
    system: System,
    requests: Sequence[ScriptedRequest],
    warmup: float = 0.0,
    max_events: int = 500_000,
) -> MetricsCollector:
    """Drive a scripted scenario and return the populated metrics collector.

    Each process issues its scripted requests in order; a process's next
    request is issued at its scripted time or right after its previous one
    completes, whichever is later.  The collector performs the online
    safety check, so any mutual-exclusion violation fails the test.
    """
    metrics = MetricsCollector(system.num_resources, warmup=warmup)
    per_process: Dict[int, List[Tuple[float, FrozenSet[int], float]]] = {}
    for issue_time, process, resources, cs in sorted(requests, key=lambda r: (r[1], r[0])):
        per_process.setdefault(process, []).append((issue_time, frozenset(resources), cs))

    class _Driver:
        def __init__(self, process: int, queue: List[Tuple[float, FrozenSet[int], float]]):
            self.process = process
            self.queue = list(queue)
            self.index = -1
            self.current: Optional[Tuple[float, FrozenSet[int], float]] = None

        def schedule_next(self) -> None:
            if not self.queue:
                return
            issue_time, resources, cs = self.queue.pop(0)
            self.index += 1
            self.current = (issue_time, resources, cs)
            delay = max(0.0, issue_time - system.sim.now)
            system.sim.schedule(delay, self.issue)

        def issue(self) -> None:
            assert self.current is not None
            _, resources, _ = self.current
            metrics.on_issue(system.sim.now, self.process, self.index, resources)
            system.allocators[self.process].acquire(resources, self.granted)

        def granted(self) -> None:
            assert self.current is not None
            _, _, cs = self.current
            metrics.on_grant(system.sim.now, self.process, self.index)
            system.sim.schedule(cs, self.done)

        def done(self) -> None:
            metrics.on_release(system.sim.now, self.process, self.index)
            system.allocators[self.process].release()
            self.current = None
            self.schedule_next()

    drivers = [_Driver(p, q) for p, q in per_process.items()]
    for driver in drivers:
        driver.schedule_next()
    system.run(max_events=max_events)
    return metrics


def overlap(interval_a: Tuple[float, float], interval_b: Tuple[float, float]) -> bool:
    """Whether two half-open time intervals overlap."""
    return interval_a[0] < interval_b[1] and interval_b[0] < interval_a[1]


def assert_all_completed(metrics: MetricsCollector) -> None:
    """Fail with a helpful message when any request never completed."""
    pending = [r for r in metrics.records if not r.completed]
    assert not pending, f"{len(pending)} requests never completed: {pending[:3]}"
