"""Tests of the open-loop workload driver."""

from repro.experiments.driver import OpenLoopClient
from repro.metrics.collector import MetricsCollector
from repro.workload.generator import RequestSpec

from tests.helpers import build_system


def arrivals(process, gaps, resources=frozenset({0}), cs_duration=2.0):
    """Scripted open-loop stream: think_time is the gap since the last arrival."""
    return [
        RequestSpec(
            process=process,
            index=i,
            resources=resources,
            cs_duration=cs_duration,
            think_time=gap,
        )
        for i, gap in enumerate(gaps)
    ]


def make_client(system, process, specs, metrics, stop=1_000.0, max_requests=None):
    return OpenLoopClient(
        sim=system.sim,
        process=process,
        allocator=system.allocators[process],
        requests=iter(specs),
        metrics=metrics,
        stop_issuing_at=stop,
        max_requests=max_requests,
    )


class TestOpenLoopClient:
    def test_replays_scripted_arrivals(self):
        system = build_system("core", num_processes=2, num_resources=4, gamma=0.5)
        metrics = MetricsCollector(num_resources=4)
        client = make_client(system, 1, arrivals(1, [1.0, 5.0, 5.0]), metrics)
        client.start()
        system.run()
        assert client.issued == 3
        assert client.completed == 3
        assert metrics.all_completed()
        assert client.stopped

    def test_arrivals_do_not_wait_for_completions(self):
        """The open loop: issue instants follow the gaps, however slow the CS."""
        system = build_system("core", num_processes=2, num_resources=4, gamma=0.5)
        metrics = MetricsCollector(num_resources=4)
        # 3 arrivals 1 ms apart, each needing a 50 ms critical section.
        client = make_client(system, 1, arrivals(1, [1.0, 1.0, 1.0], cs_duration=50.0), metrics)
        client.start()
        system.run()
        issues = [metrics.record_for(1, i).issue_time for i in range(3)]
        assert issues == [1.0, 2.0, 3.0]
        assert client.completed == 3

    def test_backlog_builds_under_overload(self):
        system = build_system("core", num_processes=2, num_resources=4, gamma=0.5)
        metrics = MetricsCollector(num_resources=4)
        client = make_client(system, 1, arrivals(1, [1.0] * 6, cs_duration=100.0), metrics)
        client.start()
        system.run()
        assert client.max_backlog >= 3
        assert client.backlog == 0  # fully drained by the end of the run
        assert metrics.all_completed()

    def test_waiting_time_includes_queueing(self):
        """A backlogged request waits from *arrival*, not from dispatch."""
        system = build_system("core", num_processes=2, num_resources=4, gamma=0.5)
        metrics = MetricsCollector(num_resources=4)
        client = make_client(system, 1, arrivals(1, [1.0, 1.0], cs_duration=50.0), metrics)
        client.start()
        system.run()
        first = metrics.record_for(1, 0).waiting_time
        second = metrics.record_for(1, 1).waiting_time
        assert second >= first + 49.0  # queued behind a 50 ms CS

    def test_max_requests_caps_admission(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=0.5)
        metrics = MetricsCollector(num_resources=2)
        client = make_client(system, 1, arrivals(1, [1.0] * 10), metrics, max_requests=4)
        client.start()
        system.run()
        assert client.issued == 4

    def test_stop_time_prevents_new_arrivals(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=0.5)
        metrics = MetricsCollector(num_resources=2)
        client = make_client(system, 1, arrivals(1, [8.0] * 10), metrics, stop=30.0)
        client.start()
        system.run()
        assert 0 < client.issued < 10
        assert metrics.all_completed()

    def test_exhausted_iterator_stops_client(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=0.5)
        metrics = MetricsCollector(num_resources=2)
        client = make_client(system, 1, [], metrics)
        client.start()
        system.run()
        assert client.stopped and client.issued == 0
