"""Tests of the declarative Scenario spec layer."""

import dataclasses
import pickle
import subprocess
import sys

import pytest

from repro.core.config import CoreConfigSpec
from repro.experiments.registry import BLConfigSpec
from repro.experiments.runner import run, run_experiment
from repro.experiments.scenario import Scenario
from repro.sim.faultspec import BernoulliLoss, NoFaults, NodeCrash
from repro.sim.latencyspec import ConstantLatencySpec, UniformJitterLatencySpec
from repro.workload.params import LoadLevel, WorkloadParams


def small_params(**kw):
    defaults = dict(num_processes=4, num_resources=8, phi=3, duration=400.0, warmup=50.0)
    defaults.update(kw)
    return WorkloadParams(**defaults)


class TestScenarioValue:
    def test_scenarios_are_picklable(self):
        scenario = Scenario(
            algorithm="with_loan",
            params=small_params(),
            config=CoreConfigSpec(loan_threshold=2, policy="max"),
            latency=UniformJitterLatencySpec(jitter=0.4),
            size_buckets=(1, 4, 8),
        )
        clone = pickle.loads(pickle.dumps(scenario))
        assert clone == scenario
        assert clone.key() == scenario.key()

    def test_scenarios_are_frozen_values(self):
        a = Scenario(algorithm="with_loan", params=small_params())
        b = Scenario(algorithm="with_loan", params=small_params())
        # Identity for memoisation purposes is the content hash key(), not
        # hash() — the embedded params carry an (unhashable) ``extra`` dict.
        assert a == b and a.key() == b.key()
        with pytest.raises(dataclasses.FrozenInstanceError):
            a.algorithm = "bouabdallah"

    def test_size_buckets_coerced_to_tuple(self):
        scenario = Scenario(algorithm="with_loan", params=small_params(), size_buckets=[1, 4])
        assert scenario.size_buckets == (1, 4)

    def test_unknown_algorithm_rejected_at_construction(self):
        with pytest.raises(KeyError, match="quantum"):
            Scenario(algorithm="quantum", params=small_params())

    def test_mismatched_config_type_rejected(self):
        with pytest.raises(TypeError, match="CoreConfigSpec"):
            Scenario(algorithm="with_loan", params=small_params(), config=BLConfigSpec())

    def test_config_on_configless_algorithm_rejected(self):
        with pytest.raises(TypeError, match="no config"):
            Scenario(algorithm="shared_memory", params=small_params(), config=CoreConfigSpec())

    def test_live_latency_model_rejected(self):
        from repro.sim.latency import ConstantLatency

        with pytest.raises(TypeError, match="LatencySpec"):
            Scenario(algorithm="with_loan", params=small_params(), latency=ConstantLatency())

    def test_live_fault_model_rejected(self):
        from repro.sim.faults import BernoulliLossModel

        with pytest.raises(TypeError, match="FaultSpec"):
            Scenario(
                algorithm="with_loan", params=small_params(), faults=BernoulliLossModel(p=0.1)
            )


class TestScenarioKey:
    def test_key_stable_across_pickling(self):
        scenario = Scenario(algorithm="with_loan", params=small_params(), size_buckets=(1, 4))
        assert pickle.loads(pickle.dumps(scenario)).key() == scenario.key()

    def test_key_independent_of_extra_dict_order(self):
        a = Scenario(algorithm="with_loan", params=small_params(extra={"x": 1, "y": 2}))
        b = Scenario(algorithm="with_loan", params=small_params(extra={"y": 2, "x": 1}))
        assert a.key() == b.key()

    def test_key_normalises_defaults(self):
        implicit = Scenario(algorithm="with_loan", params=small_params())
        explicit = Scenario(
            algorithm="with_loan",
            params=small_params(),
            config=CoreConfigSpec(enable_loan=True),
            latency=ConstantLatencySpec(),
        )
        assert implicit.key() == explicit.key()

    def test_key_ignores_latency_on_networkless_algorithm(self):
        plain = Scenario(algorithm="shared_memory", params=small_params())
        with_latency = Scenario(
            algorithm="shared_memory", params=small_params(), latency=ConstantLatencySpec()
        )
        assert plain.key() == with_latency.key()

    def test_key_normalises_fault_default(self):
        """faults=None and faults=NoFaults() are the same run — same key."""
        implicit = Scenario(algorithm="with_loan", params=small_params())
        explicit = Scenario(algorithm="with_loan", params=small_params(), faults=NoFaults())
        assert implicit.key() == explicit.key()
        assert implicit.normalized().faults == NoFaults()

    def test_key_ignores_faults_on_networkless_algorithm(self):
        plain = Scenario(algorithm="shared_memory", params=small_params())
        with_faults = Scenario(
            algorithm="shared_memory", params=small_params(), faults=BernoulliLoss(p=0.1)
        )
        assert plain.key() == with_faults.key()
        assert with_faults.normalized().faults is None

    def test_ineffective_fault_specs_share_the_no_fault_key(self):
        """BernoulliLoss(p=0) injects nothing, so it is the same run as
        NoFaults and must hit the same cache entry."""
        base = Scenario(algorithm="with_loan", params=small_params())
        zero_loss = base.replace(faults=BernoulliLoss(p=0.0))
        assert zero_loss.key() == base.key()
        assert zero_loss.normalized().faults == NoFaults()
        assert base.replace(faults=BernoulliLoss(p=0.05)).key() != base.key()

    def test_single_child_composite_shares_the_bare_spec_key(self):
        """CompositeFaults((spec,)) runs exactly as spec does — one key."""
        from repro.sim.faultspec import CompositeFaults

        base = Scenario(algorithm="with_loan", params=small_params())
        bare = base.replace(faults=BernoulliLoss(p=0.05))
        wrapped = base.replace(faults=CompositeFaults((BernoulliLoss(p=0.05),)))
        doubly = base.replace(
            faults=CompositeFaults((CompositeFaults((BernoulliLoss(p=0.05),)), NoFaults()))
        )
        assert wrapped.key() == bare.key()
        assert doubly.key() == bare.key()
        assert base.replace(faults=CompositeFaults(())).key() == base.key()

    def test_fault_spec_outside_workload_fails_fast_at_key_time(self):
        base = Scenario(algorithm="with_loan", params=small_params())
        with pytest.raises(ValueError, match="node 99"):
            base.replace(faults=NodeCrash(node=99, at=10.0)).key()

    def test_key_distinguishes_fault_specs(self):
        base = Scenario(algorithm="with_loan", params=small_params())
        keys = {
            base.key(),
            base.replace(faults=BernoulliLoss(p=0.05)).key(),
            base.replace(faults=BernoulliLoss(p=0.05, seed=2)).key(),
            base.replace(faults=NodeCrash(node=1, at=100.0)).key(),
        }
        assert len(keys) == 4

    def test_key_insensitive_to_int_float_spelling(self):
        """Regression: canonical() used to key 4 and 4.0 differently, so
        identical runs missed the in-memory and persistent RunCache."""
        base = Scenario(algorithm="with_loan", params=small_params())
        assert base.replace(phi=2).key() == base.replace(phi=2.0).key()
        assert base.replace(duration=300).key() == base.replace(duration=300.0).key()
        assert base.replace(gamma=1).key() == base.replace(gamma=1.0).key()

    def test_canonical_normalises_equal_numbers(self):
        from repro.experiments.scenario import canonical

        assert canonical(4) == canonical(4.0) == 4
        assert canonical(True) == canonical(1) == canonical(1.0) == 1
        assert canonical(False) == canonical(0) == 0
        assert canonical(0.5) == 0.5  # non-integral floats keep their value
        assert canonical((4.0, {"x": 2.0})) == canonical((4, {"x": 2}))

    def test_key_differs_for_different_scenarios(self):
        base = small_params()
        keys = {
            Scenario(algorithm="with_loan", params=base).key(),
            Scenario(algorithm="without_loan", params=base).key(),
            Scenario(algorithm="with_loan", params=base.with_seed(2)).key(),
            Scenario(algorithm="with_loan", params=base,
                     config=CoreConfigSpec(loan_threshold=2)).key(),
            Scenario(algorithm="with_loan", params=base,
                     latency=UniformJitterLatencySpec(jitter=0.3)).key(),
            Scenario(algorithm="with_loan", params=base, size_buckets=(1, 4)).key(),
        }
        assert len(keys) == 6

    def test_key_stable_across_processes(self):
        """The content hash must not depend on the interpreter instance.

        PYTHONHASHSEED randomises ``hash()`` per process; the scenario key
        must survive it, or the on-disk cache would never hit.
        """
        program = (
            "from repro.experiments.scenario import Scenario\n"
            "from repro.workload.params import WorkloadParams\n"
            "s = Scenario(algorithm='with_loan', params=WorkloadParams(\n"
            "    num_processes=4, num_resources=8, phi=3, duration=400.0,\n"
            "    warmup=50.0, extra={'x': 1, 'y': 2}))\n"
            "print(s.key())\n"
        )
        keys = set()
        for hashseed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed},
                cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
            )
            assert proc.returncode == 0, proc.stderr
            keys.add(proc.stdout.strip())
        local = Scenario(
            algorithm="with_loan", params=small_params(extra={"x": 1, "y": 2})
        ).key()
        assert keys == {local}


class TestScenarioSweep:
    def test_sweep_is_row_major_in_axis_order(self):
        base = Scenario(algorithm="with_loan", params=small_params())
        grid = base.sweep(algorithm=("with_loan", "bouabdallah"), phi=(1, 2), seed=(1, 2))
        assert len(grid) == 8
        assert [(s.algorithm, s.params.phi, s.params.seed) for s in grid[:4]] == [
            ("with_loan", 1, 1),
            ("with_loan", 1, 2),
            ("with_loan", 2, 1),
            ("with_loan", 2, 2),
        ]
        assert grid[4].algorithm == "bouabdallah"

    def test_sweep_over_scenario_and_params_axes(self):
        base = Scenario(algorithm="with_loan", params=small_params())
        grid = base.sweep(
            latency=(None, UniformJitterLatencySpec(jitter=0.5)),
            load=(LoadLevel.MEDIUM, LoadLevel.HIGH),
        )
        assert len(grid) == 4
        assert grid[0].latency is None and grid[1].params.load is LoadLevel.HIGH
        assert grid[3].latency == UniformJitterLatencySpec(jitter=0.5)

    def test_algorithm_axis_resets_incompatible_config(self):
        """A configured (or normalized) scenario can sweep the algorithm
        axis: changing algorithms drops the old algorithm's config in
        favour of the new one's registered default."""
        base = Scenario(
            algorithm="with_loan",
            params=small_params(),
            config=CoreConfigSpec(loan_threshold=2),
        ).normalized()
        grid = base.sweep(algorithm=("with_loan", "bouabdallah"))
        assert grid[0].config == CoreConfigSpec(loan_threshold=2)  # unchanged algorithm
        assert grid[1].algorithm == "bouabdallah" and grid[1].config is None

    def test_replace_dispatches_params_fields(self):
        base = Scenario(algorithm="with_loan", params=small_params())
        other = base.replace(phi=2, algorithm="bouabdallah", max_events=123)
        assert other.params.phi == 2
        assert other.algorithm == "bouabdallah"
        assert other.max_events == 123
        assert base.params.phi == 3  # original untouched


class TestRunScenario:
    def test_run_matches_run_experiment_shim(self):
        params = small_params(load=LoadLevel.HIGH, seed=11)
        by_scenario = run(Scenario(algorithm="with_loan", params=params))
        by_shim = run_experiment("with_loan", params)
        assert by_scenario.metrics == by_shim.metrics
        assert by_scenario.events_processed == by_shim.events_processed

    def test_run_with_config_matches_shim_overrides(self):
        params = small_params(load=LoadLevel.HIGH, seed=11)
        by_scenario = run(
            Scenario(
                algorithm="with_loan",
                params=params,
                config=CoreConfigSpec(loan_threshold=2, policy="max"),
            )
        )
        by_shim = run_experiment("with_loan", params, policy="max", loan_threshold=2)
        assert by_scenario.metrics == by_shim.metrics

    def test_run_with_latency_spec_matches_prebuilt_model(self):
        from repro.sim.latency import UniformJitterLatency

        params = small_params(load=LoadLevel.HIGH, seed=11)
        spec = UniformJitterLatencySpec(gamma=1.0, jitter=0.4, seed=3)
        by_scenario = run(Scenario(algorithm="without_loan", params=params, latency=spec))
        by_model = run_experiment(
            "without_loan", params, latency=UniformJitterLatency(gamma=1.0, jitter=0.4, seed=3)
        )
        assert by_scenario.metrics == by_model.metrics

    def test_workload_axis_validated_and_described(self):
        from repro.workload.spec import OpenLoopSpec, TraceReplaySpec

        with pytest.raises(TypeError, match="WorkloadSpec"):
            Scenario(algorithm="with_loan", params=small_params(), workload=object())
        with pytest.raises(ValueError):
            Scenario(algorithm="with_loan", params=small_params(), record_chunk_rows=0)
        with pytest.raises(ValueError, match="record_spill"):
            Scenario(algorithm="with_loan", params=small_params(), record_spill=True)
        text = Scenario(
            algorithm="with_loan",
            params=small_params(),
            workload=OpenLoopSpec(),
            record_chunk_rows=128,
        ).describe()
        assert "open-loop" in text and "chunked=128" in text
        trace_text = Scenario(
            algorithm="with_loan",
            params=small_params(),
            workload=TraceReplaySpec(path="some.swf"),
        ).describe()
        assert "trace(some.swf" in trace_text

    def test_describe_mentions_algorithm_and_config(self):
        scenario = Scenario(
            algorithm="with_loan",
            params=small_params(),
            config=CoreConfigSpec(loan_threshold=2),
        )
        text = scenario.describe()
        assert "with_loan" in text and "loan<=2" in text


class TestRegistryPluggability:
    def test_registered_algorithm_is_droppable_into_scenarios(self):
        from repro.experiments import registry

        @registry.register_algorithm("test_dummy", label="Dummy", needs_network=False)
        def _build(config, params, sim, network, trace):
            from repro.baselines.central_scheduler import (
                CentralScheduler,
                CentralSchedulerClientAllocator,
            )

            scheduler = CentralScheduler(sim, params.num_resources)
            return [
                CentralSchedulerClientAllocator(scheduler, p)
                for p in range(params.num_processes)
            ]

        try:
            assert "test_dummy" in registry.available_algorithms()
            result = run(Scenario(algorithm="test_dummy", params=small_params()))
            assert result.metrics.completed == result.metrics.issued
            with pytest.raises(ValueError, match="already registered"):
                registry.register_algorithm("test_dummy")(_build)
        finally:
            del registry._REGISTRY["test_dummy"]
