"""Tests of the single-experiment runner."""

import pytest

from repro.experiments.registry import ALGORITHMS
from repro.experiments.runner import run_experiment
from repro.sim.latency import HierarchicalLatency
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture
def tiny_params():
    return WorkloadParams(
        num_processes=5,
        num_resources=10,
        phi=3,
        duration=800.0,
        warmup=100.0,
        seed=17,
        load=LoadLevel.HIGH,
    )


class TestRunExperiment:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_produces_valid_metrics(self, tiny_params, algorithm):
        result = run_experiment(algorithm, tiny_params)
        assert result.algorithm == algorithm
        assert 0.0 < result.use_rate <= 100.0
        assert result.metrics.waiting.mean >= 0.0
        assert result.metrics.completed == result.metrics.issued
        assert result.events_processed > 0

    def test_unknown_algorithm_rejected(self, tiny_params):
        with pytest.raises(KeyError):
            run_experiment("quantum", tiny_params)

    def test_deterministic_given_seed(self, tiny_params):
        a = run_experiment("with_loan", tiny_params)
        b = run_experiment("with_loan", tiny_params)
        assert a.use_rate == pytest.approx(b.use_rate)
        assert a.metrics.waiting.mean == pytest.approx(b.metrics.waiting.mean)
        assert a.metrics.messages_total == b.metrics.messages_total

    def test_different_seeds_differ(self, tiny_params):
        a = run_experiment("with_loan", tiny_params)
        b = run_experiment("with_loan", tiny_params.with_seed(99))
        assert a.metrics.issued != b.metrics.issued or a.use_rate != b.use_rate

    def test_messages_counted_for_distributed_algorithms(self, tiny_params):
        result = run_experiment("bouabdallah", tiny_params)
        assert result.metrics.messages_total > 0
        assert result.metrics.messages_per_cs > 0

    def test_shared_memory_has_no_messages(self, tiny_params):
        result = run_experiment("shared_memory", tiny_params)
        assert result.metrics.messages_total == 0

    def test_trace_collection_optional(self, tiny_params):
        without = run_experiment("with_loan", tiny_params)
        assert without.trace is None
        with_trace = run_experiment("with_loan", tiny_params, collect_trace=True)
        assert with_trace.trace is not None and len(with_trace.trace) > 0

    def test_size_buckets_grouping(self, tiny_params):
        result = run_experiment("with_loan", tiny_params, size_buckets=[1, 3])
        assert set(result.metrics.waiting_by_size) <= {1, 3}

    def test_custom_latency_model(self, tiny_params):
        latency = HierarchicalLatency(
            gamma_local=0.3, gamma_remote=5.0,
            num_nodes=tiny_params.num_processes, num_clusters=2,
        )
        flat = run_experiment("without_loan", tiny_params)
        hierarchical = run_experiment("without_loan", tiny_params, latency=latency)
        # Remote hops are ~8x slower, so waiting must not improve.
        assert hierarchical.metrics.waiting.mean >= flat.metrics.waiting.mean

    def test_describe_summary(self, tiny_params):
        result = run_experiment("with_loan", tiny_params)
        text = result.describe()
        assert "with_loan" in text and "use_rate" in text

    def test_requests_per_process_cap(self, tiny_params):
        import dataclasses

        capped = dataclasses.replace(tiny_params, requests_per_process=2)
        result = run_experiment("with_loan", capped)
        assert result.metrics.issued <= 2 * capped.num_processes


class TestFaultRunCap:
    def test_cap_never_clips_a_natural_completion_tail(self):
        """Regression: the fault-run horizon used to be 2*duration, which
        clipped in-flight requests of short workloads whose drain extends
        past it — a near-zero-fault run then miscounted completions (and
        raised a spurious liveness failure) relative to the reliable run."""
        from repro.experiments.runner import fault_run_until, run
        from repro.experiments.scenario import Scenario
        from repro.sim.faultspec import BernoulliLoss

        params = WorkloadParams(
            num_processes=5, num_resources=10, phi=3, duration=100.0, warmup=10.0, seed=1,
        )
        reliable = run(Scenario(algorithm="with_loan", params=params))
        # The reliable drain really does outlive 2*duration here, so the
        # old cap would have cut it short.
        assert reliable.simulated_time > 2.0 * params.duration
        assert fault_run_until(params) > reliable.simulated_time
        faulty = run(
            Scenario(
                algorithm="with_loan",
                params=params,
                # p > 0 activates the capped path; small enough that no
                # message is actually dropped in this short run.
                faults=BernoulliLoss(p=1e-9),
            )
        )
        assert faulty.messages_dropped == 0
        assert faulty.metrics.completed == reliable.metrics.completed
        assert faulty.metrics.waiting == reliable.metrics.waiting
        # The cap is a stall guard, not a clock target: a drained faulty
        # run reports its real drain time, comparable to the reliable run.
        assert faulty.simulated_time == reliable.simulated_time
