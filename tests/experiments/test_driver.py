"""Tests of the closed-loop workload driver."""

from repro.experiments.driver import ClosedLoopClient
from repro.metrics.collector import MetricsCollector
from repro.workload.generator import fixed_requests

from tests.helpers import build_system


def make_client(system, process, specs, metrics, stop=1_000.0, max_requests=None):
    return ClosedLoopClient(
        sim=system.sim,
        process=process,
        allocator=system.allocators[process],
        requests=iter(specs),
        metrics=metrics,
        stop_issuing_at=stop,
        max_requests=max_requests,
    )


class TestClosedLoopClient:
    def test_replays_scripted_requests(self):
        system = build_system("core", num_processes=2, num_resources=4, gamma=0.5)
        metrics = MetricsCollector(num_resources=4)
        specs = fixed_requests(1, [frozenset({0}), frozenset({1, 2})], cs_duration=2.0)
        client = make_client(system, 1, specs, metrics)
        client.start()
        system.run()
        assert client.issued == 2
        assert client.completed == 2
        assert metrics.all_completed()
        assert client.stopped

    def test_max_requests_caps_issuance(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=0.5)
        metrics = MetricsCollector(num_resources=2)
        specs = fixed_requests(1, [frozenset({0})] * 5, cs_duration=1.0)
        client = make_client(system, 1, specs, metrics, max_requests=3)
        client.start()
        system.run()
        assert client.issued == 3

    def test_stop_time_prevents_new_requests(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=0.5)
        metrics = MetricsCollector(num_resources=2)
        specs = fixed_requests(1, [frozenset({0})] * 10, cs_duration=5.0, think_time=5.0)
        client = make_client(system, 1, specs, metrics, stop=20.0)
        client.start()
        system.run()
        assert 0 < client.issued < 10
        assert metrics.all_completed()

    def test_exhausted_iterator_stops_client(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=0.5)
        metrics = MetricsCollector(num_resources=2)
        client = make_client(system, 1, [], metrics)
        client.start()
        system.run()
        assert client.stopped and client.issued == 0

    def test_release_precedes_next_grant_at_same_timestamp(self):
        """Two clients contending for one resource must never trip the
        collector's safety check even with zero network latency."""
        system = build_system("core", num_processes=2, num_resources=1, gamma=0.0)
        metrics = MetricsCollector(num_resources=1)
        specs0 = fixed_requests(0, [frozenset({0})] * 3, cs_duration=1.0, think_time=0.0)
        specs1 = fixed_requests(1, [frozenset({0})] * 3, cs_duration=1.0, think_time=0.0)
        c0 = make_client(system, 0, specs0, metrics)
        c1 = make_client(system, 1, specs1, metrics)
        c0.start()
        c1.start()
        system.run()
        assert metrics.all_completed()
