"""Tests of the algorithm registry."""

import pytest

from repro.baselines.bouabdallah_laforest import BLAllocatorNode
from repro.baselines.central_scheduler import CentralSchedulerClientAllocator
from repro.baselines.incremental import IncrementalAllocatorNode
from repro.core.node import CoreAllocatorNode
from repro.core.policies import MaxPolicy
from repro.experiments.registry import (
    ALGORITHM_LABELS,
    ALGORITHMS,
    build_allocators,
    build_network,
)
from repro.sim.engine import Simulator
from repro.workload.params import WorkloadParams


@pytest.fixture
def params():
    return WorkloadParams(num_processes=4, num_resources=6, phi=3,
                          duration=500.0, warmup=50.0)


class TestRegistry:
    def test_every_algorithm_has_a_label(self):
        assert set(ALGORITHM_LABELS) == set(ALGORITHMS)

    def test_unknown_algorithm_rejected(self, params):
        sim = Simulator()
        with pytest.raises(KeyError):
            build_allocators("nope", params, sim, None)

    def test_shared_memory_needs_no_network(self, params):
        sim = Simulator()
        allocators = build_allocators("shared_memory", params, sim, None)
        assert len(allocators) == params.num_processes
        assert all(isinstance(a, CentralSchedulerClientAllocator) for a in allocators)

    def test_distributed_algorithms_require_network(self, params):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_allocators("with_loan", params, sim, None)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("incremental", IncrementalAllocatorNode),
            ("bouabdallah", BLAllocatorNode),
            ("without_loan", CoreAllocatorNode),
            ("with_loan", CoreAllocatorNode),
        ],
    )
    def test_builds_expected_node_types(self, params, name, cls):
        sim = Simulator()
        network = build_network(params, sim)
        allocators = build_allocators(name, params, sim, network)
        assert len(allocators) == params.num_processes
        assert all(isinstance(a, cls) for a in allocators)

    def test_loan_flag_differs_between_variants(self, params):
        sim = Simulator()
        network = build_network(params, sim)
        with_loan = build_allocators("with_loan", params, sim, network)
        sim2 = Simulator()
        network2 = build_network(params, sim2)
        without = build_allocators("without_loan", params, sim2, network2)
        assert with_loan[0].config.enable_loan is True
        assert without[0].config.enable_loan is False

    def test_policy_and_threshold_overrides(self, params):
        sim = Simulator()
        network = build_network(params, sim)
        allocators = build_allocators(
            "with_loan", params, sim, network, policy="max", loan_threshold=5
        )
        assert isinstance(allocators[0].config.policy, MaxPolicy)
        assert allocators[0].config.loan_threshold == 5

    def test_network_uses_params_gamma(self, params):
        sim = Simulator()
        network = build_network(params, sim)
        assert network.latency.latency(0, 1) == pytest.approx(params.gamma)
