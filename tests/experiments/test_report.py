"""Tests of the textual figure reports."""

import pytest

from repro.experiments.figures import FigureSeries
from repro.experiments.report import (
    format_comparison,
    format_figure5,
    format_figure6,
    format_figure7,
    format_table,
)
from repro.workload.params import LoadLevel


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in lines[2]

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"


def _series(figure, data, errors=None):
    s = FigureSeries(figure=figure, load=LoadLevel.MEDIUM)
    s.series = data
    s.errors = errors or {}
    return s


class TestFigureFormatters:
    def test_figure5_rows_by_phi(self):
        series = _series("figure5", {
            "with_loan": [(1.0, 10.0), (4.0, 20.0)],
            "bouabdallah": [(1.0, 8.0), (4.0, 12.0)],
        })
        text = format_figure5(series)
        assert "Figure 5" in text
        assert "With loan" in text and "Bouabdallah" in text
        assert any(line.strip().startswith("1") for line in text.splitlines())

    def test_figure5_missing_point_shows_dash(self):
        series = _series("figure5", {
            "with_loan": [(1.0, 10.0)],
            "bouabdallah": [(1.0, 8.0), (4.0, 12.0)],
        })
        assert "-" in format_figure5(series)

    def test_figure6_bars(self):
        series = _series(
            "figure6",
            {"with_loan": [(0.0, 42.0)]},
            errors={"with_loan": [(0.0, 7.0)]},
        )
        text = format_figure6(series)
        assert "42.00" in text and "7.00" in text

    def test_figure7_by_size(self):
        series = _series("figure7", {"with_loan": [(1.0, 5.0), (17.0, 25.0)]})
        text = format_figure7(series)
        assert "request size" in text
        assert "17" in text

    def test_comparison_ratios(self):
        text = format_comparison(
            {"with_loan": 40.0, "bouabdallah": 10.0},
            metric_name="use rate",
            reference="bouabdallah",
        )
        assert "4.00" in text

    def test_comparison_requires_reference(self):
        with pytest.raises(KeyError):
            format_comparison({"a": 1.0}, "x", reference="missing")
