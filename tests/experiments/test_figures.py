"""Tests of the figure sweep drivers (scaled-down configurations)."""

import pytest

from repro.experiments.figures import (
    figure5_use_rate,
    figure6_waiting_time,
    figure7_waiting_by_size,
)
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture(scope="module")
def small_base():
    return WorkloadParams(
        num_processes=5,
        num_resources=10,
        phi=4,
        duration=600.0,
        warmup=100.0,
        seed=23,
    )


class TestFigure5:
    def test_series_for_every_algorithm_and_phi(self, small_base):
        series = figure5_use_rate(
            load=LoadLevel.HIGH,
            base_params=small_base,
            phis=(1, 4, 8),
            algorithms=("bouabdallah", "with_loan", "shared_memory"),
        )
        assert set(series.series) == {"bouabdallah", "with_loan", "shared_memory"}
        for points in series.series.values():
            assert [x for x, _ in points] == [1.0, 4.0, 8.0]
            assert all(0.0 < y <= 100.0 for _, y in points)

    def test_phi_values_beyond_m_are_skipped(self, small_base):
        series = figure5_use_rate(
            load=LoadLevel.HIGH,
            base_params=small_base,
            phis=(4, 50),
            algorithms=("with_loan",),
        )
        assert [x for x, _ in series.series["with_loan"]] == [4.0]

    def test_results_kept_for_inspection(self, small_base):
        series = figure5_use_rate(
            load=LoadLevel.HIGH, base_params=small_base, phis=(2,),
            algorithms=("with_loan",),
        )
        assert len(series.results) == 1
        assert series.results[0].params.phi == 2


class TestFigure6:
    def test_single_bar_per_algorithm(self, small_base):
        series = figure6_waiting_time(
            load=LoadLevel.HIGH,
            base_params=small_base,
            algorithms=("bouabdallah", "with_loan"),
        )
        assert set(series.series) == {"bouabdallah", "with_loan"}
        for algorithm, points in series.series.items():
            assert len(points) == 1
            assert points[0][1] >= 0.0
            assert len(series.errors[algorithm]) == 1


class TestFigure7:
    def test_buckets_capped_to_m(self, small_base):
        series = figure7_waiting_by_size(
            load=LoadLevel.HIGH,
            base_params=small_base,
            algorithms=("with_loan",),
            size_buckets=[1, 5, 10, 80],
        )
        xs = [x for x, _ in series.series["with_loan"]]
        assert all(x <= small_base.num_resources for x in xs)
        assert xs == sorted(xs)

    def test_phi_defaults_to_m(self, small_base):
        series = figure7_waiting_by_size(
            load=LoadLevel.HIGH,
            base_params=small_base,
            algorithms=("with_loan",),
            size_buckets=[1, 5, 10],
        )
        assert series.results[0].params.phi == small_base.num_resources
