"""Tests of the Bouabdallah–Laforest control-token baseline."""

import random

import pytest

from repro.allocator import AllocatorError

from tests.helpers import assert_all_completed, build_system, run_scripted


class TestBasics:
    def test_single_request_completes(self):
        system = build_system("bouabdallah", num_processes=3, num_resources=4, gamma=1.0)
        metrics = run_scripted(system, [(0.0, 1, frozenset({0, 2}), 5.0)])
        assert_all_completed(metrics)
        assert system.allocators[1].is_idle
        assert system.allocators[1].owned_tokens == frozenset({0, 2})

    def test_control_holder_fast_path(self):
        system = build_system("bouabdallah", num_processes=3, num_resources=4, gamma=1.0)
        metrics = run_scripted(system, [(0.0, 0, frozenset({1}), 5.0)])
        assert_all_completed(metrics)
        # Node 0 holds the control token initially: no network round trip
        # is needed before entering the CS.
        assert metrics.record_for(0, 0).waiting_time == pytest.approx(0.0)

    def test_release_outside_cs_raises(self):
        system = build_system("bouabdallah", num_processes=2, num_resources=2)
        with pytest.raises(AllocatorError):
            system.allocators[1].release()

    def test_acquire_while_busy_raises(self):
        system = build_system("bouabdallah", num_processes=2, num_resources=2, gamma=1.0)
        system.allocators[1].acquire({0}, lambda: None)
        with pytest.raises(AllocatorError):
            system.allocators[1].acquire({1}, lambda: None)


class TestCorrectness:
    def test_conflicting_requests_serialized(self):
        system = build_system("bouabdallah", num_processes=4, num_resources=2, gamma=0.5)
        metrics = run_scripted(
            system, [(0.0, p, frozenset({0, 1}), 3.0) for p in range(4)]
        )
        assert_all_completed(metrics)
        intervals = sorted((r.grant_time, r.release_time) for r in metrics.records)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_disjoint_requests_overlap(self):
        system = build_system("bouabdallah", num_processes=3, num_resources=4, gamma=0.5)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0, 1}), 40.0),
                (0.0, 2, frozenset({2, 3}), 40.0),
            ],
        )
        a, b = metrics.record_for(1, 0), metrics.record_for(2, 0)
        assert min(a.release_time, b.release_time) > max(a.grant_time, b.grant_time)

    def test_token_reused_without_inquire_by_same_process(self):
        """A process re-requesting a resource it already holds keeps the
        token without any INQUIRE exchange."""
        system = build_system("bouabdallah", num_processes=2, num_resources=2, gamma=1.0)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0}), 2.0),
                (10.0, 1, frozenset({0}), 2.0),
            ],
        )
        assert_all_completed(metrics)
        first, second = metrics.record_for(1, 0), metrics.record_for(1, 1)
        # The second request only pays the control-token round trip.
        assert second.waiting_time <= first.waiting_time

    def test_cross_order_requests_no_deadlock(self):
        system = build_system("bouabdallah", num_processes=3, num_resources=2, gamma=0.5)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0, 1}), 5.0),
                (0.2, 2, frozenset({1, 0}), 5.0),
                (5.0, 1, frozenset({1}), 5.0),
                (5.1, 2, frozenset({0}), 5.0),
            ],
        )
        assert_all_completed(metrics)

    @pytest.mark.parametrize("seed", [5, 23])
    def test_random_workload_safe_and_live(self, seed):
        rng = random.Random(seed)
        system = build_system("bouabdallah", num_processes=6, num_resources=8, gamma=0.5)
        requests = []
        for wave in range(4):
            for p in range(6):
                size = rng.randint(1, 5)
                requests.append(
                    (wave * 6.0 + rng.random(), p, frozenset(rng.sample(range(8), size)),
                     rng.uniform(2, 6))
                )
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)

    def test_non_conflicting_requests_still_pay_control_token(self):
        """The key weakness the paper attacks: even conflict-free requests
        serialise on the control token, so a burst of disjoint requests is
        granted one control-token hop after the other."""
        system = build_system("bouabdallah", num_processes=5, num_resources=8, gamma=2.0)
        metrics = run_scripted(
            system,
            [(0.0, p, frozenset({2 * (p - 1), 2 * (p - 1) + 1}), 50.0) for p in range(1, 5)],
        )
        assert_all_completed(metrics)
        waits = sorted(r.waiting_time for r in metrics.records)
        # With a 2 ms hop, later requesters wait measurably longer than the
        # first one even though nothing conflicts.
        assert waits[-1] > waits[0]
