"""Tests of the incremental (ordered-locking) baseline."""

import random

import pytest

from repro.allocator import AllocatorError

from tests.helpers import assert_all_completed, build_system, run_scripted


class TestBasics:
    def test_acquire_and_release(self):
        system = build_system("incremental", num_processes=3, num_resources=4, gamma=1.0)
        metrics = run_scripted(system, [(0.0, 1, frozenset({0, 2}), 5.0)])
        assert_all_completed(metrics)
        assert system.allocators[1].is_idle

    def test_resources_locked_in_increasing_order(self):
        system = build_system("incremental", num_processes=2, num_resources=5, gamma=1.0)
        run_scripted(system, [(0.0, 1, frozenset({4, 0, 2}), 5.0)])
        locked = [
            e.details["resource"]
            for e in system.trace.events(kind="lock_acquired", node=1)
        ]
        assert locked == [0, 2, 4]

    def test_release_outside_cs_raises(self):
        system = build_system("incremental", num_processes=2, num_resources=2)
        with pytest.raises(AllocatorError):
            system.allocators[0].release()

    def test_acquire_while_busy_raises(self):
        system = build_system("incremental", num_processes=2, num_resources=4, gamma=1.0)
        system.allocators[1].acquire({0}, lambda: None)
        with pytest.raises(AllocatorError):
            system.allocators[1].acquire({1}, lambda: None)

    def test_invalid_resources_rejected(self):
        system = build_system("incremental", num_processes=2, num_resources=2)
        with pytest.raises(AllocatorError):
            system.allocators[0].acquire({9}, lambda: None)


class TestCorrectness:
    def test_conflicting_requests_serialized(self):
        system = build_system("incremental", num_processes=4, num_resources=3, gamma=0.5)
        metrics = run_scripted(
            system,
            [(0.0, p, frozenset({0, 1}), 4.0) for p in range(4)],
        )
        assert_all_completed(metrics)
        intervals = sorted((r.grant_time, r.release_time) for r in metrics.records)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_disjoint_requests_may_overlap(self):
        system = build_system("incremental", num_processes=3, num_resources=4, gamma=0.5)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0, 1}), 40.0),
                (0.0, 2, frozenset({2, 3}), 40.0),
            ],
        )
        a, b = metrics.record_for(1, 0), metrics.record_for(2, 0)
        assert min(a.release_time, b.release_time) > max(a.grant_time, b.grant_time)

    def test_no_deadlock_with_opposite_order_requests(self):
        """The hold-and-wait pattern that deadlocks naive protocols: the
        ordered locking discipline must resolve it."""
        system = build_system("incremental", num_processes=3, num_resources=2, gamma=0.5)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0, 1}), 5.0),
                (0.0, 2, frozenset({1, 0}), 5.0),
            ],
        )
        assert_all_completed(metrics)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_random_workload_safe_and_live(self, seed):
        rng = random.Random(seed)
        system = build_system("incremental", num_processes=5, num_resources=6, gamma=0.5)
        requests = []
        for wave in range(3):
            for p in range(5):
                size = rng.randint(1, 4)
                requests.append(
                    (wave * 8.0, p, frozenset(rng.sample(range(6), size)), rng.uniform(2, 5))
                )
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)

    def test_domino_effect_hurts_waiting_time(self):
        """A chain r0-r1, r1-r2, r2-r3 of overlapping requests forces the
        incremental algorithm to hold early resources idle (domino effect)."""
        system = build_system("incremental", num_processes=5, num_resources=4, gamma=0.5)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({3}), 50.0),
                (1.0, 2, frozenset({2, 3}), 5.0),
                (2.0, 3, frozenset({1, 2}), 5.0),
                (3.0, 4, frozenset({0, 1}), 5.0),
            ],
        )
        assert_all_completed(metrics)
        # The last request of the chain cannot start before the head's long
        # CS finishes, even though it shares no resource with it.
        tail = metrics.record_for(4, 0)
        head = metrics.record_for(1, 0)
        assert tail.grant_time >= head.release_time
