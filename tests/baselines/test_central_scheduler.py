"""Tests of the shared-memory reference scheduler."""

import pytest

from repro.allocator import AllocatorError
from repro.baselines.central_scheduler import CentralScheduler, CentralSchedulerClientAllocator
from repro.sim.engine import Simulator

from tests.helpers import assert_all_completed, build_system, run_scripted


class TestScheduler:
    def test_grant_is_asynchronous_but_immediate(self, sim):
        scheduler = CentralScheduler(sim, num_resources=4)
        granted = []
        scheduler.submit(0, frozenset({0, 1}), lambda: granted.append(sim.now))
        assert granted == []  # not yet: delivered through the event loop
        sim.run()
        assert granted == [0.0]

    def test_conflicting_request_waits_for_release(self, sim):
        scheduler = CentralScheduler(sim, num_resources=2)
        order = []
        scheduler.submit(0, frozenset({0}), lambda: order.append("first"))
        scheduler.submit(1, frozenset({0}), lambda: order.append("second"))
        sim.run()
        assert order == ["first"]
        scheduler.release(0)
        sim.run()
        assert order == ["first", "second"]

    def test_first_fit_skips_blocked_head(self, sim):
        scheduler = CentralScheduler(sim, num_resources=3, discipline="first_fit")
        order = []
        scheduler.submit(0, frozenset({0}), lambda: order.append(0))
        sim.run()
        scheduler.submit(1, frozenset({0, 1}), lambda: order.append(1))  # blocked
        scheduler.submit(2, frozenset({2}), lambda: order.append(2))     # free
        sim.run()
        assert order == [0, 2]

    def test_fifo_discipline_blocks_behind_head(self, sim):
        scheduler = CentralScheduler(sim, num_resources=3, discipline="fifo")
        order = []
        scheduler.submit(0, frozenset({0}), lambda: order.append(0))
        sim.run()
        scheduler.submit(1, frozenset({0, 1}), lambda: order.append(1))
        scheduler.submit(2, frozenset({2}), lambda: order.append(2))
        sim.run()
        assert order == [0]
        scheduler.release(0)
        sim.run()
        assert order == [0, 1, 2]

    def test_release_without_holding_raises(self, sim):
        scheduler = CentralScheduler(sim, num_resources=2)
        with pytest.raises(AllocatorError):
            scheduler.release(3)

    def test_duplicate_submit_rejected(self, sim):
        scheduler = CentralScheduler(sim, num_resources=2)
        scheduler.submit(0, frozenset({0}), lambda: None)
        with pytest.raises(AllocatorError):
            scheduler.submit(0, frozenset({1}), lambda: None)

    def test_invalid_configuration_rejected(self, sim):
        with pytest.raises(ValueError):
            CentralScheduler(sim, num_resources=0)
        with pytest.raises(ValueError):
            CentralScheduler(sim, num_resources=2, discipline="lifo")

    def test_queue_length_and_holding(self, sim):
        scheduler = CentralScheduler(sim, num_resources=1)
        scheduler.submit(0, frozenset({0}), lambda: None)
        scheduler.submit(1, frozenset({0}), lambda: None)
        sim.run()
        assert scheduler.queue_length == 1
        assert scheduler.holding(0) == frozenset({0})
        assert scheduler.holding(1) == frozenset()


class TestClientAllocator:
    def test_full_cycle_through_interface(self, sim):
        scheduler = CentralScheduler(sim, num_resources=2)
        client = CentralSchedulerClientAllocator(scheduler, 0)
        entered = []
        client.acquire({0, 1}, lambda: entered.append(sim.now))
        sim.run()
        assert entered == [0.0]
        assert client.in_critical_section
        client.release()
        assert client.is_idle

    def test_release_outside_cs_raises(self, sim):
        scheduler = CentralScheduler(sim, num_resources=2)
        client = CentralSchedulerClientAllocator(scheduler, 0)
        with pytest.raises(AllocatorError):
            client.release()

    def test_scripted_workload_is_safe_and_live(self):
        system = build_system("shared_memory", num_processes=4, num_resources=4)
        metrics = run_scripted(
            system,
            [(float(p), p, frozenset({p % 2, 2 + p % 2}), 3.0) for p in range(4)],
        )
        assert_all_completed(metrics)

    def test_zero_waiting_for_disjoint_requests(self):
        system = build_system("shared_memory", num_processes=3, num_resources=6)
        metrics = run_scripted(
            system,
            [
                (0.0, 0, frozenset({0, 1}), 10.0),
                (0.0, 1, frozenset({2, 3}), 10.0),
                (0.0, 2, frozenset({4, 5}), 10.0),
            ],
        )
        assert all(r.waiting_time == pytest.approx(0.0) for r in metrics.records)
