"""Executor tests: ordering, caching, and serial/parallel determinism."""

import pytest

from repro.experiments.figures import figure5_use_rate
from repro.experiments.scenario import Scenario
from repro.parallel.cache import RunCache
from repro.parallel.executor import SweepExecutor, run_sweep
from repro.parallel.jobs import JobSpec, expand_jobs
from repro.sim.latencyspec import HierarchicalLatencySpec, UniformJitterLatencySpec
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture(scope="module")
def small_base():
    return WorkloadParams(
        num_processes=4,
        num_resources=8,
        phi=3,
        duration=500.0,
        warmup=50.0,
        seed=13,
    )


class TestSweepExecutor:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=0)

    def test_results_in_submission_order(self, small_base):
        specs = expand_jobs("with_loan", small_base, seeds=(1, 2, 3))
        results = run_sweep(specs)
        assert [r.params.seed for r in results] == [1, 2, 3]

    def test_cache_avoids_recomputation(self, small_base):
        cache = RunCache()
        executor = SweepExecutor(workers=1, cache=cache)
        specs = expand_jobs("with_loan", small_base, seeds=(1, 2))
        first = executor.run(specs)
        second = executor.run(specs)
        assert cache.hits == 2 and len(cache) == 2
        assert [r.metrics for r in first] == [r.metrics for r in second]

    def test_duplicate_specs_run_once_with_cache(self, small_base):
        cache = RunCache()
        executor = SweepExecutor(workers=1, cache=cache)
        spec = JobSpec.make("with_loan", small_base)
        results = executor.run([spec, spec, spec])
        assert len(cache) == 1
        assert results[0] is results[1] is results[2]

    def test_exceptions_propagate(self, small_base):
        spec = JobSpec.make("nonexistent_algorithm", small_base)
        with pytest.raises(KeyError):
            run_sweep([spec])


class TestSerialParallelDeterminism:
    def test_parallel_sweep_matches_serial(self, small_base):
        specs = expand_jobs("with_loan", small_base, seeds=(1, 2, 3, 4))
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=4)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert [r.simulated_time for r in serial] == [r.simulated_time for r in parallel]
        assert [r.events_processed for r in serial] == [r.events_processed for r in parallel]

    def test_figure5_sweep_identical_workers_1_vs_4(self, small_base):
        kwargs = dict(
            load=LoadLevel.HIGH,
            base_params=small_base,
            phis=(1, 2, 4),
            algorithms=("bouabdallah", "with_loan"),
            seeds=(1, 2),
        )
        serial = figure5_use_rate(workers=1, **kwargs)
        parallel = figure5_use_rate(workers=4, **kwargs)
        assert serial.series == parallel.series
        assert [r.metrics for r in serial.results] == [r.metrics for r in parallel.results]

    def test_latency_sweep_identical_workers_1_vs_4(self, small_base):
        """Latency-model ablations ride the parallel executor bit-for-bit.

        Impossible pre-Scenario (``JobSpec`` rejected object-valued latency
        arguments); declarative latency specs thaw inside each worker, so a
        gamma-jitter / topology sweep is a pure function of its scenarios.
        """
        base = Scenario(algorithm="with_loan", params=small_base)
        grid = base.sweep(
            algorithm=("with_loan", "bouabdallah"),
            latency=(
                None,
                UniformJitterLatencySpec(jitter=0.3, seed=5),
                UniformJitterLatencySpec(jitter=0.8, seed=5),
                HierarchicalLatencySpec(gamma_remote=6.0, num_clusters=2),
            ),
        )
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=4)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert [r.simulated_time for r in serial] == [r.simulated_time for r in parallel]
        assert [r.events_processed for r in serial] == [r.events_processed for r in parallel]
        # The sweep axis really changed the runs (jitter/topology matter).
        assert len({r.metrics.waiting.mean for r in serial[:4]}) > 1

    def test_records_bit_identical_workers_1_vs_4(self, small_base):
        """The columnar record payload is a pure function of the scenario.

        Serial results hold columns built in-process; parallel results
        are packed, shipped through the pool and unpacked — both must be
        byte-for-byte the same content.
        """
        base = Scenario(algorithm="with_loan", params=small_base)
        grid = base.sweep(algorithm=("with_loan", "bouabdallah"), seed=(1, 2))
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=4)
        for s, p in zip(serial, parallel):
            assert s.record_columns == p.record_columns
            assert s.record_columns.content_key() == p.record_columns.content_key()
            assert [
                (r.process, r.index, r.resources, r.issue_time, r.grant_time, r.release_time)
                for r in s.records
            ] == [
                (r.process, r.index, r.resources, r.issue_time, r.grant_time, r.release_time)
                for r in p.records
            ]

    def test_trace_stripped_across_worker_boundary(self, small_base):
        """TraceRecorder is process-local: in-process runs keep it, results
        shipped back from pool workers must not carry it."""
        scenarios = Scenario(
            algorithm="with_loan", params=small_base, collect_trace=True
        ).sweep(seed=(1, 2))
        (in_process, _) = run_sweep(scenarios, workers=1)
        assert in_process.trace is not None and len(in_process.trace) > 0
        results = run_sweep(scenarios, workers=2)
        assert all(r.trace is None for r in results)

    def test_trace_never_enters_a_shared_cache(self, small_base):
        """A cache can serve entries across processes, so serial-computed
        results must be stripped on put — a later parallel sweep sharing
        the cache must not receive a trace-carrying hit."""
        cache = RunCache()
        scenarios = Scenario(
            algorithm="with_loan", params=small_base, collect_trace=True
        ).sweep(seed=(1, 2))
        serial = run_sweep(scenarios, workers=1, cache=cache)
        assert all(r.trace is None for r in serial)
        hits = run_sweep(scenarios, workers=4, cache=cache)
        assert cache.hits >= 2
        assert all(r.trace is None for r in hits)

    def test_jobspec_and_scenario_share_cache_entries(self, small_base):
        cache = RunCache()
        executor = SweepExecutor(workers=1, cache=cache)
        job = JobSpec.make("with_loan", small_base, loan_threshold=2)
        (first,) = executor.run([job])
        (second,) = executor.run([job.to_scenario()])
        assert cache.hits == 1 and len(cache) == 1
        assert second is first
