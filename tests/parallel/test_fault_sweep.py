"""Fault sweeps through the parallel executor: determinism + memoisation."""

import pickle

import pytest

from repro.experiments.runner import run
from repro.experiments.scenario import Scenario
from repro.parallel.cache import RunCache
from repro.parallel.executor import run_sweep
from repro.sim.faultspec import BernoulliLoss, CompositeFaults, NodeCrash
from repro.workload.params import LoadLevel, WorkloadParams


@pytest.fixture(scope="module")
def fault_grid():
    params = WorkloadParams(
        num_processes=4,
        num_resources=8,
        phi=3,
        duration=400.0,
        warmup=50.0,
        load=LoadLevel.HIGH,
        seed=11,
    )
    base = Scenario(algorithm="with_loan", params=params, require_all_completed=False)
    return base.sweep(
        algorithm=("with_loan", "incremental"),
        faults=(
            None,
            BernoulliLoss(p=0.02),
            BernoulliLoss(p=0.1),
            CompositeFaults((BernoulliLoss(p=0.05), NodeCrash(node=1, at=150.0, recover_at=250.0))),
        ),
    )


def fingerprint(result):
    """Bit-level identity of everything a figure driver could consume."""
    return pickle.dumps(
        (
            result.algorithm,
            result.metrics,
            result.simulated_time,
            result.events_processed,
            result.messages_dropped,
            result.resend_count,
            [(r.process, r.index, r.issue_time, r.grant_time, r.release_time) for r in result.records],
        )
    )


class TestFaultSweepDeterminism:
    def test_workers_1_and_4_bit_identical(self, fault_grid):
        serial = run_sweep(fault_grid, workers=1)
        parallel = run_sweep(fault_grid, workers=4)
        assert [fingerprint(r) for r in serial] == [fingerprint(r) for r in parallel]

    def test_sweep_matches_direct_run(self, fault_grid):
        (direct,) = [run(fault_grid[1])]
        (swept,) = run_sweep([fault_grid[1]], workers=1)
        assert fingerprint(direct) == fingerprint(swept)

    def test_faults_actually_perturb_results(self, fault_grid):
        results = run_sweep(fault_grid, workers=1)
        reliable = [r for s, r in zip(fault_grid, results) if s.faults is None]
        faulty = [r for s, r in zip(fault_grid, results) if s.faults is not None]
        assert all(r.messages_dropped == 0 for r in reliable)
        assert any(r.messages_dropped > 0 for r in faulty)


class TestFaultSweepMemoisation:
    def test_fault_scenarios_are_memoised_by_content_key(self, fault_grid):
        cache = RunCache()
        first = run_sweep(fault_grid, workers=1, cache=cache)
        assert cache.misses == len(fault_grid)
        again = run_sweep(fault_grid, workers=1, cache=cache)
        assert cache.hits == len(fault_grid)
        assert [fingerprint(r) for r in first] == [fingerprint(r) for r in again]

    def test_distinct_fault_specs_get_distinct_keys(self, fault_grid):
        keys = {scenario.key() for scenario in fault_grid}
        assert len(keys) == len(fault_grid)

    def test_results_survive_the_disk_level(self, tmp_path, fault_grid):
        scenario = fault_grid[1]
        (first,) = run_sweep([scenario], workers=1, cache=RunCache(path=tmp_path))
        reader = RunCache(path=tmp_path)
        (second,) = run_sweep([scenario], workers=1, cache=reader)
        assert reader.hits == 1 and reader.misses == 0
        assert fingerprint(first) == fingerprint(second)
