"""Serial/parallel determinism of the workload axis.

Every :class:`~repro.workload.spec.WorkloadSpec` family must be a pure
value: shipped to a worker, re-thawed there and replayed bit-for-bit.
"""

import os

import pytest

from repro.experiments.scenario import Scenario
from repro.parallel.executor import run_sweep
from repro.workload.arrivals import MarkovModulatedArrivals, ParetoArrivals
from repro.workload.params import WorkloadParams
from repro.workload.spec import OpenLoopSpec, SyntheticSpec, TraceReplaySpec

MINI = os.path.join(os.path.dirname(__file__), "..", "workload", "data", "mini.swf")


@pytest.fixture(scope="module")
def small_base():
    return WorkloadParams(
        num_processes=4,
        num_resources=8,
        phi=3,
        duration=500.0,
        warmup=50.0,
        seed=13,
    )


class TestWorkloadSweepDeterminism:
    def test_workload_axis_identical_workers_1_vs_4(self, small_base):
        """One grid covering every spec family, serial vs pool."""
        base = Scenario(algorithm="with_loan", params=small_base)
        grid = base.sweep(
            algorithm=("with_loan", "bouabdallah"),
            workload=(
                SyntheticSpec(),
                OpenLoopSpec(),
                OpenLoopSpec(arrival=ParetoArrivals(shape=2.1)),
                OpenLoopSpec(arrival=MarkovModulatedArrivals(burst_factor=6.0)),
                TraceReplaySpec(path=MINI, time_scale=10.0),
            ),
        )
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=4)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert [r.simulated_time for r in serial] == [r.simulated_time for r in parallel]
        assert [r.events_processed for r in serial] == [r.events_processed for r in parallel]
        # The axis really changed the runs.
        assert len({r.metrics.waiting.mean for r in serial[:5]}) > 1

    def test_chunked_records_identical_workers_1_vs_4(self, small_base):
        """Chunked containers survive the pool round-trip byte-for-byte."""
        base = Scenario(
            algorithm="with_loan",
            params=small_base,
            workload=OpenLoopSpec(),
            record_chunk_rows=64,
            record_spill=True,
        )
        grid = base.sweep(seed=(1, 2))
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        for s, p in zip(serial, parallel):
            assert s.metrics == p.metrics
            assert s.record_columns == p.record_columns
            assert s.record_columns.content_key() == p.record_columns.content_key()
