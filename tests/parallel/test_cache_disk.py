"""Tests of the persistent (on-disk) level of the run cache."""

import pickle

from repro.experiments.scenario import Scenario
from repro.parallel.cache import CACHE_FORMAT, RunCache
from repro.parallel.executor import SweepExecutor
from repro.workload.params import WorkloadParams


def small_params(**kw):
    defaults = dict(num_processes=4, num_resources=8, phi=2, duration=400.0, warmup=50.0)
    defaults.update(kw)
    return WorkloadParams(**defaults)


class TestDiskRoundTrip:
    def test_results_survive_cache_instances(self, tmp_path):
        """A fresh RunCache on the same directory sees earlier results —
        the cross-process / cross-invocation persistence contract."""
        scenario = Scenario(algorithm="with_loan", params=small_params())
        writer = SweepExecutor(workers=1, cache=RunCache(path=tmp_path))
        (first,) = writer.run([scenario])

        reader_cache = RunCache(path=tmp_path)
        reader = SweepExecutor(workers=1, cache=reader_cache)
        (second,) = reader.run([scenario])
        assert reader_cache.hits == 1 and reader_cache.misses == 0
        assert second.metrics == first.metrics
        assert second.events_processed == first.events_processed

    def test_put_get_across_instances(self, tmp_path):
        RunCache(path=tmp_path).put("k", "result")
        assert RunCache(path=tmp_path).get("k") == "result"

    def test_contains_sees_disk_entries(self, tmp_path):
        RunCache(path=tmp_path).put("k", "result")
        assert "k" in RunCache(path=tmp_path)

    def test_memory_only_default_unchanged(self, tmp_path):
        cache = RunCache()
        cache.put("k", "result")
        assert cache.path is None
        assert not list(tmp_path.iterdir())

    def test_entries_namespaced_by_code_fingerprint(self, tmp_path, monkeypatch):
        """Results computed by different code must never be served as
        current — each fingerprint gets its own namespace."""
        from repro.parallel import cache as cache_module

        monkeypatch.setattr(cache_module, "code_fingerprint", lambda: "codehash-a")
        RunCache(path=tmp_path).put("k", "old result")
        monkeypatch.setattr(cache_module, "code_fingerprint", lambda: "codehash-b")
        assert RunCache(path=tmp_path).get("k") is None


class TestDiskRobustness:
    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = RunCache(path=tmp_path)
        cache.put("k", "result")
        file = next(cache.path.glob("*.pkl"))
        file.write_bytes(b"definitely not a pickle")
        fresh = RunCache(path=tmp_path)
        assert fresh.get("k") is None
        assert fresh.misses == 1

    def test_membership_agrees_with_get_on_corrupt_entry(self, tmp_path):
        """Regression: __contains__ used to answer True for a torn on-disk
        file that get() would then treat as a miss."""
        cache = RunCache(path=tmp_path)
        cache.put("k", "result")
        next(cache.path.glob("*.pkl")).write_bytes(b"definitely not a pickle")
        fresh = RunCache(path=tmp_path)
        assert "k" not in fresh
        assert fresh.get("k") is None

    def test_membership_does_not_touch_hit_miss_counters(self, tmp_path):
        cache = RunCache(path=tmp_path)
        cache.put("k", "result")
        fresh = RunCache(path=tmp_path)
        assert "k" in fresh and "missing" not in fresh
        assert fresh.hits == 0 and fresh.misses == 0
        # The probe kept the loaded entry, so the follow-up get is a hit.
        assert fresh.get("k") == "result"
        assert fresh.hits == 1

    def test_other_format_versions_are_ignored(self, tmp_path):
        cache = RunCache(path=tmp_path)
        stale = cache.path / f"k.v{CACHE_FORMAT + 1}.pkl"
        stale.write_bytes(pickle.dumps("old result"))
        assert RunCache(path=tmp_path).get("k") is None

    def test_pre_columnar_entries_read_as_clean_misses(self, tmp_path):
        """Entries written before the v2 (columnar records) format bump
        must read as misses: no exception, no stale hit, and membership
        agrees."""
        assert CACHE_FORMAT >= 2
        cache = RunCache(path=tmp_path)
        for old_version in range(1, CACHE_FORMAT):
            old = cache.path / f"k.v{old_version}.pkl"
            old.write_bytes(pickle.dumps("pre-bump result with record list"))
        fresh = RunCache(path=tmp_path)
        assert fresh.get("k") is None
        assert "k" not in fresh
        assert fresh.misses == 1
        # The stale files stay inert on disk (never deleted, never read).
        for old_version in range(1, CACHE_FORMAT):
            assert (cache.path / f"k.v{old_version}.pkl").exists()

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = RunCache(path=tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert not list(cache.path.glob("*.pkl"))
        assert RunCache(path=tmp_path).get("a") is None

    def test_unwritable_location_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        cache = RunCache(path=blocker / "sub")  # mkdir under a file fails
        assert cache.path is None
        cache.put("k", "result")
        assert cache.get("k") == "result"


class TestPersistentConstructor:
    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envdir"))
        cache = RunCache.persistent()
        assert cache.path.parent == tmp_path / "envdir"  # fingerprint subdir

    def test_explicit_path_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envdir"))
        cache = RunCache.persistent(tmp_path / "explicit")
        assert cache.path.parent == tmp_path / "explicit"
