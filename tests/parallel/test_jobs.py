"""Unit tests for job specs, hashing and the run cache."""

import pickle

from repro.parallel.cache import RunCache
from repro.parallel.jobs import JobSpec, expand_jobs
from repro.workload.params import LoadLevel, WorkloadParams


def small_params(**kw):
    defaults = dict(num_processes=4, num_resources=8, phi=2, duration=400.0, warmup=50.0)
    defaults.update(kw)
    return WorkloadParams(**defaults)


class TestJobSpec:
    def test_specs_are_picklable(self):
        spec = JobSpec.make("with_loan", small_params(), size_buckets=[1, 4, 8])
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_key_is_stable_across_pickling(self):
        spec = JobSpec.make("with_loan", small_params(), size_buckets=[1, 4, 8])
        assert pickle.loads(pickle.dumps(spec)).key() == spec.key()

    def test_key_independent_of_override_order(self):
        a = JobSpec.make("with_loan", small_params(), loan_threshold=2, policy="max")
        b = JobSpec.make("with_loan", small_params(), policy="max", loan_threshold=2)
        assert a == b
        assert a.key() == b.key()

    def test_key_differs_for_different_jobs(self):
        base = small_params()
        keys = {
            JobSpec.make("with_loan", base).key(),
            JobSpec.make("without_loan", base).key(),
            JobSpec.make("with_loan", base.with_seed(2)).key(),
            JobSpec.make("with_loan", base.with_phi(3)).key(),
            JobSpec.make("with_loan", base, loan_threshold=2).key(),
        }
        assert len(keys) == 5

    def test_key_independent_of_extra_dict_order(self):
        a = small_params(extra={"x": 1, "y": 2})
        b = small_params(extra={"y": 2, "x": 1})
        assert JobSpec.make("with_loan", a).key() == JobSpec.make("with_loan", b).key()

    def test_kwargs_thaws_sequences(self):
        spec = JobSpec.make("with_loan", small_params(), size_buckets=[1, 4, 8])
        kwargs = spec.kwargs()
        assert kwargs == {"size_buckets": [1, 4, 8]}
        assert isinstance(kwargs["size_buckets"], list)

    def test_object_valued_overrides_are_rejected(self):
        import pytest

        from repro.sim.latency import UniformJitterLatency

        with pytest.raises(TypeError, match="latency"):
            JobSpec.make(
                "with_loan", small_params(), latency=UniformJitterLatency(gamma=1.0, jitter=0.5)
            )

    def test_dict_valued_overrides_are_rejected(self):
        import pytest

        # A dict override could not survive the freeze/thaw round trip
        # (kwargs() would hand the callee a list of pairs), so make()
        # must refuse it rather than corrupt it silently.
        with pytest.raises(TypeError, match="mapping"):
            JobSpec.make("with_loan", small_params(), mapping={"a": 1})

    def test_load_level_survives_freezing(self):
        params = small_params(load=LoadLevel.HIGH)
        spec = JobSpec.make("with_loan", params)
        assert spec.params.load is LoadLevel.HIGH

    def test_describe_mentions_algorithm_and_overrides(self):
        spec = JobSpec.make("with_loan", small_params(), loan_threshold=2)
        text = spec.describe()
        assert "with_loan" in text and "loan_threshold" in text


class TestExpandJobs:
    def test_one_spec_per_seed_with_seed_baked_in(self):
        specs = expand_jobs("with_loan", small_params(), seeds=(3, 7, 11))
        assert [s.params.seed for s in specs] == [3, 7, 11]
        assert all(s.algorithm == "with_loan" for s in specs)
        assert len({s.key() for s in specs}) == 3


class TestRunCache:
    def test_get_put_and_counters(self):
        cache = RunCache()
        assert cache.get("k") is None
        cache.put("k", "result")
        assert cache.get("k") == "result"
        assert "k" in cache
        assert len(cache) == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clear_resets_everything(self):
        cache = RunCache()
        cache.put("k", "result")
        cache.get("k")
        cache.get("missing")
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)
