"""Unit tests for the total order ``/`` over requests."""

from repro.core.messages import ReqRes
from repro.core.ordering import precedes, precedes_values, request_key


def req(mark, site, resource=0, req_id=1):
    return ReqRes(resource=resource, sinit=site, req_id=req_id, mark=mark)


class TestRequestKey:
    def test_key_is_mark_then_site(self):
        assert request_key(req(2.0, 5)) == (2.0, 5)

    def test_key_orders_by_mark_first(self):
        assert request_key(req(1.0, 9)) < request_key(req(2.0, 0))

    def test_key_breaks_ties_by_site(self):
        assert request_key(req(3.0, 1)) < request_key(req(3.0, 2))


class TestPrecedes:
    def test_smaller_mark_precedes(self):
        assert precedes(req(1.0, 7), req(5.0, 0))

    def test_equal_marks_smaller_site_precedes(self):
        assert precedes(req(2.0, 1), req(2.0, 4))
        assert not precedes(req(2.0, 4), req(2.0, 1))

    def test_irreflexive(self):
        r = req(2.0, 3)
        assert not precedes(r, r)

    def test_antisymmetric_for_distinct_requests(self):
        a, b = req(1.0, 2), req(1.5, 1)
        assert precedes(a, b) != precedes(b, a)

    def test_total_for_distinct_sites(self):
        a, b = req(2.0, 1), req(2.0, 2)
        assert precedes(a, b) or precedes(b, a)

    def test_value_level_variant_matches(self):
        a, b = req(1.0, 4), req(1.0, 5)
        assert precedes(a, b) == precedes_values(1.0, 4, 1.0, 5)
