"""Randomised safety / liveness / concurrency checks for the core algorithm.

Every scenario runs through the metrics collector, which raises
``SafetyViolation`` online if two conflicting critical sections ever
overlap, and ``assert_all_completed`` verifies liveness (every request is
eventually granted and released).
"""

import random

import pytest

from repro.core.config import CoreConfig

from tests.helpers import assert_all_completed, build_system, run_scripted


def random_workload(rng, num_processes, num_resources, waves, max_size, cs_range=(2.0, 8.0)):
    requests = []
    for wave in range(waves):
        for p in range(num_processes):
            size = rng.randint(1, max_size)
            resources = frozenset(rng.sample(range(num_resources), size))
            cs = rng.uniform(*cs_range)
            requests.append((wave * 10.0 + rng.random() * 5.0, p, resources, cs))
    return requests


@pytest.mark.parametrize("enable_loan", [False, True], ids=["without_loan", "with_loan"])
@pytest.mark.parametrize("seed", [7, 21, 42])
class TestRandomisedRuns:
    def test_safety_and_liveness(self, seed, enable_loan):
        rng = random.Random(seed)
        config = CoreConfig(enable_loan=enable_loan)
        system = build_system("core", num_processes=6, num_resources=8, gamma=0.6,
                              core_config=config)
        requests = random_workload(rng, num_processes=6, num_resources=8,
                                   waves=4, max_size=4)
        metrics = run_scripted(system, requests, max_events=3_000_000)
        assert_all_completed(metrics)
        assert len(metrics.records) == 24

    def test_token_conservation(self, seed, enable_loan):
        """After quiescence every resource token exists exactly once."""
        rng = random.Random(seed + 100)
        config = CoreConfig(enable_loan=enable_loan)
        system = build_system("core", num_processes=5, num_resources=6, gamma=0.4,
                              core_config=config)
        requests = random_workload(rng, num_processes=5, num_resources=6,
                                   waves=3, max_size=3)
        metrics = run_scripted(system, requests, max_events=3_000_000)
        assert_all_completed(metrics)
        ownership = {}
        for node in system.allocators:
            for r in node.owned_tokens:
                assert r not in ownership, f"token {r} duplicated"
                ownership[r] = node.node_id
        assert set(ownership) == set(range(6))
        # Nobody is left waiting.
        assert all(node.is_idle for node in system.allocators)


class TestHighContention:
    @pytest.mark.parametrize("enable_loan", [False, True])
    def test_everyone_wants_everything(self, enable_loan):
        """Worst case: every request asks for the full resource set."""
        config = CoreConfig(enable_loan=enable_loan)
        system = build_system("core", num_processes=5, num_resources=4, gamma=0.5,
                              core_config=config)
        requests = [
            (float(wave), p, frozenset(range(4)), 2.0)
            for wave in range(3)
            for p in range(5)
        ]
        metrics = run_scripted(system, requests, max_events=3_000_000)
        assert_all_completed(metrics)
        # Full-conflict requests must be strictly serialised.
        intervals = sorted((r.grant_time, r.release_time) for r in metrics.records)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_gamma_zero_degenerate_latency(self):
        """A zero-latency network must still be safe and live."""
        system = build_system("core", num_processes=4, num_resources=3, gamma=0.0)
        requests = [
            (0.0, p, frozenset({p % 3, (p + 1) % 3}), 1.0) for p in range(4)
        ]
        metrics = run_scripted(system, requests, max_events=1_000_000)
        assert_all_completed(metrics)

    def test_single_process_many_sequential_requests(self):
        system = build_system("core", num_processes=2, num_resources=4, gamma=0.5)
        requests = [(0.0, 1, frozenset({i % 4, (i + 1) % 4}), 1.0) for i in range(10)]
        metrics = run_scripted(system, requests, max_events=1_000_000)
        assert_all_completed(metrics)
        assert len(metrics.records) == 10


class TestSchedulingPolicies:
    @pytest.mark.parametrize("policy", ["mean_nonzero", "max", "min_nonzero", "sum"])
    def test_all_policies_are_safe_and_live(self, policy):
        from repro.core.policies import get_policy

        rng = random.Random(13)
        config = CoreConfig(enable_loan=True, policy=get_policy(policy))
        system = build_system("core", num_processes=5, num_resources=6, gamma=0.5,
                              core_config=config)
        requests = random_workload(rng, num_processes=5, num_resources=6,
                                   waves=3, max_size=4)
        metrics = run_scripted(system, requests, max_events=3_000_000)
        assert_all_completed(metrics)
