"""Scripted scenario tests for the core algorithm (Annex A behaviour)."""

import pytest

from repro.allocator import AllocatorError
from repro.core.config import CoreConfig
from repro.core.node import ProcessState

from tests.helpers import assert_all_completed, build_system, run_scripted


class TestLocalFastPath:
    def test_initial_holder_enters_cs_immediately(self):
        system = build_system("core", num_processes=3, num_resources=4)
        granted = []
        system.allocators[0].acquire({0, 1}, lambda: granted.append(system.sim.now))
        assert granted == [0.0]
        assert system.allocators[0].state is ProcessState.IN_CS

    def test_release_returns_to_idle_and_keeps_tokens(self):
        system = build_system("core", num_processes=3, num_resources=4)
        node = system.allocators[0]
        node.acquire({0, 1}, lambda: None)
        node.release()
        assert node.state is ProcessState.IDLE
        assert node.owned_tokens == frozenset({0, 1, 2, 3})

    def test_counter_consumed_locally(self):
        system = build_system("core", num_processes=2, num_resources=2)
        node = system.allocators[0]
        node.acquire({0}, lambda: None)
        assert node._my_vector[0] == 1
        assert node.last_tok[0].counter == 2
        node.release()
        node.acquire({0}, lambda: None)
        assert node._my_vector[0] == 2

    def test_acquire_while_busy_raises(self):
        system = build_system("core", num_processes=2, num_resources=2)
        node = system.allocators[0]
        node.acquire({0}, lambda: None)
        with pytest.raises(AllocatorError):
            node.acquire({1}, lambda: None)

    def test_release_when_idle_raises(self):
        system = build_system("core", num_processes=2, num_resources=2)
        with pytest.raises(AllocatorError):
            system.allocators[0].release()

    def test_invalid_resource_ids_rejected(self):
        system = build_system("core", num_processes=2, num_resources=2)
        with pytest.raises(AllocatorError):
            system.allocators[0].acquire({5}, lambda: None)
        with pytest.raises(AllocatorError):
            system.allocators[0].acquire(set(), lambda: None)


class TestRemoteAcquisition:
    def test_remote_process_obtains_tokens(self):
        system = build_system("core", num_processes=3, num_resources=2, gamma=1.0)
        metrics = run_scripted(system, [(0.0, 1, frozenset({0, 1}), 5.0)])
        assert_all_completed(metrics)
        node = system.allocators[1]
        assert node.owned_tokens == frozenset({0, 1})
        assert node.tok_dir[0] is None and node.tok_dir[1] is None

    def test_figure3_walkthrough(self):
        """3 processes, 2 resources: s1 and s3 hold one resource each in CS,
        s2 requests both and enters once both tokens reach it (Figure 3)."""
        system = build_system("core", num_processes=3, num_resources=2, gamma=1.0)
        metrics = run_scripted(
            system,
            [
                (0.0, 0, frozenset({0}), 30.0),   # s1 uses r_red
                (0.0, 2, frozenset({1}), 30.0),   # s3 uses r_blue
                (5.0, 1, frozenset({0, 1}), 10.0),  # s2 wants both
            ],
        )
        assert_all_completed(metrics)
        rec_s2 = metrics.record_for(1, 0)
        rec_s1 = metrics.record_for(0, 0)
        rec_s3 = metrics.record_for(2, 0)
        # s2 can only start after both CSs have finished.
        assert rec_s2.grant_time >= max(rec_s1.release_time, rec_s3.release_time)
        # Final topology: s2 is the root of both trees (Figure 3(c)).
        assert system.allocators[1].owned_tokens == frozenset({0, 1})

    def test_state_transitions_follow_figure2(self):
        system = build_system("core", num_processes=2, num_resources=2, gamma=1.0)
        # Process 0 holds resource 0 in CS, so process 1 must go through the
        # full waitS -> waitCS -> inCS -> idle cycle of Figure 2.
        run_scripted(
            system,
            [
                (0.0, 0, frozenset({0}), 20.0),
                (1.0, 1, frozenset({0, 1}), 5.0),
            ],
        )
        states = [
            e.details["to"]
            for e in system.trace.events(kind="state", node=1)
        ]
        assert states[:3] == ["waitS", "waitCS", "inCS"]
        assert states[3] == "idle"

    def test_waits_skips_waitcs_when_tokens_arrive_directly(self):
        """When the holder does not need the resources it ships the tokens in
        response to the counter requests, so the requester may jump from
        waitS straight to inCS (a legal transition of the pseudo-code)."""
        system = build_system("core", num_processes=2, num_resources=2, gamma=1.0)
        run_scripted(system, [(0.0, 1, frozenset({0, 1}), 5.0)])
        states = [e.details["to"] for e in system.trace.events(kind="state", node=1)]
        assert states[0] == "waitS"
        assert "inCS" in states

    def test_non_conflicting_requests_run_concurrently(self):
        """The concurrency property: disjoint requests overlap in time."""
        system = build_system("core", num_processes=3, num_resources=4, gamma=1.0)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0, 1}), 50.0),
                (0.0, 2, frozenset({2, 3}), 50.0),
            ],
        )
        assert_all_completed(metrics)
        a = metrics.record_for(1, 0)
        b = metrics.record_for(2, 0)
        overlap_start = max(a.grant_time, b.grant_time)
        overlap_end = min(a.release_time, b.release_time)
        assert overlap_end > overlap_start, "disjoint requests should overlap"

    def test_conflicting_requests_are_serialized(self):
        system = build_system("core", num_processes=3, num_resources=2, gamma=1.0)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0}), 20.0),
                (0.0, 2, frozenset({0}), 20.0),
            ],
        )
        assert_all_completed(metrics)
        a = metrics.record_for(1, 0)
        b = metrics.record_for(2, 0)
        assert a.release_time <= b.grant_time or b.release_time <= a.grant_time

    def test_token_uniqueness_after_quiescence(self):
        system = build_system("core", num_processes=4, num_resources=3, gamma=1.0)
        requests = [
            (float(i), p, frozenset({(p + i) % 3, (p + i + 1) % 3}), 3.0)
            for i in range(3)
            for p in range(4)
        ]
        metrics = run_scripted(system, requests)
        assert_all_completed(metrics)
        owners = {}
        for node in system.allocators:
            for r in node.owned_tokens:
                assert r not in owners, f"resource {r} owned by two nodes"
                owners[r] = node.node_id
        assert set(owners) == {0, 1, 2}

    def test_counter_values_unique_per_resource(self):
        """The counter mechanism must hand out distinct values (Section 3.3.1)."""
        system = build_system("core", num_processes=4, num_resources=1, gamma=1.0)
        marks = []
        metrics = run_scripted(
            system,
            [(float(p), p, frozenset({0}), 2.0) for p in range(4)],
        )
        assert_all_completed(metrics)
        # After quiescence the resource counter must have been bumped once
        # per request (4 requests -> counter at least 5).
        owner = [n for n in system.allocators if 0 in n.owned_tokens][0]
        assert owner.last_tok[0].counter >= 5
        del marks

    def test_single_resource_requests_many_processes(self):
        system = build_system("core", num_processes=6, num_resources=1, gamma=0.5)
        metrics = run_scripted(
            system, [(0.0, p, frozenset({0}), 4.0) for p in range(6)]
        )
        assert_all_completed(metrics)
        intervals = sorted(
            (rec.grant_time, rec.release_time) for rec in metrics.records
        )
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2

    def test_waits_do_not_depend_on_unrelated_processes(self):
        """Two disjoint pairs of conflicting processes should not interact:
        the 'no global lock' objective of the paper."""
        system = build_system("core", num_processes=5, num_resources=4, gamma=1.0)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0}), 100.0),
                (1.0, 2, frozenset({0}), 5.0),    # conflicts with 1
                (1.0, 3, frozenset({2, 3}), 5.0),  # conflicts with nobody
            ],
        )
        assert_all_completed(metrics)
        unrelated = metrics.record_for(3, 0)
        blocked = metrics.record_for(2, 0)
        assert unrelated.waiting_time < 20.0
        assert blocked.waiting_time >= 100.0 - 5.0


class TestPriorityYield:
    def test_waiting_holder_yields_to_higher_priority_request(self):
        """A waitCS process holding a token must yield it to a request that
        precedes its own in the `/` order, and get it back afterwards."""
        system = build_system("core", num_processes=3, num_resources=3, gamma=1.0)
        # Process 0 (initial holder) takes a long CS on resource 0 only.
        # Process 1 then requests {0, 1}: it obtains token 1 but waits for 0.
        # Process 2 requests {1} later: its counter value for resource 1 is
        # higher, so its mark is higher and process 1 keeps the token.
        metrics = run_scripted(
            system,
            [
                (0.0, 0, frozenset({0}), 60.0),
                (2.0, 1, frozenset({0, 1}), 5.0),
                (10.0, 2, frozenset({1}), 5.0),
            ],
        )
        assert_all_completed(metrics)
        first = metrics.record_for(1, 0)
        second = metrics.record_for(2, 0)
        # Process 1 entered before process 2 obtained resource 1.
        assert first.grant_time <= second.grant_time

    def test_all_completed_under_heavy_conflict(self):
        system = build_system("core", num_processes=5, num_resources=2, gamma=0.5)
        requests = []
        for wave in range(3):
            for p in range(5):
                requests.append((wave * 2.0, p, frozenset({0, 1}), 3.0))
        metrics = run_scripted(system, requests, max_events=1_000_000)
        assert_all_completed(metrics)
        assert len(metrics.records) == 15
