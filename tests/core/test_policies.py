"""Unit tests for the scheduling functions ``A``."""

import pytest

from repro.core.policies import (
    MaxPolicy,
    MeanNonZeroPolicy,
    MinNonZeroPolicy,
    SumPolicy,
    available_policies,
    get_policy,
)


def vector(m, assignments):
    v = [0] * m
    for r, value in assignments.items():
        v[r] = value
    return v


class TestMeanNonZeroPolicy:
    def test_average_of_required_counters(self):
        policy = MeanNonZeroPolicy()
        v = vector(5, {0: 2, 3: 6})
        assert policy.mark(v, {0, 3}) == pytest.approx(4.0)

    def test_zero_entries_ignored(self):
        policy = MeanNonZeroPolicy()
        v = vector(5, {0: 4})
        # resource 3 required but its counter is still 0 (not yet obtained)
        assert policy.mark(v, {0, 3}) == pytest.approx(4.0)

    def test_empty_vector_is_zero(self):
        assert MeanNonZeroPolicy().mark([0, 0, 0], {1}) == 0.0

    def test_monotone_in_counters(self):
        policy = MeanNonZeroPolicy()
        low = policy.mark(vector(3, {0: 1, 1: 2}), {0, 1})
        high = policy.mark(vector(3, {0: 5, 1: 6}), {0, 1})
        assert high > low


class TestOtherPolicies:
    def test_max_policy(self):
        assert MaxPolicy().mark(vector(4, {0: 3, 2: 9}), {0, 2}) == pytest.approx(9.0)

    def test_min_policy_ignores_zeros(self):
        assert MinNonZeroPolicy().mark(vector(4, {0: 3, 2: 9}), {0, 2, 3}) == pytest.approx(3.0)

    def test_sum_policy(self):
        assert SumPolicy().mark(vector(4, {0: 3, 2: 9}), {0, 2}) == pytest.approx(12.0)

    def test_max_and_min_empty_are_zero(self):
        assert MaxPolicy().mark([0, 0], {0}) == 0.0
        assert MinNonZeroPolicy().mark([0, 0], {0}) == 0.0


class TestRegistry:
    def test_get_policy_by_name(self):
        assert isinstance(get_policy("mean_nonzero"), MeanNonZeroPolicy)
        assert isinstance(get_policy("max"), MaxPolicy)

    def test_unknown_policy_raises_with_known_names(self):
        with pytest.raises(KeyError, match="mean_nonzero"):
            get_policy("does-not-exist")

    def test_available_policies_sorted(self):
        names = available_policies()
        assert list(names) == sorted(names)
        assert "mean_nonzero" in names

    def test_describe_returns_name(self):
        assert MeanNonZeroPolicy().describe() == "mean_nonzero"
