"""Unit tests for the scheduling functions ``A``."""

import pytest

from repro.core.config import CoreConfigSpec
from repro.core.policies import (
    BalancedPolicy,
    HybridPolicy,
    MaxPolicy,
    MeanNonZeroPolicy,
    MinNonZeroPolicy,
    SumPolicy,
    WeightedPolicy,
    available_policies,
    get_policy,
)
from repro.workload.params import WorkloadParams


def vector(m, assignments):
    v = [0] * m
    for r, value in assignments.items():
        v[r] = value
    return v


class TestMeanNonZeroPolicy:
    def test_average_of_required_counters(self):
        policy = MeanNonZeroPolicy()
        v = vector(5, {0: 2, 3: 6})
        assert policy.mark(v, {0, 3}) == pytest.approx(4.0)

    def test_zero_entries_ignored(self):
        policy = MeanNonZeroPolicy()
        v = vector(5, {0: 4})
        # resource 3 required but its counter is still 0 (not yet obtained)
        assert policy.mark(v, {0, 3}) == pytest.approx(4.0)

    def test_empty_vector_is_zero(self):
        assert MeanNonZeroPolicy().mark([0, 0, 0], {1}) == 0.0

    def test_monotone_in_counters(self):
        policy = MeanNonZeroPolicy()
        low = policy.mark(vector(3, {0: 1, 1: 2}), {0, 1})
        high = policy.mark(vector(3, {0: 5, 1: 6}), {0, 1})
        assert high > low


class TestOtherPolicies:
    def test_max_policy(self):
        assert MaxPolicy().mark(vector(4, {0: 3, 2: 9}), {0, 2}) == pytest.approx(9.0)

    def test_min_policy_ignores_zeros(self):
        assert MinNonZeroPolicy().mark(vector(4, {0: 3, 2: 9}), {0, 2, 3}) == pytest.approx(3.0)

    def test_sum_policy(self):
        assert SumPolicy().mark(vector(4, {0: 3, 2: 9}), {0, 2}) == pytest.approx(12.0)

    def test_max_and_min_empty_are_zero(self):
        assert MaxPolicy().mark([0, 0], {0}) == 0.0
        assert MinNonZeroPolicy().mark([0, 0], {0}) == 0.0


class TestScarcityAwarePolicies:
    """The accasim-style balanced / weighted / hybrid orderings."""

    def test_balanced_averages_over_full_footprint(self):
        # Zeros count: a mostly cold footprint gets a small mark.
        v = vector(5, {0: 6})
        assert BalancedPolicy().mark(v, {0, 1, 2}) == pytest.approx(2.0)
        # MeanNonZero would give 6.0 here — the policies genuinely differ.
        assert MeanNonZeroPolicy().mark(v, {0, 1, 2}) == pytest.approx(6.0)

    def test_weighted_is_the_quadratic_mean(self):
        v = vector(4, {0: 3, 1: 4})
        expected = ((9 + 16) / 2) ** 0.5
        assert WeightedPolicy().mark(v, {0, 1}) == pytest.approx(expected)

    def test_weighted_dominated_by_hot_resources(self):
        hot = vector(4, {0: 10, 1: 0})
        spread = vector(4, {0: 5, 1: 5})
        assert WeightedPolicy().mark(hot, {0, 1}) > WeightedPolicy().mark(spread, {0, 1})
        # Same total load -> the balanced mean cannot tell them apart.
        assert BalancedPolicy().mark(hot, {0, 1}) == BalancedPolicy().mark(spread, {0, 1})

    def test_hybrid_is_the_midpoint(self):
        v = vector(4, {0: 3, 1: 7})
        required = {0, 1}
        expected = 0.5 * (
            BalancedPolicy().mark(v, required) + WeightedPolicy().mark(v, required)
        )
        assert HybridPolicy().mark(v, required) == pytest.approx(expected)

    @pytest.mark.parametrize("policy", [BalancedPolicy(), WeightedPolicy(), HybridPolicy()])
    def test_monotone_in_counters(self, policy):
        low = policy.mark(vector(3, {0: 1, 1: 2}), {0, 1})
        high = policy.mark(vector(3, {0: 5, 1: 6}), {0, 1})
        assert high > low

    @pytest.mark.parametrize("policy", [BalancedPolicy(), WeightedPolicy(), HybridPolicy()])
    def test_empty_footprint_is_zero(self, policy):
        assert policy.mark([0, 0], set()) == 0.0

    @pytest.mark.parametrize("name", ["balanced", "weighted", "hybrid"])
    def test_reachable_by_name(self, name):
        assert get_policy(name).describe() == name

    @pytest.mark.parametrize("name", ["balanced", "weighted", "hybrid"])
    def test_reachable_through_core_config_spec(self, name):
        config = CoreConfigSpec(policy=name).build(WorkloadParams())
        assert config.policy.describe() == name


class TestRegistry:
    def test_get_policy_by_name(self):
        assert isinstance(get_policy("mean_nonzero"), MeanNonZeroPolicy)
        assert isinstance(get_policy("max"), MaxPolicy)

    def test_unknown_policy_raises_with_known_names(self):
        with pytest.raises(KeyError, match="mean_nonzero"):
            get_policy("does-not-exist")

    def test_available_policies_sorted(self):
        names = available_policies()
        assert list(names) == sorted(names)
        assert "mean_nonzero" in names

    def test_describe_returns_name(self):
        assert MeanNonZeroPolicy().describe() == "mean_nonzero"
