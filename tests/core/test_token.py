"""Unit tests for the per-resource token structure."""

import pytest

from repro.core.messages import ReqLoan, ReqRes
from repro.core.token import ResourceToken


def req(site, mark, req_id=1, resource=0):
    return ReqRes(resource=resource, sinit=site, req_id=req_id, mark=mark)


def loan(site, mark, req_id=1, resource=0, missing=frozenset({0})):
    return ReqLoan(resource=resource, sinit=site, req_id=req_id, mark=mark, missing=missing)


class TestCounter:
    def test_take_counter_increments(self):
        tok = ResourceToken(resource=0)
        assert tok.take_counter() == 1
        assert tok.take_counter() == 2
        assert tok.counter == 3

    def test_counter_values_unique_and_increasing(self):
        tok = ResourceToken(resource=0)
        values = [tok.take_counter() for _ in range(50)]
        assert values == sorted(values)
        assert len(set(values)) == 50


class TestObsolescence:
    def test_cnt_obsolete_when_already_answered(self):
        tok = ResourceToken(resource=0, last_req_cnt={3: 5})
        assert tok.is_obsolete_cnt(3, 5)
        assert tok.is_obsolete_cnt(3, 4)
        assert not tok.is_obsolete_cnt(3, 6)

    def test_cnt_obsolete_when_cs_already_done(self):
        tok = ResourceToken(resource=0, last_cs={3: 7})
        assert tok.is_obsolete_cnt(3, 7)
        assert not tok.is_obsolete_cnt(3, 8)

    def test_cs_obsolete_only_via_last_cs(self):
        tok = ResourceToken(resource=0, last_req_cnt={3: 9}, last_cs={3: 2})
        assert tok.is_obsolete_cs(3, 2)
        assert not tok.is_obsolete_cs(3, 3)

    def test_unknown_site_never_obsolete(self):
        tok = ResourceToken(resource=0)
        assert not tok.is_obsolete_cs(9, 1)
        assert not tok.is_obsolete_cnt(9, 1)


class TestWaitingQueue:
    def test_enqueue_keeps_priority_order(self):
        tok = ResourceToken(resource=0)
        tok.enqueue(req(2, mark=5.0))
        tok.enqueue(req(1, mark=3.0))
        tok.enqueue(req(3, mark=4.0))
        assert [r.sinit for r in tok.wqueue] == [1, 3, 2]

    def test_tie_broken_by_site_id(self):
        tok = ResourceToken(resource=0)
        tok.enqueue(req(5, mark=2.0))
        tok.enqueue(req(1, mark=2.0))
        assert [r.sinit for r in tok.wqueue] == [1, 5]

    def test_dequeue_returns_head(self):
        tok = ResourceToken(resource=0)
        tok.enqueue(req(2, mark=9.0))
        tok.enqueue(req(7, mark=1.0))
        assert tok.dequeue().sinit == 7
        assert tok.head().sinit == 2

    def test_head_of_empty_queue_is_none(self):
        assert ResourceToken(resource=0).head() is None

    def test_queue_contains_by_site_and_id(self):
        tok = ResourceToken(resource=0)
        tok.enqueue(req(2, mark=1.0, req_id=4))
        assert tok.queue_contains(2, 4)
        assert not tok.queue_contains(2, 5)
        assert not tok.queue_contains(3, 4)

    def test_remove_requests_of_site(self):
        tok = ResourceToken(resource=0)
        tok.enqueue(req(2, mark=1.0))
        tok.enqueue(req(3, mark=2.0))
        tok.remove_requests_of(2)
        assert [r.sinit for r in tok.wqueue] == [3]


class TestLoanQueue:
    def test_enqueue_loan_sorted(self):
        tok = ResourceToken(resource=0)
        tok.enqueue_loan(loan(4, mark=8.0))
        tok.enqueue_loan(loan(2, mark=1.0))
        assert [r.sinit for r in tok.wloan] == [2, 4]

    def test_loan_contains_and_remove(self):
        tok = ResourceToken(resource=0)
        tok.enqueue_loan(loan(4, mark=8.0, req_id=2))
        assert tok.loan_contains(4, 2)
        tok.remove_loans_of(4)
        assert not tok.loan_contains(4, 2)


class TestCopy:
    def test_copy_is_deep_enough(self):
        tok = ResourceToken(resource=0, last_cs={1: 2})
        tok.enqueue(req(2, mark=1.0))
        dup = tok.copy()
        dup.take_counter()
        dup.last_cs[1] = 99
        dup.wqueue.clear()
        dup.lender = 5
        assert tok.counter == 1
        assert tok.last_cs[1] == 2
        assert len(tok.wqueue) == 1
        assert tok.lender is None

    def test_copy_preserves_fields(self):
        tok = ResourceToken(resource=3, counter=10, lender=4)
        dup = tok.copy()
        assert dup.resource == 3 and dup.counter == 10 and dup.lender == 4
