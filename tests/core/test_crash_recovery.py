"""Crash-recovery protocol: detection, regeneration, fencing edge cases.

These are scenario-level tests of the recovery subsystem
(:mod:`repro.core.recovery` + :mod:`repro.sim.lifecycle` +
:mod:`repro.sim.detectorspec`): each one runs a full closed-loop workload
under a deterministic crash schedule and asserts on the recovery
outcomes.  The online safety checker is armed in every run, so a
regeneration bug that resurrects a second token fails loudly as a
``SafetyViolation``, not as a silently wrong metric.
"""

import pickle

import pytest

from repro.core.config import CoreConfigSpec
from repro.experiments import Scenario, run
from repro.parallel import run_sweep
from repro.sim.detectorspec import HeartbeatDetector
from repro.sim.faultspec import CompositeFaults, NodeCrash
from repro.workload.params import LoadLevel, WorkloadParams

#: Tight detector so recovery completes well inside the test workloads.
DETECTOR = HeartbeatDetector(interval=10.0, timeout=30.0)


def make_params(**overrides):
    defaults = dict(
        num_processes=5,
        num_resources=10,
        phi=3,
        duration=500.0,
        warmup=50.0,
        load=LoadLevel.HIGH,
        seed=7,
    )
    defaults.update(overrides)
    return WorkloadParams(**defaults)


def incomplete_by_survivors(result, crashed_nodes):
    """Incomplete requests issued by processes that never crashed.

    A crashed process may legitimately leave its own in-flight request
    unfinished (it died); full recovery means *survivors* finish
    everything they issued.
    """
    return [
        (r.process, r.index)
        for r in result.records
        if not r.completed and r.process not in crashed_nodes
    ]


def loan_scenario(params, faults=None, detector=None, **scenario_kw):
    return Scenario(
        algorithm="with_loan",
        params=params,
        config=CoreConfigSpec(enable_loan=True, resend_interval=50.0),
        faults=faults,
        detector=detector,
        require_all_completed=False,
        **scenario_kw,
    )


class TestCrashWhileHoldingTokens:
    def test_permanent_crash_without_detector_stalls(self):
        result = run(loan_scenario(make_params(), faults=NodeCrash(node=2, at=125.0)))
        assert result.tokens_regenerated == 0
        assert result.completion_rate < 0.95  # requests chase the dead holder

    def test_permanent_crash_with_detector_recovers(self):
        result = run(
            loan_scenario(
                make_params(), faults=NodeCrash(node=2, at=125.0), detector=DETECTOR
            )
        )
        # Node 2 held tokens when it died: they were rebuilt and the rest
        # of the workload completed on the regenerated incarnations.
        assert result.tokens_regenerated >= 1
        assert result.completion_rate >= 0.99
        assert result.recovery_time == pytest.approx(
            DETECTOR.detection_delay, abs=1e-9
        )

    def test_crash_of_initial_holder_regenerates_its_hoard(self):
        # Node 0 initially holds every token; kill it before it has handed
        # many away and the detector must rebuild several at once.
        result = run(
            loan_scenario(
                make_params(), faults=NodeCrash(node=0, at=10.0), detector=DETECTOR
            )
        )
        assert result.tokens_regenerated >= 2
        # Survivors finish everything; only the dead node's own in-flight
        # request may stay open.
        assert incomplete_by_survivors(result, {0}) == []
        assert result.completion_rate >= 0.95

    def test_downtime_columns_report_the_outage(self):
        result = run(
            loan_scenario(
                make_params(),
                faults=NodeCrash(node=2, at=125.0, recover_at=285.0),
                detector=DETECTOR,
            )
        )
        assert result.downtime is not None
        assert result.downtime.as_dict() == {2: pytest.approx(160.0)}
        assert list(result.downtime.crashes) == [1]


class TestCrashDuringLoan:
    def test_borrower_crash_does_not_wedge_the_lender(self):
        # seed=5 with loan_threshold=2 grants a loan at t~290.1 (lender 2
        # lends resource 4 to borrower 3, determined by tracing the
        # fault-free run); killing the borrower right after exercises the
        # lost-borrowed-token path: the regenerated incarnation carries
        # lender=None, and the lender's t_lent latch clears when a token
        # of that resource next reaches it — no permanent lending freeze.
        params = make_params(seed=5, num_resources=8, phi=4, duration=400.0)
        scenario = Scenario(
            algorithm="with_loan",
            params=params,
            config=CoreConfigSpec(
                enable_loan=True, loan_threshold=2, resend_interval=50.0
            ),
            faults=NodeCrash(node=3, at=291.0),
            detector=DETECTOR,
            require_all_completed=False,
        )
        result = run(scenario)
        assert result.tokens_regenerated >= 1
        assert incomplete_by_survivors(result, {3}) == []
        assert result.completion_rate >= 0.95


class TestRecoverBeforeDetection:
    def test_blip_triggers_no_spurious_regeneration(self):
        # Down for half a detection delay: heartbeats resume in time, the
        # pending detection is cancelled and nothing is regenerated.
        blip = NodeCrash(node=2, at=125.0, recover_at=125.0 + DETECTOR.detection_delay / 2)
        result = run(loan_scenario(make_params(), faults=blip, detector=DETECTOR))
        assert result.tokens_regenerated == 0
        assert result.recovery_time == 0.0
        assert result.completion_rate == 1.0

    def test_blip_result_matches_detectorless_run(self):
        # With no detection fired, the detector must not perturb the run:
        # the blip scenario produces the same records with and without it.
        blip = NodeCrash(node=2, at=125.0, recover_at=135.0)
        with_det = run(loan_scenario(make_params(), faults=blip, detector=DETECTOR))
        without = run(loan_scenario(make_params(), faults=blip))
        assert pickle.dumps(with_det.record_columns) == pickle.dumps(
            without.record_columns
        )


class TestDoubleCrash:
    def test_double_crash_of_the_regenerator(self):
        # Node 2 dies holding tokens; after its detection the lowest-id
        # surviving requester rebuilds them.  Killing node 0 (a prime
        # regeneration candidate) afterwards forces a second adjudication
        # round over the same keys — the epochs must keep exactly one
        # incarnation live (the safety checker would catch a second).
        faults = CompositeFaults(
            (NodeCrash(node=2, at=125.0), NodeCrash(node=0, at=220.0))
        )
        result = run(loan_scenario(make_params(), faults=faults, detector=DETECTOR))
        assert result.tokens_regenerated >= 2
        # Three survivors finish everything except what died mid-CS.
        assert result.completion_rate >= 0.95
        assert result.downtime is not None and len(result.downtime) == 2

    def test_regenerator_crash_while_holding_regenerated_token(self):
        # Node 2 dies at 125 holding a token; node 0 regenerates it at
        # detection (t=155) and then dies at 166 *while still holding
        # it*.  Two traps, regression-tested here: (a) node 2's stale
        # ownership claim (cleared only by fencing at reboot, which never
        # comes) must not mask the loss at node 0's detection — the
        # fenced claim is skipped in the holder map; (b) node 2's
        # pre-crash queue entry surviving inside a stale lastTok snapshot
        # must not re-enter the second regeneration and send the rebuilt
        # token into the void.  Either bug permanently stalls every
        # survivor on the lost resource.
        faults = CompositeFaults(
            (NodeCrash(node=2, at=125.0), NodeCrash(node=0, at=166.0))
        )
        result = run(loan_scenario(make_params(), faults=faults, detector=DETECTOR))
        assert result.tokens_regenerated >= 2
        # Survivors finish everything they issued; only the dead nodes'
        # own in-flight requests may stay open.
        assert incomplete_by_survivors(result, {0, 2}) == []
        assert result.completion_rate >= 0.95

    def test_incremental_baseline_survives_detected_crash(self):
        params = make_params()
        result = run(
            Scenario(
                algorithm="incremental",
                params=params,
                faults=NodeCrash(node=2, at=125.0),
                detector=DETECTOR,
                require_all_completed=False,
            )
        )
        assert result.tokens_regenerated >= 1
        assert result.completion_rate >= 0.95


class TestNonRecoveryAllocatorBlip:
    def test_abandoned_grant_releases_instead_of_wedging(self):
        # The Bouabdallah baseline has no reboot handler, so its grant
        # callback survives a blip and fires after the reboot — for a
        # request the crashed client already abandoned.  The driver must
        # release the allocator instead of leaving it parked inside a
        # critical section nobody is running (which silently wedged
        # every other node: the run used to drain at t=165 of 500 with
        # completion 0.86).
        result = run(
            Scenario(
                algorithm="bouabdallah",
                params=make_params(),
                faults=NodeCrash(node=2, at=125.0, recover_at=135.0),
                require_all_completed=False,
            )
        )
        assert result.completion_rate >= 0.95
        assert result.simulated_time >= 500.0

    def test_aborted_cs_releases_on_reboot(self):
        # Symmetric case: the crash lands *inside* the critical section.
        # The client aborts the request and cancels the CS timer, so
        # nobody would ever call release(); the reboot handler must
        # release the parked CS or its resources (and the control token)
        # wedge every other node — the run used to drain at the reboot
        # instant with completion 0.82.
        result = run(
            Scenario(
                algorithm="bouabdallah",
                params=make_params(),
                faults=NodeCrash(node=2, at=110.0, recover_at=120.0),
                require_all_completed=False,
            )
        )
        assert result.metrics.extra.get("aborted") == 1.0
        assert result.completion_rate >= 0.95
        assert result.simulated_time >= 500.0


class TestAllDownDetectionWindow:
    def test_detection_rearms_until_a_survivor_is_up(self):
        # Every node is down when the detections fire; a detection that
        # gave up there would leave node 0's tokens lost forever even
        # after nodes 1 and 2 reboot.  Re-arming until a capable
        # survivor is up regenerates them on the first firing after the
        # reboots (regen used to stay 0, with completion 0.79 at the
        # stall cap).
        params = make_params(num_processes=3)
        faults = CompositeFaults(
            (
                NodeCrash(node=0, at=125.0),
                NodeCrash(node=1, at=126.0, recover_at=300.0),
                NodeCrash(node=2, at=127.0, recover_at=300.0),
            )
        )
        result = run(loan_scenario(params, faults=faults, detector=DETECTOR))
        assert result.tokens_regenerated >= 1
        # Each regeneration happened well after the crash (reboot at 300
        # plus a detection delay), never before it.
        assert result.recovery_time >= result.tokens_regenerated * (
            300.0 - 125.0
        )
        assert result.completion_rate >= 0.95

    def test_permanent_all_down_drains_instead_of_rearming_forever(self):
        # With every peer down for good there is no reboot to wait for:
        # the detections must be dropped, not re-armed, so the event
        # queue drains at the last detection instead of ticking every
        # detection delay until the fault-run cap (which would inflate
        # simulated_time and every per-time metric).
        params = make_params(num_processes=3)
        faults = CompositeFaults(
            (
                NodeCrash(node=0, at=100.0),
                NodeCrash(node=1, at=101.0),
                NodeCrash(node=2, at=102.0),
            )
        )
        result = run(loan_scenario(params, faults=faults, detector=DETECTOR))
        assert result.tokens_regenerated == 0
        # Drains right after the last detection window, far from the cap.
        assert result.simulated_time < 200.0


class TestCrashSweepDeterminism:
    def test_recovery_sweep_is_bit_identical_across_workers(self):
        params = make_params()
        grid = loan_scenario(params).sweep(
            faults=(
                NodeCrash(node=2, at=125.0),
                NodeCrash(node=2, at=125.0, recover_at=285.0),
            ),
            detector=(None, DETECTOR),
        )

        def fingerprint(result):
            return pickle.dumps(
                (
                    result.metrics,
                    result.tokens_regenerated,
                    result.recovery_time,
                    result.downtime.as_dict() if result.downtime else None,
                    result.record_columns.content_key(),
                )
            )

        serial = [fingerprint(r) for r in run_sweep(grid, workers=1)]
        parallel = [fingerprint(r) for r in run_sweep(grid, workers=4)]
        assert serial == parallel

    def test_detector_axis_changes_the_cache_key_only_with_crashes(self):
        params = make_params()
        crash = loan_scenario(params, faults=NodeCrash(node=2, at=125.0))
        assert crash.key() != crash.replace(detector=DETECTOR).key()
        # Without crash windows the detector is normalised away.
        plain = loan_scenario(params)
        assert plain.key() == plain.replace(detector=DETECTOR).key()
