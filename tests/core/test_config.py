"""Unit tests for the core algorithm configuration."""

import pytest

from repro.core.config import CoreConfig
from repro.core.policies import MaxPolicy, MeanNonZeroPolicy


class TestCoreConfig:
    def test_defaults_match_paper_evaluation(self):
        config = CoreConfig()
        assert config.enable_loan is True
        assert config.loan_threshold == 1
        assert isinstance(config.policy, MeanNonZeroPolicy)
        assert config.initial_holder == 0

    def test_without_loan_constructor(self):
        config = CoreConfig.without_loan()
        assert config.enable_loan is False

    def test_with_loan_constructor_threshold(self):
        config = CoreConfig.with_loan(loan_threshold=3)
        assert config.enable_loan is True
        assert config.loan_threshold == 3

    def test_policy_by_name(self):
        config = CoreConfig.with_loan(policy="max")
        assert isinstance(config.policy, MaxPolicy)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(loan_threshold=-1)

    def test_negative_initial_holder_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(initial_holder=-2)

    def test_describe_mentions_loan_state(self):
        assert "no-loan" in CoreConfig.without_loan().describe()
        assert "loan" in CoreConfig.with_loan().describe()
