"""Tests of the loan mechanism (Section 3.4 / 4.5)."""

import pytest

from repro.core.config import CoreConfig

from tests.helpers import assert_all_completed, build_system, run_scripted

#: Scripted scenario in which a loan is useful:
#:   * process 1 first runs a tiny CS on {3}, which bumps that counter and
#:     leaves it holding token 3;
#:   * process 0 runs a long CS on {0, 1};
#:   * process 1 then asks for {0, 1, 2}: it quickly obtains token 2 (nobody
#:     needs it) but misses two resources, so it does NOT ask for a loan
#:     (threshold = 1) and waits in waitCS while *holding* token 2;
#:   * process 2 finally asks for {2, 3}: its mark is higher than process
#:     1's, so the priority rule leaves token 2 with process 1 — but after
#:     receiving token 3 it misses exactly one resource, so with the loan
#:     enabled process 1 lends token 2 and process 2 runs its CS long before
#:     process 0 finishes.
LOAN_SCENARIO = [
    (0.0, 1, frozenset({3}), 1.0),
    (0.0, 0, frozenset({0, 1}), 100.0),
    (4.0, 1, frozenset({0, 1, 2}), 10.0),
    (10.0, 2, frozenset({2, 3}), 5.0),
]


def run_loan_scenario(enable_loan: bool):
    config = CoreConfig(enable_loan=enable_loan, loan_threshold=1)
    system = build_system("core", num_processes=3, num_resources=4, gamma=1.0,
                          core_config=config)
    metrics = run_scripted(system, LOAN_SCENARIO)
    assert_all_completed(metrics)
    return system, metrics


class TestLoanScenario:
    def test_loan_lets_small_request_jump_ahead(self):
        _, with_loan = run_loan_scenario(enable_loan=True)
        _, without_loan = run_loan_scenario(enable_loan=False)
        wait_with = with_loan.record_for(2, 0).waiting_time
        wait_without = without_loan.record_for(2, 0).waiting_time
        # With the loan, process 2 runs during process 0's long CS; without
        # it, it has to wait for the whole chain to unwind.
        assert wait_with < 30.0
        assert wait_without > 80.0
        assert wait_with < wait_without

    def test_loan_event_recorded_in_trace(self):
        system, _ = run_loan_scenario(enable_loan=True)
        kinds = {e.kind for e in system.trace}
        assert "loan_requested" in kinds
        assert "loan_granted" in kinds

    def test_no_loan_events_when_disabled(self):
        system, _ = run_loan_scenario(enable_loan=False)
        kinds = {e.kind for e in system.trace}
        assert "loan_requested" not in kinds
        assert "loan_granted" not in kinds

    def test_lent_tokens_return_to_lender(self):
        system, metrics = run_loan_scenario(enable_loan=True)
        # Everybody finished; the lender (process 1) must have completed its
        # CS, which requires having received token 2 back.
        assert metrics.record_for(1, 1).completed
        owners = {r: n.node_id for n in system.allocators for r in n.owned_tokens}
        assert set(owners) == {0, 1, 2, 3}

    def test_safety_preserved_with_loan(self):
        # The run_scripted collector checks mutual exclusion online; reaching
        # this point means no violation occurred in either variant.
        _, metrics = run_loan_scenario(enable_loan=True)
        assert len(metrics.records) == 4

    def test_loan_does_not_change_results_without_contention(self):
        config = CoreConfig(enable_loan=True)
        system = build_system("core", num_processes=3, num_resources=6, gamma=1.0,
                              core_config=config)
        metrics = run_scripted(
            system,
            [
                (0.0, 1, frozenset({0, 1}), 5.0),
                (0.0, 2, frozenset({2, 3}), 5.0),
            ],
        )
        assert_all_completed(metrics)
        kinds = {e.kind for e in system.trace}
        assert "loan_granted" not in kinds


class TestLoanThreshold:
    def test_zero_threshold_never_asks_for_loans(self):
        config = CoreConfig(enable_loan=True, loan_threshold=0)
        system = build_system("core", num_processes=3, num_resources=4, gamma=1.0,
                              core_config=config)
        metrics = run_scripted(system, LOAN_SCENARIO)
        assert_all_completed(metrics)
        assert "loan_requested" not in {e.kind for e in system.trace}

    def test_larger_threshold_allows_multi_resource_loans(self):
        """With threshold 2 the middle process (missing two resources) also
        asks for a loan; the run must stay correct and complete."""
        config = CoreConfig(enable_loan=True, loan_threshold=2)
        system = build_system("core", num_processes=3, num_resources=4, gamma=1.0,
                              core_config=config)
        metrics = run_scripted(system, LOAN_SCENARIO)
        assert_all_completed(metrics)
        assert "loan_requested" in {e.kind for e in system.trace}


class TestLoanUnderLoad:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_heavy_conflict_with_loans_stays_safe_and_live(self, seed):
        import random

        rng = random.Random(seed)
        config = CoreConfig(enable_loan=True, loan_threshold=1)
        system = build_system("core", num_processes=5, num_resources=4, gamma=0.5,
                              core_config=config)
        requests = []
        for wave in range(4):
            for p in range(5):
                size = rng.randint(1, 3)
                resources = frozenset(rng.sample(range(4), size))
                requests.append((wave * 5.0 + rng.random(), p, resources, 2.0 + rng.random() * 4))
        metrics = run_scripted(system, requests, max_events=2_000_000)
        assert_all_completed(metrics)
        assert len(metrics.records) == 20
